"""Documentation/code consistency checks.

A reproduction's docs rot silently; these tests pin the load-bearing
cross-references: every registered experiment appears in DESIGN.md's
index and has a bench file, every bench file regenerates a registered
experiment, and the section map mentions every core module.
"""

import os
import re

from repro.experiments import available_experiments

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(*parts):
    with open(os.path.join(ROOT, *parts)) as handle:
        return handle.read()


class TestDesignIndex:
    def test_every_experiment_in_design_index(self):
        design = read("DESIGN.md")
        for eid in available_experiments():
            assert re.search(
                rf"^\| {eid}\s", design, re.M
            ), f"{eid} missing from DESIGN.md's per-experiment index"

    def test_every_experiment_has_a_bench_file(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        sources = "\n".join(
            read("benchmarks", f)
            for f in os.listdir(bench_dir)
            if f.startswith("bench_") and f.endswith(".py")
        )
        for eid in available_experiments():
            assert (
                f'run_and_record("{eid}")' in sources
            ), f"no bench regenerates {eid}"

    def test_every_bench_regenerates_a_registered_experiment(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        known = set(available_experiments())
        for f in os.listdir(bench_dir):
            if not (f.startswith("bench_") and f.endswith(".py")):
                continue
            source = read("benchmarks", f)
            for eid in re.findall(r'run_and_record\("([^"]+)"\)', source):
                assert eid in known, f"{f} runs unknown experiment {eid}"


class TestExperimentsDoc:
    def test_every_experiment_has_a_results_section(self):
        doc = read("EXPERIMENTS.md")
        for eid in available_experiments():
            assert re.search(
                rf"^## {eid} ", doc, re.M
            ), f"{eid} has no section in EXPERIMENTS.md"

    def test_erratum_documented(self):
        assert "Lemma 9" in read("EXPERIMENTS.md")


class TestPaperMap:
    def test_core_modules_mentioned(self):
        doc = read("docs", "paper_to_code.md")
        for module in (
            "repro.core.distill",
            "repro.core.tracker",
            "repro.lowerbounds.urn",
            "repro.lowerbounds.partition",
            "repro.extensions.slander",
            "analysis.lemma7_kernel",
            "analysis.lemma9",
        ):
            assert module in doc, module


class TestReadme:
    def test_examples_table_covers_directory(self):
        readme = read("README.md")
        examples_dir = os.path.join(ROOT, "examples")
        for f in os.listdir(examples_dir):
            if f.endswith(".py"):
                assert f in readme, f"{f} missing from README examples"

    def test_cli_commands_documented(self):
        readme = read("README.md")
        for command in ("repro list", "repro experiment", "repro run",
                        "repro gauntlet", "repro show", "repro bounds",
                        "repro report"):
            assert command in readme, command


DOCS = ("README.md", "architecture.md", "model.md", "observability.md",
        "paper_to_code.md", "performance.md", "robustness.md",
        "serving.md", "static_analysis.md")


def doc_texts():
    """Every docs page plus the top-level README, as (relpath, text)."""
    pairs = [(f"docs/{name}", read("docs", name)) for name in DOCS]
    pairs.append(("README.md", read("README.md")))
    return pairs


def command_lines(text):
    """Shell command lines in a doc, with backslash continuations joined
    and trailing comments stripped."""
    joined, pending = [], ""
    for line in text.splitlines():
        pending += line.rstrip()
        if pending.endswith("\\"):
            pending = pending[:-1] + " "
            continue
        joined.append(pending)
        pending = ""
    for line in joined:
        stripped = line.strip()
        if stripped.startswith("$ "):
            stripped = stripped[2:]
        yield stripped.split(" #")[0].strip()


class TestDocsIndex:
    def test_index_lists_every_doc_page(self):
        index = read("docs", "README.md")
        for name in DOCS:
            if name == "README.md":
                continue
            assert f"({name})" in index, f"{name} missing from docs/README.md"

    def test_index_covers_the_docs_directory(self):
        listed = set(DOCS) | {"README.md"}
        on_disk = {
            f for f in os.listdir(os.path.join(ROOT, "docs"))
            if f.endswith(".md")
        }
        assert on_disk == listed, (
            "docs/ and the index disagree: "
            f"unlisted={sorted(on_disk - listed)} "
            f"ghosts={sorted(listed - on_disk)}"
        )


def _collect_parser(parser):
    """All option strings and subcommand trees of an argparse parser."""
    import argparse

    flags, subcommands = set(), {}
    for action in parser._actions:
        flags.update(action.option_strings)
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                subcommands[name] = _collect_parser(sub)
    return flags, subcommands


def _flatten_flags(tree):
    flags, subcommands = tree
    out = set(flags)
    for sub in subcommands.values():
        out |= _flatten_flags(sub)
    return out


class TestCliFlagsPinned:
    """Every `repro …` (and `python -m repro.lint …`) command line shown
    in the docs must parse: known subcommand, known flags. Docs showing
    a flag the parser dropped — or never had — fail here."""

    def _repro_tree(self):
        from repro.cli import build_parser

        return _collect_parser(build_parser())

    def _lint_flags(self):
        from repro.lint.cli import build_parser

        return _flatten_flags(_collect_parser(build_parser()))

    def _worker_flags(self):
        from repro.exec.worker import build_parser

        return _flatten_flags(_collect_parser(build_parser()))

    @staticmethod
    def _line_flags(line):
        for token in line.split():
            if token.startswith("--"):
                yield token.split("=")[0]

    def test_every_documented_repro_invocation_parses(self):
        top_flags, top_subs = self._repro_tree()
        for path, text in doc_texts():
            for line in command_lines(text):
                tokens = line.split()
                if len(tokens) < 2 or tokens[0] != "repro":
                    continue
                subcommand = tokens[1]
                assert subcommand in top_subs, (
                    f"{path}: unknown subcommand in {line!r}"
                )
                allowed = top_flags | _flatten_flags(top_subs[subcommand])
                for flag in self._line_flags(line):
                    assert flag in allowed, (
                        f"{path}: flag {flag} in {line!r} is not accepted "
                        f"by 'repro {subcommand}'"
                    )

    def test_every_documented_reprolint_invocation_parses(self):
        allowed = self._lint_flags()
        for path, text in doc_texts():
            for line in command_lines(text):
                if "python -m repro.lint" not in line:
                    continue
                line = line.split("&&")[0]
                for flag in self._line_flags(line):
                    assert flag in allowed, (
                        f"{path}: flag {flag} in {line!r} is not accepted "
                        f"by reprolint"
                    )

    def test_inline_code_flags_exist_somewhere(self):
        """Flags cited in prose (`--jobs K`, `--obs-out`, …) must exist
        on some parser — the repro CLI, reprolint, or the exec worker."""
        known = (
            _flatten_flags(self._repro_tree())
            | self._lint_flags()
            | self._worker_flags()
        )
        pattern = re.compile(r"`(--[a-z][a-z0-9-]*)(?:=[^`]*| [A-Z]+)?`")
        for path, text in doc_texts():
            for flag in pattern.findall(text):
                assert flag in known, f"{path}: unknown flag `{flag}` cited"


class TestArtifactPathsPinned:
    def test_bench_artifacts_named_in_docs_exist(self):
        """Concrete BENCH files (not the BENCH_*.json glob) must exist at
        the repo root and under benchmarks/results/."""
        pattern = re.compile(r"\bBENCH_(?!\*)[A-Za-z0-9_]+\.json\b")
        for path, text in doc_texts():
            for name in set(pattern.findall(text)):
                assert os.path.isfile(os.path.join(ROOT, name)), (
                    f"{path} cites {name}, missing from the repo root"
                )
                assert os.path.isfile(
                    os.path.join(ROOT, "benchmarks", "results", name)
                ), f"{path} cites {name}, missing from benchmarks/results/"

    def test_repo_paths_named_in_docs_exist(self):
        pattern = re.compile(
            r"\b((?:docs|benchmarks|tests|src|examples|tools)/[\w./-]*\w/?)"
        )
        for path, text in doc_texts():
            for cited in set(pattern.findall(text)):
                target = os.path.join(ROOT, cited)
                assert os.path.exists(target), (
                    f"{path} cites {cited}, which does not exist"
                )


class TestServingDoc:
    """docs/serving.md is normative for `repro.serve`: every serving
    knob trio and every `repro serve` flag must be documented there."""

    def test_knob_env_vars_documented(self):
        from repro.serve import (
            SERVE_MAX_INFLIGHT_ENV_VAR,
            SERVE_PORT_ENV_VAR,
            SERVE_RATE_ENV_VAR,
        )

        doc = read("docs", "serving.md")
        for var in (SERVE_PORT_ENV_VAR, SERVE_MAX_INFLIGHT_ENV_VAR,
                    SERVE_RATE_ENV_VAR):
            assert var in doc, f"{var} missing from docs/serving.md"

    def test_every_serve_flag_documented(self):
        from repro.cli import build_parser

        _, top_subs = _collect_parser(build_parser())
        assert "serve" in top_subs, "repro CLI lost the serve subcommand"
        doc = read("docs", "serving.md")
        for flag in _flatten_flags(top_subs["serve"]):
            if flag in ("-h", "--help"):
                continue
            assert flag in doc, (
                f"`repro serve` accepts {flag}, undocumented in "
                "docs/serving.md"
            )


class TestModuleReferencesResolve:
    def test_every_dotted_repro_reference_imports(self):
        """`repro.foo.bar.Baz` in any doc must resolve to a module or an
        attribute of one."""
        import importlib

        pattern = re.compile(r"\brepro\.[a-zA-Z_][\w.]*\w")
        for path, text in doc_texts():
            for token in sorted(set(pattern.findall(text))):
                parts = token.split(".")
                resolved = False
                for cut in range(len(parts), 0, -1):
                    try:
                        obj = importlib.import_module(".".join(parts[:cut]))
                    except ImportError:
                        continue
                    try:
                        for attr in parts[cut:]:
                            obj = getattr(obj, attr)
                        resolved = True
                    except AttributeError:
                        pass
                    break
                assert resolved, f"{path}: {token} does not resolve"


class TestDocLinks:
    def test_no_broken_links_or_anchors(self, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_doc_links",
            os.path.join(ROOT, "tools", "check_doc_links.py"),
        )
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)
        assert checker.main([]) == 0, capsys.readouterr().err
