"""Documentation/code consistency checks.

A reproduction's docs rot silently; these tests pin the load-bearing
cross-references: every registered experiment appears in DESIGN.md's
index and has a bench file, every bench file regenerates a registered
experiment, and the section map mentions every core module.
"""

import os
import re

from repro.experiments import available_experiments

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(*parts):
    with open(os.path.join(ROOT, *parts)) as handle:
        return handle.read()


class TestDesignIndex:
    def test_every_experiment_in_design_index(self):
        design = read("DESIGN.md")
        for eid in available_experiments():
            assert re.search(
                rf"^\| {eid}\s", design, re.M
            ), f"{eid} missing from DESIGN.md's per-experiment index"

    def test_every_experiment_has_a_bench_file(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        sources = "\n".join(
            read("benchmarks", f)
            for f in os.listdir(bench_dir)
            if f.startswith("bench_") and f.endswith(".py")
        )
        for eid in available_experiments():
            assert (
                f'run_and_record("{eid}")' in sources
            ), f"no bench regenerates {eid}"

    def test_every_bench_regenerates_a_registered_experiment(self):
        bench_dir = os.path.join(ROOT, "benchmarks")
        known = set(available_experiments())
        for f in os.listdir(bench_dir):
            if not (f.startswith("bench_") and f.endswith(".py")):
                continue
            source = read("benchmarks", f)
            for eid in re.findall(r'run_and_record\("([^"]+)"\)', source):
                assert eid in known, f"{f} runs unknown experiment {eid}"


class TestExperimentsDoc:
    def test_every_experiment_has_a_results_section(self):
        doc = read("EXPERIMENTS.md")
        for eid in available_experiments():
            assert re.search(
                rf"^## {eid} ", doc, re.M
            ), f"{eid} has no section in EXPERIMENTS.md"

    def test_erratum_documented(self):
        assert "Lemma 9" in read("EXPERIMENTS.md")


class TestPaperMap:
    def test_core_modules_mentioned(self):
        doc = read("docs", "paper_to_code.md")
        for module in (
            "repro.core.distill",
            "repro.core.tracker",
            "repro.lowerbounds.urn",
            "repro.lowerbounds.partition",
            "repro.extensions.slander",
            "analysis.lemma7_kernel",
            "analysis.lemma9",
        ):
            assert module in doc, module


class TestReadme:
    def test_examples_table_covers_directory(self):
        readme = read("README.md")
        examples_dir = os.path.join(ROOT, "examples")
        for f in os.listdir(examples_dir):
            if f.endswith(".py"):
                assert f in readme, f"{f} missing from README examples"

    def test_cli_commands_documented(self):
        readme = read("README.md")
        for command in ("repro list", "repro experiment", "repro run",
                        "repro gauntlet", "repro show", "repro bounds",
                        "repro report"):
            assert command in readme, command
