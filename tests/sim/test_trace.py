"""Tests for the trace subsystem and the replay audit."""

import json

import numpy as np
import pytest

from repro.adversaries.flood import FloodAdversary
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.trace import Trace, replay_metrics
from repro.world.generators import planted_instance


def traced_run(seed=3, alpha=0.6, adversary=True):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=64, m=64, beta=1 / 8, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    engine = SynchronousEngine(
        inst,
        DistillStrategy(),
        adversary=FloodAdversary() if adversary else None,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(trace=True),
    )
    metrics = engine.run()
    return inst, engine, metrics


class TestTraceBasics:
    def test_record_and_iterate(self):
        trace = Trace()
        trace.record(0, "probes", players=[1], objects=[2], values=[0.0])
        trace.record(1, "halt", players=[1])
        assert len(trace) == 2
        kinds = [e.kind for e in trace]
        assert kinds == ["probes", "halt"]

    def test_seq_is_monotone(self):
        trace = Trace()
        for i in range(5):
            trace.record(i, "probes", players=[], objects=[], values=[])
        assert [e.seq for e in trace] == list(range(5))

    def test_counts(self):
        trace = Trace()
        trace.record(0, "vote", player=1, object=2)
        trace.record(0, "vote", player=2, object=2)
        trace.record(1, "halt", players=[1])
        assert trace.counts() == {"vote": 2, "halt": 1}

    def test_jsonl_round_trips(self):
        trace = Trace()
        trace.record(0, "vote", player=1, object=2)
        lines = trace.to_jsonl().splitlines()
        parsed = json.loads(lines[0])
        assert parsed["kind"] == "vote"
        assert parsed["player"] == 1

    def test_write_jsonl(self, tmp_path):
        trace = Trace()
        trace.record(0, "halt", players=[0])
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(str(path))
        assert path.read_text().strip()

    def test_replay_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            replay_metrics(Trace(), 4, np.zeros(4, dtype=bool))


class TestEngineTracing:
    def test_disabled_by_default(self):
        inst = planted_instance(
            n=8, m=8, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        engine = SynchronousEngine(inst, DistillStrategy())
        assert engine.trace is None

    def test_events_recorded(self):
        _inst, engine, _metrics = traced_run()
        counts = engine.trace.counts()
        assert counts["probes"] >= 1
        assert counts["vote"] >= 1
        assert counts["halt"] >= 1
        assert counts["adversary"] >= 1

    def test_adversary_events_tag_dishonest_players(self):
        inst, engine, _metrics = traced_run()
        for event in engine.trace.of_kind("adversary"):
            assert not inst.honest_mask[event.payload["player"]]

    def test_replay_audit_matches_engine_books(self):
        """The core audit: metrics recomputed from the event stream must
        equal the engine's own accounting."""
        inst, engine, metrics = traced_run(seed=11)
        probes, satisfied, halted = replay_metrics(
            engine.trace, inst.n, inst.space.good_mask
        )
        assert np.array_equal(probes, metrics.probes)
        assert np.array_equal(satisfied, metrics.satisfied_round)
        assert np.array_equal(halted, metrics.halted_round)

    def test_replay_audit_without_adversary(self):
        inst, engine, metrics = traced_run(seed=13, adversary=False)
        probes, satisfied, halted = replay_metrics(
            engine.trace, inst.n, inst.space.good_mask
        )
        assert np.array_equal(probes, metrics.probes)
        assert np.array_equal(satisfied, metrics.satisfied_round)

    def test_vote_events_match_board(self):
        inst, engine, _metrics = traced_run(seed=17)
        traced_votes = {
            (e.payload["player"], e.payload["object"])
            for e in engine.trace.of_kind("vote")
        }
        honest_board_votes = {
            (p.player, p.object_id)
            for p in engine.board.vote_posts()
            if inst.honest_mask[p.player]
        }
        assert traced_votes == honest_board_votes


class TestFaultTracing:
    """Fault events (drops, delays, crashes, restarts, late deliveries)
    must appear in the structured trace, and traced fault runs must be
    identical serial vs parallel for a fixed seed."""

    def faulty_run(self, plan, seed=3):
        from repro.faults import FaultInjector

        world_ss, honest_ss, adversary_ss, fault_ss = np.random.SeedSequence(
            seed
        ).spawn(4)
        inst = planted_instance(
            n=32, m=32, beta=1 / 8, alpha=0.75,
            rng=np.random.default_rng(world_ss),
        )
        engine = SynchronousEngine(
            inst,
            DistillStrategy(),
            rng=np.random.default_rng(honest_ss),
            adversary_rng=np.random.default_rng(adversary_ss),
            config=EngineConfig(trace=True, max_rounds=5000),
            fault_injector=FaultInjector(
                plan, np.random.default_rng(fault_ss)
            ),
        )
        metrics = engine.run()
        return engine, metrics

    def test_drop_events_recorded_and_counted(self):
        from repro.faults import FaultPlan

        engine, metrics = self.faulty_run(FaultPlan(post_loss_rate=0.5))
        drops = engine.trace.of_kind("fault_drop")
        assert len(drops) == metrics.fault_info["dropped_posts"] > 0
        for event in drops:
            assert "player" in event.payload
            assert "object" in event.payload

    def test_delay_and_delivery_events_pair_up(self):
        from repro.faults import FaultPlan

        engine, metrics = self.faulty_run(
            FaultPlan(post_delay_rate=0.6, max_post_delay=2)
        )
        delays = engine.trace.of_kind("fault_delay")
        delivers = engine.trace.of_kind("fault_deliver")
        assert len(delays) == metrics.fault_info["delayed_posts"] > 0
        assert (
            len(delivers)
            == len(delays) - metrics.fault_info["undelivered_posts"]
        )
        for event in delays:
            assert event.payload["deliver_round"] > event.round_no

    def test_crash_and_restart_events_recorded(self):
        from repro.faults import FaultPlan

        engine, metrics = self.faulty_run(
            FaultPlan(crash_rate=0.05, restart_after=2)
        )
        crashes = engine.trace.of_kind("fault_crash")
        restarts = engine.trace.of_kind("fault_restart")
        crashed = sum(len(e.payload["players"]) for e in crashes)
        restarted = sum(len(e.payload["players"]) for e in restarts)
        assert crashed == metrics.fault_info["crashes"] > 0
        assert restarted == metrics.fault_info["restarts"]

    def test_replay_audit_still_holds_under_faults(self):
        """Fault events never corrupt the probe/halt bookkeeping the
        replay audit checks."""
        from repro.faults import FaultPlan
        from repro.sim.trace import replay_metrics

        engine, metrics = self.faulty_run(
            FaultPlan(post_loss_rate=0.3, crash_rate=0.03, restart_after=3)
        )
        probes, satisfied, halted = replay_metrics(
            engine.trace,
            metrics.n,
            engine.instance.space.good_mask,
        )
        assert np.array_equal(probes, metrics.probes)
        assert np.array_equal(satisfied, metrics.satisfied_round)

    def test_traces_identical_serial_vs_parallel(self):
        """keep_metrics=True carries traces out of pool workers; the
        event streams must match the serial run byte for byte."""
        from repro.faults import FaultPlan
        from repro.sim.runner import run_trials

        def run(n_jobs):
            res = run_trials(
                lambda rng: planted_instance(
                    n=16, m=16, beta=0.25, alpha=0.75, rng=rng
                ),
                DistillStrategy,
                n_trials=4,
                seed=21,
                config=EngineConfig(trace=True),
                keep_metrics=True,
                n_jobs=n_jobs,
                fault_plan=FaultPlan(
                    post_loss_rate=0.3, crash_rate=0.05, restart_after=2
                ),
            )
            return [m.trace.to_jsonl() for m in res.metrics]

        assert run(1) == run(2)
