"""Tests for the asynchronous engine and the timestamp-barrier adapter."""

import numpy as np
import pytest

from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.trivial import TrivialStrategy
from repro.core.distill import DistillStrategy
from repro.errors import BudgetExceededError
from repro.sim.async_engine import (
    AsynchronousEngine,
    AsyncStrategy,
    PerStepAdapter,
)
from repro.sim.engine import SynchronousEngine
from repro.sim.schedules import (
    RandomSchedule,
    RoundRobinSchedule,
    SoloFirstSchedule,
)
from repro.sim.sync_adapter import SynchronizedDistillAdapter
from repro.world.generators import planted_instance, valued_instance


def world(n=64, beta=1 / 8, alpha=1.0, seed=3):
    return planted_instance(
        n=n, m=n, beta=beta, alpha=alpha, rng=np.random.default_rng(seed)
    )


class TestAsyncEngine:
    def test_round_robin_run_completes(self):
        engine = AsynchronousEngine(
            world(),
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(1),
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied
        assert metrics.total_honest_probes == metrics.honest_probes.sum()

    def test_individual_probes_match_sync_shape(self):
        """Per-probe cost of trivial search is schedule-independent:
        async round robin gives the same geometric mean cost."""
        beta = 1 / 8
        engine = AsynchronousEngine(
            world(n=128, beta=beta),
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(5),
        )
        metrics = engine.run()
        assert 5.0 < metrics.mean_individual_probes < 12.0

    def test_step_budget_enforced(self):
        class Stubborn(AsyncStrategy):
            name = "stubborn"

            def step(self, step_no, player, view):
                return -1  # never probes, never halts

        engine = AsynchronousEngine(
            world(),
            Stubborn(),
            max_steps=50,
            strict=True,
        )
        with pytest.raises(BudgetExceededError):
            engine.run()

    def test_lenient_budget_returns_partial(self):
        engine = AsynchronousEngine(
            world(n=64, beta=1 / 64),
            PerStepAdapter(TrivialStrategy()),
            max_steps=10,
            strict=False,
            rng=np.random.default_rng(2),
        )
        metrics = engine.run()
        assert metrics.steps == 10

    def test_solo_first_forces_solo_cost(self):
        """The Section 1.2 degenerate schedule: the victim pays ~1/beta
        on its own while round-robin players share the work."""
        beta = 1 / 16
        costs = []
        for seed in range(15):
            engine = AsynchronousEngine(
                world(n=64, beta=beta, seed=seed),
                PerStepAdapter(AsyncEC04Strategy()),
                schedule=SoloFirstSchedule(victim=0),
                rng=np.random.default_rng((100, seed)),
            )
            costs.append(engine.run().probes_of(0))
        # solo probes are geometric(beta), mean 1/beta = 16; fifteen
        # trials put the sample mean below 6.4 with probability << 1%
        assert np.mean(costs) > 0.4 / beta


class TestSynchronizedAdapter:
    def test_matches_synchronous_distill(self):
        """Mean probes under the timestamp barrier (random schedule)
        match the synchronous engine within sampling noise."""
        async_costs, sync_costs = [], []
        for seed in range(6):
            inst = world(n=96, beta=1 / 8, seed=seed)
            async_ss, sched_ss, sync_ss = np.random.SeedSequence(
                seed
            ).spawn(3)
            a = AsynchronousEngine(
                inst,
                SynchronizedDistillAdapter(),
                schedule=RandomSchedule(),
                rng=np.random.default_rng(async_ss),
                schedule_rng=np.random.default_rng(sched_ss),
            ).run()
            s = SynchronousEngine(
                inst, DistillStrategy(), rng=np.random.default_rng(sync_ss)
            ).run()
            async_costs.append(a.mean_individual_probes)
            sync_costs.append(s.mean_individual_probes)
            assert a.all_honest_satisfied
        assert np.mean(async_costs) == pytest.approx(
            np.mean(sync_costs), rel=0.3
        )

    def test_virtual_rounds_track_sync_rounds(self):
        inst = world(n=96, beta=1 / 8, seed=11)
        a = AsynchronousEngine(
            inst,
            SynchronizedDistillAdapter(),
            schedule=RandomSchedule(),
            rng=np.random.default_rng(12),
            schedule_rng=np.random.default_rng(13),
        ).run()
        s = SynchronousEngine(
            inst, DistillStrategy(), rng=np.random.default_rng(14)
        ).run()
        assert a.strategy_info["max_virtual_round"] <= 2 * s.rounds + 2

    def test_barrier_waits_happen_under_random_schedule(self):
        inst = world(n=64, beta=1 / 8, seed=21)
        a = AsynchronousEngine(
            inst,
            SynchronizedDistillAdapter(),
            schedule=RandomSchedule(),
            rng=np.random.default_rng(22),
            schedule_rng=np.random.default_rng(23),
        ).run()
        assert a.strategy_info["barrier_waits"] > 0

    def test_no_waits_under_round_robin(self):
        """Round robin never schedules a player ahead of the barrier."""
        inst = world(n=64, beta=1 / 8, seed=31)
        a = AsynchronousEngine(
            inst,
            SynchronizedDistillAdapter(),
            schedule=RoundRobinSchedule(),
            rng=np.random.default_rng(32),
        ).run()
        assert a.strategy_info["barrier_waits"] == 0

    def test_unfair_schedule_stalls_synchronous_protocol(self):
        """Under solo-first the barrier can never release: a synchronous
        protocol makes no progress without fairness — the model-level
        point of Section 1.2."""
        inst = world(n=16, beta=1 / 4, seed=41)
        engine = AsynchronousEngine(
            inst,
            SynchronizedDistillAdapter(),
            schedule=SoloFirstSchedule(victim=0),
            max_steps=2000,
            strict=False,
            rng=np.random.default_rng(42),
        )
        metrics = engine.run()
        assert not metrics.all_honest_satisfied

    def test_requires_local_testing(self):
        inst = valued_instance(
            n=16, m=16, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        engine = AsynchronousEngine(inst, SynchronizedDistillAdapter())
        with pytest.raises(ValueError):
            engine.run()


class TestAsyncAdversary:
    def test_adversary_votes_land_on_async_board(self):
        from repro.adversaries.flood import FloodAdversary

        inst = world(alpha=0.5, seed=51)
        engine = AsynchronousEngine(
            inst,
            PerStepAdapter(AsyncEC04Strategy()),
            adversary=FloodAdversary(),
            rng=np.random.default_rng(52),
            adversary_rng=np.random.default_rng(53),
        )
        engine.run()
        dishonest_votes = [
            p
            for p in engine.board.vote_posts()
            if not inst.honest_mask[p.player]
        ]
        assert len(dishonest_votes) == inst.n_dishonest

    def test_adversary_cannot_impersonate_honest_async(self):
        from repro.adversaries.base import Adversary
        from repro.sim.actions import VoteAction
        from repro.errors import SimulationError

        class Impostor(Adversary):
            name = "impostor"

            def act(self, round_no, view):
                honest = int(
                    np.flatnonzero(self.instance.honest_mask)[0]
                )
                return [VoteAction(player=honest, object_id=0)]

        inst = world(alpha=0.5, seed=61)
        engine = AsynchronousEngine(
            inst,
            PerStepAdapter(AsyncEC04Strategy()),
            adversary=Impostor(),
            rng=np.random.default_rng(62),
        )
        with pytest.raises(SimulationError):
            engine.run()

    def test_bad_advice_slows_but_does_not_stop(self):
        from repro.adversaries.flood import FloodAdversary

        inst = world(n=128, beta=1 / 128, alpha=0.5, seed=71)
        attacked = AsynchronousEngine(
            inst,
            PerStepAdapter(AsyncEC04Strategy()),
            adversary=FloodAdversary(),
            rng=np.random.default_rng(72),
            adversary_rng=np.random.default_rng(73),
        ).run()
        assert attacked.all_honest_satisfied


class TestAdapterHelpers:
    def test_sync_reference_strategy_matches_params(self):
        from repro.core.parameters import DistillParameters
        from repro.sim.sync_adapter import sync_reference_strategy

        params = DistillParameters(k1=2.0, k2=4.0)
        strategy = sync_reference_strategy(params)
        assert strategy.params is params

    def test_adapter_info_reports_barrier_statistics(self):
        inst = world(n=32, beta=1 / 4, seed=81)
        engine = AsynchronousEngine(
            inst,
            SynchronizedDistillAdapter(),
            schedule=RandomSchedule(),
            rng=np.random.default_rng(82),
            schedule_rng=np.random.default_rng(83),
        )
        metrics = engine.run()
        info = metrics.strategy_info
        assert "barrier_waits" in info
        assert "max_virtual_round" in info
        assert info["algorithm"] == "async(distill+timestamps)"


class TestLenientPartialMetrics:
    """Pin the strict=False contract on the async engine: max_steps
    exhaustion returns partial metrics with satisfied_step == -1 for
    unsatisfied players, mirroring the synchronous engine."""

    def test_unsatisfied_players_read_minus_one(self):
        class BadProber(AsyncStrategy):
            """Always probes object 0 of a world where it is bad."""

            name = "bad-prober"

            def step(self, step_no, player, view):
                return 0

            def handle_result(self, step_no, player, object_id, value):
                return False, False  # never votes, never halts

        from repro.world.generators import explicit_instance

        inst = explicit_instance(
            values=np.array([0.0, 1.0]),
            good_mask=np.array([False, True]),
            honest_mask=np.array([True, True]),
            good_threshold=0.5,
        )
        engine = AsynchronousEngine(
            inst, BadProber(), max_steps=6, strict=False
        )
        metrics = engine.run()
        assert metrics.steps == 6
        assert not metrics.all_honest_satisfied
        assert (metrics.satisfied_step == -1).all()
        assert metrics.probes.tolist() == [3, 3]  # round robin split
