"""Shared fixtures for the simulation-layer tests.

``resolve_n_jobs`` degrades oversized pools to the host's core count, so on
a small CI box every ``n_jobs=2`` test would silently run serial — and the
broken-pool recovery test (whose trial function calls ``os._exit``) would
take the whole pytest process down with it. Pin a roomy fake core count so
the pool tests always exercise real pools; tests of the degrade behaviour
itself patch ``os.cpu_count`` down explicitly on top of this.
"""

import os

import pytest

from repro.sim import runner


@pytest.fixture(autouse=True)
def _plenty_of_cores(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    monkeypatch.setattr(runner, "_DEGRADE_WARNED", False)
    monkeypatch.setattr(runner, "_BATCH_FALLBACK_WARNED", False)
