"""Tests for asynchronous player schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.schedules import (
    RandomSchedule,
    RoundRobinSchedule,
    SoloFirstSchedule,
    StarvationSchedule,
)


def ids(*players):
    return np.array(sorted(players), dtype=np.int64)


class TestRoundRobin:
    def test_cycles_in_order(self, rng):
        schedule = RoundRobinSchedule()
        schedule.reset(4, rng)
        picks = [schedule.next_player(i, ids(0, 1, 2, 3)) for i in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_skips_halted_players(self, rng):
        schedule = RoundRobinSchedule()
        schedule.reset(4, rng)
        active = ids(0, 2)
        picks = [schedule.next_player(i, active) for i in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_wraps_after_last_player(self, rng):
        schedule = RoundRobinSchedule()
        schedule.reset(4, rng)
        schedule.next_player(0, ids(3))
        assert schedule.next_player(1, ids(0, 3)) == 0


class TestRandom:
    def test_only_picks_active(self, rng):
        schedule = RandomSchedule()
        schedule.reset(8, rng)
        active = ids(1, 4, 6)
        picks = {schedule.next_player(i, active) for i in range(100)}
        assert picks <= {1, 4, 6}

    def test_covers_all_active(self, rng):
        schedule = RandomSchedule()
        schedule.reset(8, rng)
        active = ids(1, 4, 6)
        picks = {schedule.next_player(i, active) for i in range(200)}
        assert picks == {1, 4, 6}


class TestSoloFirst:
    def test_victim_runs_while_active(self, rng):
        schedule = SoloFirstSchedule(victim=2)
        schedule.reset(4, rng)
        for i in range(5):
            assert schedule.next_player(i, ids(0, 1, 2, 3)) == 2

    def test_others_run_after_victim_halts(self, rng):
        schedule = SoloFirstSchedule(victim=2)
        schedule.reset(4, rng)
        picks = [schedule.next_player(i, ids(0, 1, 3)) for i in range(6)]
        assert picks == [0, 1, 3, 0, 1, 3]


class TestStarvation:
    def test_victim_only_at_window_boundaries(self, rng):
        schedule = StarvationSchedule(victim=0, fairness_window=4)
        schedule.reset(4, rng)
        picks = [
            schedule.next_player(i, ids(0, 1, 2, 3)) for i in range(8)
        ]
        assert picks[3] == 0
        assert picks[7] == 0
        assert 0 not in picks[:3] + picks[4:7]

    def test_unbounded_window_never_schedules_victim(self, rng):
        schedule = StarvationSchedule(victim=0, fairness_window=None)
        schedule.reset(4, rng)
        picks = [
            schedule.next_player(i, ids(0, 1, 2, 3)) for i in range(20)
        ]
        assert 0 not in picks

    def test_victim_runs_when_alone(self, rng):
        schedule = StarvationSchedule(victim=0, fairness_window=None)
        schedule.reset(4, rng)
        assert schedule.next_player(0, ids(0)) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StarvationSchedule(fairness_window=1)
