"""Tests for RunMetrics summaries."""

import numpy as np
import pytest

from repro.sim.metrics import RunMetrics


@pytest.fixture
def metrics():
    # 4 players: 0,1 honest; 2,3 dishonest. Player 1 never satisfied.
    return RunMetrics(
        honest_mask=np.array([True, True, False, False]),
        probes=np.array([3, 10, 0, 0]),
        paid=np.array([3.0, 10.0, 0.0, 0.0]),
        satisfied_round=np.array([2, -1, -1, -1]),
        halted_round=np.array([2, -1, -1, -1]),
        rounds=10,
        all_honest_satisfied=False,
    )


class TestAccessors:
    def test_honest_probes(self, metrics):
        assert np.array_equal(metrics.honest_probes, [3, 10])

    def test_mean_individual_probes(self, metrics):
        assert metrics.mean_individual_probes == 6.5

    def test_termination_rounds_charges_full_run_to_unsatisfied(
        self, metrics
    ):
        assert np.array_equal(metrics.honest_termination_rounds, [3, 10])

    def test_mean_individual_rounds(self, metrics):
        assert metrics.mean_individual_rounds == 6.5

    def test_max_individual_rounds(self, metrics):
        assert metrics.max_individual_rounds == 10

    def test_satisfied_fraction(self, metrics):
        assert metrics.satisfied_fraction == 0.5

    def test_mean_individual_paid(self, metrics):
        assert metrics.mean_individual_paid == 6.5

    def test_n(self, metrics):
        assert metrics.n == 4


class TestSummary:
    def test_summary_keys_stable(self, metrics):
        summary = metrics.summary()
        assert set(summary) == {
            "rounds",
            "mean_individual_probes",
            "mean_individual_rounds",
            "max_individual_rounds",
            "mean_individual_paid",
            "satisfied_fraction",
            "all_honest_satisfied",
        }

    def test_summary_values_are_floats(self, metrics):
        assert all(
            isinstance(v, float) for v in metrics.summary().values()
        )

    def test_all_satisfied_flag(self, metrics):
        assert metrics.summary()["all_honest_satisfied"] == 0.0
