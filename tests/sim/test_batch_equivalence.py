"""Golden equivalence suite: batched engine ≡ scalar engine, bit for bit.

The batched trial-lane engine (:class:`repro.sim.batch_engine.BatchedEngine`)
promises that for every supported configuration the per-trial
:class:`~repro.sim.metrics.RunMetrics` are *identical* to the scalar
:class:`~repro.sim.engine.SynchronousEngine` — same probes, same rounds,
same satisfied/halted arrays, same diagnostics. This module is that
promise's enforcement: a pinned grid over vote modes × adversaries ×
strategies, a faulted grid over fault plans (faults batch natively —
loss, delay, churn, noise, combined), grid-lane packing vs per-cell
runs, a seed-randomized property test, and the unsupported-config
fallback contract. CI fails if this module is skipped or collects zero
tests, so the contract cannot silently rot.
"""

import warnings

import numpy as np
import pytest

from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.random_votes import RandomVotesAdversary
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.full_cooperation import FullCooperationStrategy
from repro.baselines.trivial import TrivialStrategy
from repro.billboard.votes import VoteMode
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.sim.engine import EngineConfig
from repro.sim.runner import GridCell, run_trial_grid, run_trials
from repro.world.generators import planted_instance


def factory(n=16, m=16, beta=0.25, alpha=0.75):
    return lambda rng: planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=rng
    )


STRATEGIES = {
    "distill": DistillStrategy,
    "trivial": TrivialStrategy,
}

ADVERSARIES = {
    "silent": SilentAdversary,
    "random-votes": RandomVotesAdversary,
    "split-vote": SplitVoteAdversary,
}

VOTE_MODES = {
    "single": (VoteMode.SINGLE, 1),
    "multi": (VoteMode.MULTI, 2),
    "mutable": (VoteMode.MUTABLE, 1),
}

GRID = [
    (sname, aname, vname)
    for sname in STRATEGIES
    for aname in ADVERSARIES
    for vname in VOTE_MODES
]

#: one plan per fault mechanism, plus the all-at-once composition
FAULT_PLANS = {
    "loss": FaultPlan(post_loss_rate=0.3),
    "delay": FaultPlan(post_delay_rate=0.5, max_post_delay=3),
    "churn": FaultPlan(crash_rate=0.05, restart_after=2),
    "churn-permanent": FaultPlan(crash_rate=0.02),
    "noise": FaultPlan(observation_noise_rate=0.5, observation_noise=0.05),
    "combined": FaultPlan(
        post_loss_rate=0.15,
        post_delay_rate=0.15,
        max_post_delay=2,
        crash_rate=0.03,
        restart_after=3,
        observation_noise_rate=0.2,
        observation_noise=0.05,
    ),
}

FAULT_GRID = [
    (pname, sname, aname)
    for pname in FAULT_PLANS
    for sname in STRATEGIES
    for aname in ("silent", "split-vote")
]


def _config(vname):
    mode, max_votes = VOTE_MODES[vname]
    return EngineConfig(
        max_rounds=50_000, vote_mode=mode, max_votes_per_player=max_votes
    )


def _run(make_strategy, make_adversary, config, *, batch_lanes=None,
         n_trials=6, seed=42, **kwargs):
    return run_trials(
        factory(),
        make_strategy,
        make_adversary,
        n_trials=n_trials,
        seed=seed,
        config=config,
        keep_metrics=True,
        batch_lanes=batch_lanes,
        **kwargs,
    )


def assert_results_identical(scalar, batched):
    """Full-strength equality: every per-trial array and metrics field."""
    assert set(scalar.per_trial) == set(batched.per_trial)
    for key in scalar.per_trial:
        assert np.array_equal(scalar.per_trial[key], batched.per_trial[key]), (
            f"per-trial summary {key!r} diverged"
        )
    assert len(scalar.metrics) == len(batched.metrics)
    for i, (a, b) in enumerate(zip(scalar.metrics, batched.metrics)):
        assert np.array_equal(a.honest_mask, b.honest_mask), i
        assert np.array_equal(a.probes, b.probes), i
        assert np.array_equal(a.paid, b.paid), i
        assert np.array_equal(a.satisfied_round, b.satisfied_round), i
        assert np.array_equal(a.halted_round, b.halted_round), i
        assert a.rounds == b.rounds, i
        assert a.all_honest_satisfied == b.all_honest_satisfied, i
        assert a.strategy_info == b.strategy_info, i
        assert a.fault_info == b.fault_info, i
    assert scalar.strategy_infos == batched.strategy_infos


class TestGoldenGrid:
    """Every supported (strategy, adversary, vote-mode) cell, scalar vs
    batched, down to the last array element."""

    @pytest.mark.parametrize("sname,aname,vname", GRID)
    def test_batched_matches_scalar(self, sname, aname, vname):
        config = _config(vname)
        scalar = _run(STRATEGIES[sname], ADVERSARIES[aname], config)
        batched = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)

    def test_lane_count_does_not_matter(self):
        config = _config("single")
        runs = [
            _run(DistillStrategy, SplitVoteAdversary, config, batch_lanes=k)
            for k in (None, 2, 3, 6, 8)
        ]
        for other in runs[1:]:
            assert_results_identical(runs[0], other)


class TestGoldenPins:
    """Absolute pinned values so batched *and* scalar streams stay frozen
    together — a refactor that shifts both in lockstep still fails here."""

    def test_distill_split_vote_single(self):
        res = _run(
            DistillStrategy, SplitVoteAdversary, _config("single"),
            batch_lanes=3,
        )
        assert res.per_trial["rounds"].tolist() == [
            7.0, 6.0, 5.0, 4.0, 5.0, 8.0,
        ]

    def test_trivial_random_votes_mutable(self):
        res = _run(
            TrivialStrategy, RandomVotesAdversary, _config("mutable"),
            batch_lanes=3,
        )
        assert res.per_trial["rounds"].tolist() == [
            5.0, 16.0, 23.0, 10.0, 5.0, 5.0,
        ]
        assert res.per_trial["mean_individual_probes"] == pytest.approx(
            [2.4166666666666665, 3.75, 5.333333333333333,
             4.416666666666667, 2.4166666666666665, 2.9166666666666665]
        )


class TestFaultedGoldenGrid:
    """Fault plans batch natively: every fault mechanism × strategy ×
    adversary cell, faulted-batched vs faulted-scalar, including the
    per-trial ``fault_info`` realization — and with no fallback warning,
    which is the tentpole's whole point."""

    @pytest.mark.parametrize("pname,sname,aname", FAULT_GRID)
    def test_faulted_batched_matches_scalar(self, pname, sname, aname):
        plan = FAULT_PLANS[pname]
        config = _config("single")
        scalar = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, fault_plan=plan
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            batched = _run(
                STRATEGIES[sname], ADVERSARIES[aname], config,
                fault_plan=plan, batch_lanes=4,
            )
        assert_results_identical(scalar, batched)
        assert any(m.fault_info for m in batched.metrics), (
            "faulted run produced no fault_info — the injector never ran"
        )

    def test_faulted_lane_count_does_not_matter(self):
        config = _config("single")
        plan = FAULT_PLANS["combined"]
        runs = [
            _run(DistillStrategy, SplitVoteAdversary, config,
                 fault_plan=plan, batch_lanes=k)
            for k in (None, 2, 3, 6, 8)
        ]
        for other in runs[1:]:
            assert_results_identical(runs[0], other)

    def test_faulted_vote_modes(self):
        plan = FAULT_PLANS["combined"]
        for vname in VOTE_MODES:
            config = _config(vname)
            scalar = _run(
                DistillStrategy, SplitVoteAdversary, config, fault_plan=plan
            )
            batched = _run(
                DistillStrategy, SplitVoteAdversary, config, fault_plan=plan,
                batch_lanes=4,
            )
            assert_results_identical(scalar, batched)


class TestFaultedGoldenPins:
    """Absolute pinned values for faulted batched runs, so the batched and
    scalar fault streams stay frozen together."""

    def test_combined_distill_split_vote(self):
        res = _run(
            DistillStrategy, SplitVoteAdversary, _config("single"),
            fault_plan=FAULT_PLANS["combined"], batch_lanes=3,
        )
        assert res.per_trial["rounds"].tolist() == [
            10.0, 8.0, 5.0, 4.0, 5.0, 7.0,
        ]
        assert res.metrics[0].fault_info == {
            "dropped_posts": 2,
            "delayed_posts": 1,
            "crashes": 1,
            "restarts": 1,
            "undelivered_posts": 0,
        }
        assert res.metrics[3].fault_info == {
            "dropped_posts": 2,
            "delayed_posts": 2,
            "crashes": 0,
            "restarts": 0,
            "undelivered_posts": 0,
        }

    def test_churn_trivial_silent(self):
        res = _run(
            TrivialStrategy, SilentAdversary, _config("single"),
            fault_plan=FAULT_PLANS["churn"], batch_lanes=3,
        )
        assert res.per_trial["rounds"].tolist() == [
            5.0, 19.0, 26.0, 13.0, 6.0, 5.0,
        ]
        assert res.metrics[0].fault_info == {
            "dropped_posts": 0,
            "delayed_posts": 0,
            "crashes": 1,
            "restarts": 1,
            "undelivered_posts": 0,
        }


class TestFaultPlansBatchNatively:
    """The tentpole contract: ``fault_plan`` is no longer a fallback
    reason, and a no-op plan is just as batchable as no plan."""

    def test_fault_plan_no_longer_falls_back(self):
        plan = FaultPlan(post_loss_rate=0.2, crash_rate=0.05,
                         restart_after=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _run(DistillStrategy, SilentAdversary, _config("single"),
                 fault_plan=plan, batch_lanes=4)

    def test_null_plan_is_batchable_and_inert(self):
        config = _config("single")
        clean = _run(DistillStrategy, SplitVoteAdversary, config,
                     batch_lanes=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            null = _run(DistillStrategy, SplitVoteAdversary, config,
                        fault_plan=FaultPlan(), batch_lanes=4)
        assert_results_identical(clean, null)
        assert all(m.fault_info == {} for m in null.metrics)

    def test_fallback_reason_ignores_fault_plans(self):
        from repro.sim.batch_engine import batch_fallback_reason

        plan = FAULT_PLANS["combined"]
        assert batch_fallback_reason(None, plan) is None
        assert batch_fallback_reason(_config("single"), plan) is None
        assert batch_fallback_reason(
            EngineConfig(trace=True), plan
        ) == "structured traces are per-trial"


class TestFallbackAudit:
    """A degraded batch request leaves a three-part audit trail: the
    warning quotes the reason, the ``batch.fallback`` counter increments,
    and the manifest records the reason string."""

    def test_trace_fallback_is_audited(self):
        from repro.obs.registry import Registry, observe

        config = EngineConfig(max_rounds=50_000, trace=True)
        with observe(Registry()) as registry:
            with pytest.warns(
                RuntimeWarning, match="'structured traces are per-trial'"
            ):
                res = _run(DistillStrategy, SilentAdversary, config,
                           batch_lanes=4, n_trials=2)
        assert registry.counters().get("batch.fallback") == 1
        assert res.manifest is not None
        assert res.manifest.batch_fallback_reason == (
            "structured traces are per-trial"
        )

    def test_clean_batched_run_records_no_fallback(self):
        from repro.obs.registry import Registry, observe

        with observe(Registry()) as registry:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                res = _run(DistillStrategy, SilentAdversary,
                           _config("single"), batch_lanes=4, n_trials=2)
        assert "batch.fallback" not in registry.counters()
        assert res.manifest is not None
        assert res.manifest.batch_fallback_reason is None

    def test_scalar_run_records_no_fallback(self):
        res = _run(DistillStrategy, SilentAdversary, _config("single"),
                   n_trials=2)
        assert res.manifest is not None
        assert res.manifest.batch_fallback_reason is None


class TestGridLanes:
    """Grid packing: lanes from *different* experiment cells — different
    alpha/beta/strategy/adversary/fault plan — share one engine batch,
    and every cell's results stay bit-identical to a standalone
    ``run_trials`` of that cell."""

    @staticmethod
    def _cell_factory(alpha, beta):
        return lambda rng: planted_instance(
            n=16, m=16, beta=beta, alpha=alpha, rng=rng
        )

    def _mixed_cells(self):
        return [
            GridCell(
                make_instance=self._cell_factory(0.75, 0.25),
                make_strategy=DistillStrategy,
                n_trials=5,
                seed=7,
                label="clean-distill",
            ),
            GridCell(
                make_instance=self._cell_factory(0.5, 1 / 8),
                make_strategy=TrivialStrategy,
                make_adversary=SplitVoteAdversary,
                n_trials=3,
                seed=13,
                fault_plan=FaultPlan(
                    post_loss_rate=0.2, crash_rate=0.04, restart_after=2
                ),
                label="faulted-trivial",
            ),
            GridCell(
                make_instance=self._cell_factory(0.6, 0.25),
                make_strategy=DistillStrategy,
                make_adversary=SplitVoteAdversary,
                n_trials=4,
                seed=99,
                fault_plan=FaultPlan(post_delay_rate=0.3, max_post_delay=2),
                label="delayed-distill",
            ),
        ]

    def _reference(self, cell, config):
        return run_trials(
            cell.make_instance,
            cell.make_strategy,
            cell.make_adversary,
            n_trials=cell.n_trials,
            seed=cell.seed,
            config=config,
            keep_metrics=True,
            fault_plan=cell.fault_plan,
        )

    def test_mixed_cells_match_per_cell_runs(self):
        config = _config("single")
        cells = self._mixed_cells()
        # 12 trials into 4-lane groups: every group mixes cells.
        grid = run_trial_grid(
            cells, config=config, batch_lanes=4, keep_metrics=True
        )
        assert len(grid) == len(cells)
        for cell, got in zip(cells, grid):
            ref = self._reference(cell, config)
            assert_results_identical(ref, got)
            assert got.manifest is not None
            assert got.manifest.seed_entropy == ref.manifest.seed_entropy
            assert got.manifest.fault_plan_digest == (
                ref.manifest.fault_plan_digest
            )

    def test_lane_width_does_not_matter(self):
        config = _config("single")
        cells = self._mixed_cells()
        baseline = run_trial_grid(
            cells, config=config, batch_lanes=2, keep_metrics=True
        )
        for lanes in (3, 5, 12):
            other = run_trial_grid(
                cells, config=config, batch_lanes=lanes, keep_metrics=True
            )
            for a, b in zip(baseline, other):
                assert_results_identical(a, b)

    def test_scalar_grid_delegates_per_cell(self):
        config = _config("single")
        cells = self._mixed_cells()
        grid = run_trial_grid(
            cells, config=config, batch_lanes=1, keep_metrics=True
        )
        for cell, got in zip(cells, grid):
            assert_results_identical(self._reference(cell, config), got)

    def test_seeded_property_grid(self):
        """Randomized cells from a pinned metaseed: packing random mixes
        of strategies, adversaries, and plans stays per-cell identical."""
        meta = np.random.default_rng(1507)
        strategies = list(STRATEGIES.values())
        adversaries = [None, SplitVoteAdversary, RandomVotesAdversary]
        plans = [None] + list(FAULT_PLANS.values())
        config = _config("single")
        cells = []
        for i in range(4):
            adv = adversaries[int(meta.integers(len(adversaries)))]
            cells.append(
                GridCell(
                    make_instance=self._cell_factory(
                        float(meta.uniform(0.4, 0.8)),
                        float(meta.choice([1 / 8, 0.25])),
                    ),
                    make_strategy=strategies[
                        int(meta.integers(len(strategies)))
                    ],
                    make_adversary=(lambda: None) if adv is None else adv,
                    n_trials=int(meta.integers(2, 6)),
                    seed=int(meta.integers(0, 2**31)),
                    fault_plan=plans[int(meta.integers(len(plans)))],
                    label=f"cell-{i}",
                )
            )
        grid = run_trial_grid(
            cells, config=config, batch_lanes=5, keep_metrics=True
        )
        for cell, got in zip(cells, grid):
            assert_results_identical(self._reference(cell, config), got)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one cell"):
            run_trial_grid([], batch_lanes=4)

    def test_bad_cell_trials_rejected(self):
        cell = GridCell(
            make_instance=self._cell_factory(0.75, 0.25),
            make_strategy=DistillStrategy,
            n_trials=0,
        )
        with pytest.raises(ConfigurationError, match="n_trials"):
            run_trial_grid([cell], batch_lanes=4)


class TestSeedProperty:
    """Randomized probing of the grid: fresh seeds every run of the suite
    would break reproducibility, so seeds are drawn from a pinned
    metaseed — different cells, same guarantee."""

    CASES = [
        (int(s), GRID[i % len(GRID)], int(k))
        for i, (s, k) in enumerate(
            zip(
                np.random.default_rng(2026).integers(0, 2**31, size=6),
                np.random.default_rng(805).integers(2, 7, size=6),
            )
        )
    ]

    @pytest.mark.parametrize("seed,cell,lanes", CASES)
    def test_random_cell_identical(self, seed, cell, lanes):
        sname, aname, vname = cell
        config = _config(vname)
        scalar = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, seed=seed,
            n_trials=5,
        )
        batched = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, seed=seed,
            n_trials=5, batch_lanes=lanes,
        )
        assert_results_identical(scalar, batched)


class TestAdapterLanes:
    """Strategies/adversaries without a native batched form go through the
    per-lane adapters — still bit-identical, just not vectorized."""

    def test_full_cooperation_native_batched(self):
        config = _config("single")
        scalar = _run(FullCooperationStrategy, SilentAdversary, config)
        batched = _run(
            FullCooperationStrategy, SilentAdversary, config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)

    def test_per_lane_strategy_adapter(self):
        config = _config("single")
        scalar = _run(AsyncEC04Strategy, SilentAdversary, config)
        batched = _run(
            AsyncEC04Strategy, SilentAdversary, config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)

    def test_per_lane_adversary_adapter(self):
        config = _config("single")
        scalar = _run(DistillStrategy, ConcentrateAdversary, config)
        batched = _run(
            DistillStrategy, ConcentrateAdversary, config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)


class TestUnsupportedFallback:
    """The one remaining unsupported configuration — structured traces —
    degrades to the scalar engine with one warning per process, and the
    results must be identical anyway."""

    def test_trace_falls_back_with_identical_results(self):
        config = EngineConfig(max_rounds=50_000, trace=True)
        scalar = _run(DistillStrategy, SilentAdversary, config)
        with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
            batched = _run(
                DistillStrategy, SilentAdversary, config, batch_lanes=4
            )
        for a, b in zip(scalar.metrics, batched.metrics):
            assert a.trace is not None and b.trace is not None
            assert a.trace.to_jsonl() == b.trace.to_jsonl()
        assert_results_identical(scalar, batched)

    def test_fallback_warns_once_per_process(self):
        config = EngineConfig(max_rounds=50_000, trace=True)
        with pytest.warns(RuntimeWarning, match="falling back"):
            _run(DistillStrategy, SilentAdversary, config, batch_lanes=2,
                 n_trials=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _run(DistillStrategy, SilentAdversary, config, batch_lanes=2,
                 n_trials=2)

    def test_batch_engine_rejects_trace_directly(self):
        from repro.sim.batch_engine import BatchedEngine

        rng = np.random.default_rng(0)
        instances = [factory()(rng) for _ in range(2)]
        with pytest.raises(ConfigurationError, match="trace"):
            BatchedEngine(
                instances,
                strategy=None,
                config=EngineConfig(trace=True),
            )

    @pytest.mark.parametrize("bad", [0, -3, "four"])
    def test_bad_batch_lanes_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="batch_lanes"):
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=0,
                batch_lanes=bad,
            )


class TestComposition:
    """batch_lanes composes with the pool, checkpointing, and partial
    groups (n_trials not a multiple of the lane count)."""

    def test_partial_final_group(self):
        config = _config("single")
        scalar = _run(DistillStrategy, SplitVoteAdversary, config,
                      n_trials=7)
        batched = _run(DistillStrategy, SplitVoteAdversary, config,
                       n_trials=7, batch_lanes=4)
        assert_results_identical(scalar, batched)

    def test_batch_lanes_with_pool(self):
        config = _config("single")
        scalar = _run(DistillStrategy, SplitVoteAdversary, config,
                      n_trials=8)
        batched = _run(DistillStrategy, SplitVoteAdversary, config,
                       n_trials=8, batch_lanes=2, n_jobs=2)
        assert_results_identical(scalar, batched)

    def test_batch_lanes_with_checkpoint(self, tmp_path):
        # Checkpointing is incompatible with keep_metrics, so this cell
        # compares the per-trial summaries only.
        config = _config("single")
        path = str(tmp_path / "ckpt.jsonl")
        scalar = run_trials(
            factory(), DistillStrategy, SplitVoteAdversary, n_trials=6,
            seed=42, config=config,
        )
        batched = run_trials(
            factory(), DistillStrategy, SplitVoteAdversary, n_trials=6,
            seed=42, config=config, batch_lanes=3, checkpoint_path=path,
        )
        for key in scalar.per_trial:
            assert np.array_equal(
                scalar.per_trial[key], batched.per_trial[key]
            ), key
        resumed = run_trials(
            factory(), DistillStrategy, SplitVoteAdversary, n_trials=6,
            seed=42, config=config, batch_lanes=3, checkpoint_path=path,
        )
        for key in scalar.per_trial:
            assert np.array_equal(
                scalar.per_trial[key], resumed.per_trial[key]
            ), key
