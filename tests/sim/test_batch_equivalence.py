"""Golden equivalence suite: batched engine ≡ scalar engine, bit for bit.

The batched trial-lane engine (:class:`repro.sim.batch_engine.BatchedEngine`)
promises that for every supported configuration the per-trial
:class:`~repro.sim.metrics.RunMetrics` are *identical* to the scalar
:class:`~repro.sim.engine.SynchronousEngine` — same probes, same rounds,
same satisfied/halted arrays, same diagnostics. This module is that
promise's enforcement: a pinned grid over vote modes × adversaries ×
strategies, a seed-randomized property test, and the unsupported-config
fallback contract. CI fails if this module is skipped or collects zero
tests, so the contract cannot silently rot.
"""

import warnings

import numpy as np
import pytest

from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.random_votes import RandomVotesAdversary
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.full_cooperation import FullCooperationStrategy
from repro.baselines.trivial import TrivialStrategy
from repro.billboard.votes import VoteMode
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def factory(n=16, m=16, beta=0.25, alpha=0.75):
    return lambda rng: planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=rng
    )


STRATEGIES = {
    "distill": DistillStrategy,
    "trivial": TrivialStrategy,
}

ADVERSARIES = {
    "silent": SilentAdversary,
    "random-votes": RandomVotesAdversary,
    "split-vote": SplitVoteAdversary,
}

VOTE_MODES = {
    "single": (VoteMode.SINGLE, 1),
    "multi": (VoteMode.MULTI, 2),
    "mutable": (VoteMode.MUTABLE, 1),
}

GRID = [
    (sname, aname, vname)
    for sname in STRATEGIES
    for aname in ADVERSARIES
    for vname in VOTE_MODES
]


def _config(vname):
    mode, max_votes = VOTE_MODES[vname]
    return EngineConfig(
        max_rounds=50_000, vote_mode=mode, max_votes_per_player=max_votes
    )


def _run(make_strategy, make_adversary, config, *, batch_lanes=None,
         n_trials=6, seed=42, **kwargs):
    return run_trials(
        factory(),
        make_strategy,
        make_adversary,
        n_trials=n_trials,
        seed=seed,
        config=config,
        keep_metrics=True,
        batch_lanes=batch_lanes,
        **kwargs,
    )


def assert_results_identical(scalar, batched):
    """Full-strength equality: every per-trial array and metrics field."""
    assert set(scalar.per_trial) == set(batched.per_trial)
    for key in scalar.per_trial:
        assert np.array_equal(scalar.per_trial[key], batched.per_trial[key]), (
            f"per-trial summary {key!r} diverged"
        )
    assert len(scalar.metrics) == len(batched.metrics)
    for i, (a, b) in enumerate(zip(scalar.metrics, batched.metrics)):
        assert np.array_equal(a.honest_mask, b.honest_mask), i
        assert np.array_equal(a.probes, b.probes), i
        assert np.array_equal(a.paid, b.paid), i
        assert np.array_equal(a.satisfied_round, b.satisfied_round), i
        assert np.array_equal(a.halted_round, b.halted_round), i
        assert a.rounds == b.rounds, i
        assert a.all_honest_satisfied == b.all_honest_satisfied, i
        assert a.strategy_info == b.strategy_info, i
    assert scalar.strategy_infos == batched.strategy_infos


class TestGoldenGrid:
    """Every supported (strategy, adversary, vote-mode) cell, scalar vs
    batched, down to the last array element."""

    @pytest.mark.parametrize("sname,aname,vname", GRID)
    def test_batched_matches_scalar(self, sname, aname, vname):
        config = _config(vname)
        scalar = _run(STRATEGIES[sname], ADVERSARIES[aname], config)
        batched = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)

    def test_lane_count_does_not_matter(self):
        config = _config("single")
        runs = [
            _run(DistillStrategy, SplitVoteAdversary, config, batch_lanes=k)
            for k in (None, 2, 3, 6, 8)
        ]
        for other in runs[1:]:
            assert_results_identical(runs[0], other)


class TestGoldenPins:
    """Absolute pinned values so batched *and* scalar streams stay frozen
    together — a refactor that shifts both in lockstep still fails here."""

    def test_distill_split_vote_single(self):
        res = _run(
            DistillStrategy, SplitVoteAdversary, _config("single"),
            batch_lanes=3,
        )
        assert res.per_trial["rounds"].tolist() == [
            7.0, 6.0, 5.0, 4.0, 5.0, 8.0,
        ]

    def test_trivial_random_votes_mutable(self):
        res = _run(
            TrivialStrategy, RandomVotesAdversary, _config("mutable"),
            batch_lanes=3,
        )
        assert res.per_trial["rounds"].tolist() == [
            5.0, 16.0, 23.0, 10.0, 5.0, 5.0,
        ]
        assert res.per_trial["mean_individual_probes"] == pytest.approx(
            [2.4166666666666665, 3.75, 5.333333333333333,
             4.416666666666667, 2.4166666666666665, 2.9166666666666665]
        )


class TestSeedProperty:
    """Randomized probing of the grid: fresh seeds every run of the suite
    would break reproducibility, so seeds are drawn from a pinned
    metaseed — different cells, same guarantee."""

    CASES = [
        (int(s), GRID[i % len(GRID)], int(k))
        for i, (s, k) in enumerate(
            zip(
                np.random.default_rng(2026).integers(0, 2**31, size=6),
                np.random.default_rng(805).integers(2, 7, size=6),
            )
        )
    ]

    @pytest.mark.parametrize("seed,cell,lanes", CASES)
    def test_random_cell_identical(self, seed, cell, lanes):
        sname, aname, vname = cell
        config = _config(vname)
        scalar = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, seed=seed,
            n_trials=5,
        )
        batched = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, seed=seed,
            n_trials=5, batch_lanes=lanes,
        )
        assert_results_identical(scalar, batched)


class TestAdapterLanes:
    """Strategies/adversaries without a native batched form go through the
    per-lane adapters — still bit-identical, just not vectorized."""

    def test_full_cooperation_native_batched(self):
        config = _config("single")
        scalar = _run(FullCooperationStrategy, SilentAdversary, config)
        batched = _run(
            FullCooperationStrategy, SilentAdversary, config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)

    def test_per_lane_strategy_adapter(self):
        config = _config("single")
        scalar = _run(AsyncEC04Strategy, SilentAdversary, config)
        batched = _run(
            AsyncEC04Strategy, SilentAdversary, config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)

    def test_per_lane_adversary_adapter(self):
        config = _config("single")
        scalar = _run(DistillStrategy, ConcentrateAdversary, config)
        batched = _run(
            DistillStrategy, ConcentrateAdversary, config, batch_lanes=4
        )
        assert_results_identical(scalar, batched)


class TestUnsupportedFallback:
    """Unsupported configurations degrade to the scalar engine with one
    warning per process — and the results must be identical anyway."""

    def test_fault_plan_falls_back_with_identical_results(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(post_loss_rate=0.2, crash_rate=0.05,
                         restart_after=2)
        config = _config("single")
        scalar = _run(
            DistillStrategy, SilentAdversary, config, fault_plan=plan
        )
        with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
            batched = _run(
                DistillStrategy, SilentAdversary, config, fault_plan=plan,
                batch_lanes=4,
            )
        assert_results_identical(scalar, batched)

    def test_trace_falls_back_with_identical_results(self):
        config = EngineConfig(max_rounds=50_000, trace=True)
        scalar = _run(DistillStrategy, SilentAdversary, config)
        with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
            batched = _run(
                DistillStrategy, SilentAdversary, config, batch_lanes=4
            )
        for a, b in zip(scalar.metrics, batched.metrics):
            assert a.trace is not None and b.trace is not None
            assert a.trace.to_jsonl() == b.trace.to_jsonl()
        assert_results_identical(scalar, batched)

    def test_fallback_warns_once_per_process(self):
        config = EngineConfig(max_rounds=50_000, trace=True)
        with pytest.warns(RuntimeWarning, match="falling back"):
            _run(DistillStrategy, SilentAdversary, config, batch_lanes=2,
                 n_trials=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _run(DistillStrategy, SilentAdversary, config, batch_lanes=2,
                 n_trials=2)

    def test_batch_engine_rejects_trace_directly(self):
        from repro.sim.batch_engine import BatchedEngine

        rng = np.random.default_rng(0)
        instances = [factory()(rng) for _ in range(2)]
        with pytest.raises(ConfigurationError, match="trace"):
            BatchedEngine(
                instances,
                strategy=None,
                config=EngineConfig(trace=True),
            )

    @pytest.mark.parametrize("bad", [0, -3, "four"])
    def test_bad_batch_lanes_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="batch_lanes"):
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=0,
                batch_lanes=bad,
            )


class TestComposition:
    """batch_lanes composes with the pool, checkpointing, and partial
    groups (n_trials not a multiple of the lane count)."""

    def test_partial_final_group(self):
        config = _config("single")
        scalar = _run(DistillStrategy, SplitVoteAdversary, config,
                      n_trials=7)
        batched = _run(DistillStrategy, SplitVoteAdversary, config,
                       n_trials=7, batch_lanes=4)
        assert_results_identical(scalar, batched)

    def test_batch_lanes_with_pool(self):
        config = _config("single")
        scalar = _run(DistillStrategy, SplitVoteAdversary, config,
                      n_trials=8)
        batched = _run(DistillStrategy, SplitVoteAdversary, config,
                       n_trials=8, batch_lanes=2, n_jobs=2)
        assert_results_identical(scalar, batched)

    def test_batch_lanes_with_checkpoint(self, tmp_path):
        # Checkpointing is incompatible with keep_metrics, so this cell
        # compares the per-trial summaries only.
        config = _config("single")
        path = str(tmp_path / "ckpt.jsonl")
        scalar = run_trials(
            factory(), DistillStrategy, SplitVoteAdversary, n_trials=6,
            seed=42, config=config,
        )
        batched = run_trials(
            factory(), DistillStrategy, SplitVoteAdversary, n_trials=6,
            seed=42, config=config, batch_lanes=3, checkpoint_path=path,
        )
        for key in scalar.per_trial:
            assert np.array_equal(
                scalar.per_trial[key], batched.per_trial[key]
            ), key
        resumed = run_trials(
            factory(), DistillStrategy, SplitVoteAdversary, n_trials=6,
            seed=42, config=config, batch_lanes=3, checkpoint_path=path,
        )
        for key in scalar.per_trial:
            assert np.array_equal(
                scalar.per_trial[key], resumed.per_trial[key]
            ), key
