"""Tests for the synchronous round engine."""

import numpy as np
import pytest

from repro.adversaries.base import Adversary
from repro.billboard.post import PostKind
from repro.errors import (
    AdversaryViolationError,
    BudgetExceededError,
    SimulationError,
)
from repro.sim.actions import VoteAction
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.strategies.base import Strategy
from repro.world.generators import explicit_instance


class FixedProbeStrategy(Strategy):
    """Probes a scripted object id every round (or idles on -1)."""

    name = "fixed"

    def __init__(self, script):
        self.script = script

    def choose_probes(self, round_no, active_players, view):
        target = self.script[min(round_no, len(self.script) - 1)]
        return np.full(active_players.size, target, dtype=np.int64)


class OneShotVoteAdversary(Adversary):
    name = "one-shot"

    def __init__(self, player, obj, at_round=0):
        self.player = player
        self.obj = obj
        self.at_round = at_round

    def act(self, round_no, view):
        if round_no == self.at_round:
            return [VoteAction(player=self.player, object_id=self.obj)]
        return []


def two_object_instance(honest=(True, True, False)):
    """Object 0 bad, object 1 good."""
    return explicit_instance(
        values=np.array([0.0, 1.0]),
        good_mask=np.array([False, True]),
        honest_mask=np.array(honest),
        good_threshold=0.5,
    )


class TestBasicRun:
    def test_all_satisfied_when_probing_good(self):
        inst = two_object_instance()
        engine = SynchronousEngine(inst, FixedProbeStrategy([1]))
        metrics = engine.run()
        assert metrics.all_honest_satisfied
        assert metrics.rounds == 1
        assert np.array_equal(metrics.probes[:2], [1, 1])

    def test_bad_probes_accumulate_cost(self):
        inst = two_object_instance()
        engine = SynchronousEngine(inst, FixedProbeStrategy([0, 0, 1]))
        metrics = engine.run()
        assert metrics.rounds == 3
        assert np.array_equal(metrics.probes[:2], [3, 3])
        assert np.array_equal(metrics.satisfied_round[:2], [2, 2])

    def test_idle_rounds_cost_nothing(self):
        inst = two_object_instance()
        engine = SynchronousEngine(inst, FixedProbeStrategy([-1, 1]))
        metrics = engine.run()
        assert metrics.rounds == 2
        assert np.array_equal(metrics.probes[:2], [1, 1])

    def test_dishonest_players_never_probe(self):
        inst = two_object_instance()
        metrics = SynchronousEngine(inst, FixedProbeStrategy([1])).run()
        assert metrics.probes[2] == 0

    def test_votes_are_posted_on_success(self):
        inst = two_object_instance()
        engine = SynchronousEngine(inst, FixedProbeStrategy([1]))
        engine.run()
        votes = engine.board.vote_posts()
        assert {p.player for p in votes} == {0, 1}
        assert all(p.object_id == 1 for p in votes)

    def test_reports_recorded_only_when_enabled(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy([0, 1]),
            config=EngineConfig(record_reports=True),
        )
        engine.run()
        reports = engine.board.posts(kind=PostKind.REPORT)
        assert len(reports) == 2  # the round-0 bad probes

        engine2 = SynchronousEngine(inst, FixedProbeStrategy([0, 1]))
        engine2.run()
        assert engine2.board.posts(kind=PostKind.REPORT) == []


class TestStopConditions:
    def test_budget_exceeded_raises_when_strict(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy([0]),  # never finds the good object
            config=EngineConfig(max_rounds=5, strict=True),
        )
        with pytest.raises(BudgetExceededError):
            engine.run()

    def test_budget_exceeded_returns_when_lenient(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy([0]),
            config=EngineConfig(max_rounds=5, strict=False),
        )
        metrics = engine.run()
        assert metrics.rounds == 5
        assert not metrics.all_honest_satisfied

    def test_strategy_finished_stops_run(self):
        class Bell(FixedProbeStrategy):
            def finished(self, round_no):
                return round_no >= 2

        inst = two_object_instance()
        metrics = SynchronousEngine(inst, Bell([0])).run()
        assert metrics.rounds == 2
        assert not metrics.all_honest_satisfied


class TestStrategyContract:
    def test_wrong_shape_raises(self):
        class Broken(Strategy):
            name = "broken"

            def choose_probes(self, round_no, active_players, view):
                return np.array([0])  # wrong length

        inst = two_object_instance()
        with pytest.raises(SimulationError):
            SynchronousEngine(inst, Broken()).run()

    def test_unknown_object_raises(self):
        inst = two_object_instance()
        with pytest.raises(SimulationError):
            SynchronousEngine(inst, FixedProbeStrategy([9])).run()


class TestAdversaryMediation:
    def test_adversary_vote_lands_on_board(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy([0, 1]),
            adversary=OneShotVoteAdversary(player=2, obj=0),
        )
        engine.run()
        assert engine.board.current_vote_array()[2] == 0

    def test_adversary_cannot_impersonate_honest(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy([0, 1]),
            adversary=OneShotVoteAdversary(player=0, obj=0),
        )
        with pytest.raises(AdversaryViolationError):
            engine.run()

    def test_adversary_sees_same_round_honest_posts(self):
        seen = {}

        class Peek(Adversary):
            name = "peek"

            def act(self, round_no, view):
                if round_no == 0:
                    seen["votes"] = len(view.vote_posts())
                return []

        inst = two_object_instance()
        SynchronousEngine(
            inst, FixedProbeStrategy([1]), adversary=Peek()
        ).run()
        assert seen["votes"] == 2  # both honest voted in round 0


class TestDeterminism:
    def test_same_seed_same_outcome(self, rng):
        from repro.core.distill import DistillStrategy
        from repro.world.generators import planted_instance

        def once(seed):
            inst = planted_instance(
                n=32, m=32, beta=1 / 8, alpha=0.75,
                rng=np.random.default_rng(7),
            )
            engine = SynchronousEngine(
                inst,
                DistillStrategy(),
                rng=np.random.default_rng(seed),
            )
            metrics = engine.run()
            return metrics.rounds, metrics.probes.tolist()

        assert once(3) == once(3)
        # And a different seed genuinely differs (overwhelmingly likely).
        assert once(3) != once(4)


class TestLenientPartialMetrics:
    """Pin the strict=False contract: max_rounds exhaustion returns a
    partial RunMetrics in which every unsatisfied player reads
    satisfied_round == -1 (and stays unhalted), rather than raising."""

    def test_unsatisfied_players_read_minus_one(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy([0]),  # only ever probes the bad object
            config=EngineConfig(max_rounds=7, strict=False),
        )
        metrics = engine.run()
        assert metrics.rounds == 7
        assert not metrics.all_honest_satisfied
        assert metrics.satisfied_round[inst.honest_mask].tolist() == [-1, -1]
        assert metrics.halted_round[inst.honest_mask].tolist() == [-1, -1]
        # the truncated run still accounts for the probes it did make
        assert metrics.probes[inst.honest_mask].tolist() == [7, 7]
        assert metrics.satisfied_fraction == 0.0

    def test_partially_satisfied_run_reports_the_split(self):
        class SplitStrategy(FixedProbeStrategy):
            """Player 0 probes the good object, player 1 the bad one."""

            def choose_probes(self, round_no, active_players, view):
                return np.where(active_players == 0, 1, 0).astype(np.int64)

        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            SplitStrategy([0]),
            config=EngineConfig(max_rounds=4, strict=False),
        )
        metrics = engine.run()
        assert metrics.rounds == 4
        assert metrics.satisfied_round[0] == 0
        assert metrics.satisfied_round[1] == -1
        assert metrics.halted_round[1] == -1
        assert not metrics.all_honest_satisfied
        assert metrics.satisfied_fraction == 0.5
