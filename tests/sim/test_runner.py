"""Tests for the Monte-Carlo trial runner."""

import numpy as np
import pytest

from repro.baselines.trivial import TrivialStrategy
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def factory(n=16, m=16, beta=0.25, alpha=0.75):
    return lambda rng: planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=rng
    )


class TestRunTrials:
    def test_runs_requested_trials(self):
        res = run_trials(factory(), TrivialStrategy, n_trials=5, seed=1)
        assert res.n_trials == 5

    def test_reproducible_by_seed(self):
        a = run_trials(factory(), TrivialStrategy, n_trials=4, seed=9)
        b = run_trials(factory(), TrivialStrategy, n_trials=4, seed=9)
        assert np.array_equal(a.per_trial["rounds"], b.per_trial["rounds"])

    def test_different_seeds_differ(self):
        a = run_trials(factory(), TrivialStrategy, n_trials=6, seed=1)
        b = run_trials(factory(), TrivialStrategy, n_trials=6, seed=2)
        assert not np.array_equal(
            a.per_trial["mean_individual_probes"],
            b.per_trial["mean_individual_probes"],
        )

    def test_keep_metrics(self):
        res = run_trials(
            factory(), TrivialStrategy, n_trials=3, seed=0, keep_metrics=True
        )
        assert len(res.metrics) == 3

    def test_strategy_infos_collected(self):
        from repro.core.distill import DistillStrategy

        res = run_trials(factory(), DistillStrategy, n_trials=3, seed=0)
        assert len(res.strategy_infos) == 3
        assert all("attempt_count" in i for i in res.strategy_infos)

    def test_config_passed_through(self):
        with pytest.raises(Exception):
            run_trials(
                factory(beta=1 / 16, m=64),
                TrivialStrategy,
                n_trials=2,
                seed=0,
                config=EngineConfig(max_rounds=1, strict=True),
            )


class TestAggregation:
    @pytest.fixture
    def res(self):
        return run_trials(factory(), TrivialStrategy, n_trials=16, seed=3)

    def test_mean_matches_numpy(self, res):
        key = "mean_individual_probes"
        assert res.mean(key) == pytest.approx(
            float(res.per_trial[key].mean())
        )

    def test_ci_positive_for_noisy_stat(self, res):
        assert res.ci95("mean_individual_probes") > 0

    def test_quantile_bounds(self, res):
        key = "rounds"
        assert res.quantile(key, 0.0) <= res.quantile(key, 1.0)

    def test_success_rate_is_fraction(self, res):
        assert 0.0 <= res.success_rate() <= 1.0

    def test_describe_mentions_ci(self, res):
        assert "95% CI" in res.describe("rounds")

    def test_sem_scales_with_std(self, res):
        key = "rounds"
        assert res.sem(key) == pytest.approx(res.std(key) / 4.0)


class TestContextFactory:
    def test_make_context_overrides_protocol_knowledge(self):
        """The Section 5.1 use case: feed the strategy a wrong alpha."""
        from repro.core.distill import DistillStrategy
        from repro.strategies.base import StrategyContext

        seen = {}

        class Probe(DistillStrategy):
            def reset(self, ctx, rng):
                seen["alpha"] = ctx.alpha
                super().reset(ctx, rng)

        res = run_trials(
            factory(alpha=0.75),
            Probe,
            n_trials=1,
            seed=0,
            make_context=lambda inst: StrategyContext(
                n=inst.n,
                m=inst.m,
                alpha=0.25,  # deliberately wrong
                beta=inst.beta,
                good_threshold=0.5,
            ),
        )
        assert seen["alpha"] == 0.25
        assert res.n_trials == 1
