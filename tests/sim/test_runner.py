"""Tests for the Monte-Carlo trial runner."""

import numpy as np
import pytest

from repro.adversaries.silent import SilentAdversary
from repro.baselines.trivial import TrivialStrategy
from repro.errors import ConfigurationError
from repro.rng import RngFactory
from repro.sim.engine import EngineConfig
from repro.sim.runner import TrialResults, resolve_n_jobs, run_trials
from repro.world.generators import planted_instance


def factory(n=16, m=16, beta=0.25, alpha=0.75):
    return lambda rng: planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=rng
    )


class TestRunTrials:
    def test_runs_requested_trials(self):
        res = run_trials(factory(), TrivialStrategy, n_trials=5, seed=1)
        assert res.n_trials == 5

    def test_reproducible_by_seed(self):
        a = run_trials(factory(), TrivialStrategy, n_trials=4, seed=9)
        b = run_trials(factory(), TrivialStrategy, n_trials=4, seed=9)
        assert np.array_equal(a.per_trial["rounds"], b.per_trial["rounds"])

    def test_different_seeds_differ(self):
        a = run_trials(factory(), TrivialStrategy, n_trials=6, seed=1)
        b = run_trials(factory(), TrivialStrategy, n_trials=6, seed=2)
        assert not np.array_equal(
            a.per_trial["mean_individual_probes"],
            b.per_trial["mean_individual_probes"],
        )

    def test_keep_metrics(self):
        res = run_trials(
            factory(), TrivialStrategy, n_trials=3, seed=0, keep_metrics=True
        )
        assert len(res.metrics) == 3

    def test_strategy_infos_collected(self):
        from repro.core.distill import DistillStrategy

        res = run_trials(factory(), DistillStrategy, n_trials=3, seed=0)
        assert len(res.strategy_infos) == 3
        assert all("attempt_count" in i for i in res.strategy_infos)

    def test_config_passed_through(self):
        with pytest.raises(Exception):
            run_trials(
                factory(beta=1 / 16, m=64),
                TrivialStrategy,
                n_trials=2,
                seed=0,
                config=EngineConfig(max_rounds=1, strict=True),
            )


class TestAggregation:
    @pytest.fixture
    def res(self):
        return run_trials(factory(), TrivialStrategy, n_trials=16, seed=3)

    def test_mean_matches_numpy(self, res):
        key = "mean_individual_probes"
        assert res.mean(key) == pytest.approx(
            float(res.per_trial[key].mean())
        )

    def test_ci_positive_for_noisy_stat(self, res):
        assert res.ci95("mean_individual_probes") > 0

    def test_quantile_bounds(self, res):
        key = "rounds"
        assert res.quantile(key, 0.0) <= res.quantile(key, 1.0)

    def test_success_rate_is_fraction(self, res):
        assert 0.0 <= res.success_rate() <= 1.0

    def test_describe_mentions_ci(self, res):
        assert "95% CI" in res.describe("rounds")

    def test_sem_scales_with_std(self, res):
        key = "rounds"
        assert res.sem(key) == pytest.approx(res.std(key) / 4.0)


class TestContextFactory:
    def test_make_context_overrides_protocol_knowledge(self):
        """The Section 5.1 use case: feed the strategy a wrong alpha."""
        from repro.core.distill import DistillStrategy
        from repro.strategies.base import StrategyContext

        seen = {}

        class Probe(DistillStrategy):
            def reset(self, ctx, rng):
                seen["alpha"] = ctx.alpha
                super().reset(ctx, rng)

        res = run_trials(
            factory(alpha=0.75),
            Probe,
            n_trials=1,
            seed=0,
            make_context=lambda inst: StrategyContext(
                n=inst.n,
                m=inst.m,
                alpha=0.25,  # deliberately wrong
                beta=inst.beta,
                good_threshold=0.5,
            ),
        )
        assert seen["alpha"] == 0.25
        assert res.n_trials == 1


class TestGuards:
    def test_zero_trials_rejected(self):
        with pytest.raises(ConfigurationError, match="n_trials"):
            run_trials(factory(), TrivialStrategy, n_trials=0, seed=0)

    def test_negative_trials_rejected(self):
        with pytest.raises(ConfigurationError, match="n_trials"):
            run_trials(factory(), TrivialStrategy, n_trials=-3, seed=0)

    def test_empty_results_have_no_trial_count(self):
        with pytest.raises(ConfigurationError, match="zero trials"):
            TrialResults(per_trial={}).n_trials

    @pytest.mark.parametrize("bad", [0, -2])
    def test_bad_n_jobs_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="n_jobs"):
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=0, n_jobs=bad
            )

    def test_resolve_n_jobs_normalizes(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(-1) >= 1


class TestPoolDegrade:
    """Oversized pools degrade to the core count with a single warning."""

    def test_single_core_host_degrades_to_serial(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            assert resolve_n_jobs(4) == 1

    def test_oversized_pool_clamped_to_cores(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        with pytest.warns(RuntimeWarning, match="degrading to 2 worker"):
            assert resolve_n_jobs(16) == 2

    def test_warning_fires_once_per_process(self, monkeypatch):
        import os
        import warnings as _warnings

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning):
            resolve_n_jobs(3)
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert resolve_n_jobs(3) == 1

    def test_degraded_run_still_correct(self, monkeypatch):
        import os

        serial = run_trials(factory(), TrivialStrategy, n_trials=4, seed=11)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="degrading"):
            degraded = run_trials(
                factory(), TrivialStrategy, n_trials=4, seed=11, n_jobs=4
            )
        assert np.array_equal(
            serial.per_trial["rounds"], degraded.per_trial["rounds"]
        )


class TestSeedStability:
    """Pin seeded results so refactors cannot silently shift streams.

    The expected arrays were recorded before the spare stream and the
    process-pool backend landed; they must never change.
    """

    def test_golden_values_for_seed_42(self):
        res = run_trials(factory(), TrivialStrategy, n_trials=6, seed=42)
        assert res.per_trial["rounds"].tolist() == [
            5.0, 16.0, 23.0, 10.0, 5.0, 5.0,
        ]
        assert res.per_trial["mean_individual_probes"].tolist() == [
            2.4166666666666665,
            3.75,
            5.333333333333333,
            4.416666666666667,
            2.4166666666666665,
            2.9166666666666665,
        ]


class TestStreamOrder:
    """The per-trial spawn order (world, honest, adversary, spare) is a
    pinned contract: reordering or dropping a stream shifts every seeded
    result in the suite."""

    def test_streams_handed_out_in_documented_order(self):
        seed = 1234
        # Derive the expected streams exactly as run_trials does: one
        # child factory per trial, then generators in spawn order. PCG64's
        # ``inc`` identifies the stream regardless of how many values have
        # been drawn from it, so capture points need not be pristine.
        root = RngFactory.from_seed(seed)
        trial = next(root.trial_factories(1))
        expected_incs = [
            trial.spawn_generator().bit_generator.state["state"]["inc"]
            for _ in range(3)
        ]

        captured = {}

        def capturing_instance(rng):
            captured["world"] = rng.bit_generator.state["state"]["inc"]
            return planted_instance(
                n=16, m=16, beta=0.25, alpha=0.75, rng=rng
            )

        class CapturingStrategy(TrivialStrategy):
            def reset(self, ctx, rng):
                captured["honest"] = rng.bit_generator.state["state"]["inc"]
                super().reset(ctx, rng)

        class CapturingAdversary(SilentAdversary):
            def reset(self, instance, rng):
                captured["adversary"] = (
                    rng.bit_generator.state["state"]["inc"]
                )
                super().reset(instance, rng)

        run_trials(
            capturing_instance,
            CapturingStrategy,
            make_adversary=CapturingAdversary,
            n_trials=1,
            seed=seed,
        )
        actual = [
            captured["world"], captured["honest"], captured["adversary"]
        ]
        assert actual == expected_incs

    def test_exactly_four_streams_spawned_per_trial(self):
        """The fourth (spare) stream must be spawned even though unused."""
        from repro.sim.runner import _execute_trial

        trial = RngFactory.from_seed(0)
        _execute_trial(
            trial,
            make_instance=factory(),
            make_strategy=TrivialStrategy,
            make_adversary=lambda: None,
            make_context=None,
            config=None,
            keep_metrics=False,
        )
        assert trial._spawned == 4


class TestParallelEquivalence:
    """Serial and process-pool runs must be bit-identical per seed."""

    def _run(self, **kwargs):
        return run_trials(
            factory(),
            TrivialStrategy,
            make_adversary=SilentAdversary,
            n_trials=8,
            seed=7,
            **kwargs,
        )

    @pytest.mark.parametrize("jobs", [3, 4])
    def test_bit_identical_across_n_jobs(self, jobs):
        serial = self._run(n_jobs=1)
        parallel = self._run(n_jobs=jobs)
        assert set(parallel.per_trial) == set(serial.per_trial)
        for key in serial.per_trial:
            assert np.array_equal(
                parallel.per_trial[key], serial.per_trial[key]
            ), key
        assert parallel.strategy_infos == serial.strategy_infos

    def test_chunk_size_does_not_change_results(self):
        serial = self._run(n_jobs=1)
        parallel = self._run(n_jobs=2, chunk_size=1)
        for key in serial.per_trial:
            assert np.array_equal(
                parallel.per_trial[key], serial.per_trial[key]
            ), key

    def test_keep_metrics_in_parallel(self):
        res = self._run(n_jobs=2, keep_metrics=True)
        assert len(res.metrics) == 8
        assert all(m.rounds >= 1 for m in res.metrics)

    def test_all_cores_shorthand(self):
        res = self._run(n_jobs=-1)
        assert res.n_trials == 8


class TestSummaryKeyErrors:
    """Unknown summary keys must fail with a helpful error, not a bare
    KeyError."""

    @pytest.fixture
    def res(self):
        return run_trials(factory(), TrivialStrategy, n_trials=3, seed=0)

    @pytest.mark.parametrize(
        "call",
        [
            lambda r: r.mean("no_such_key"),
            lambda r: r.std("no_such_key"),
            lambda r: r.sem("no_such_key"),
            lambda r: r.ci95("no_such_key"),
            lambda r: r.quantile("no_such_key", 0.5),
            lambda r: r.describe("no_such_key"),
        ],
    )
    def test_unknown_key_raises_configuration_error(self, res, call):
        with pytest.raises(ConfigurationError) as excinfo:
            call(res)
        message = str(excinfo.value)
        assert "no_such_key" in message
        assert "rounds" in message  # lists what IS available


class SleepyStrategy(TrivialStrategy):
    """Stalls inside the engine long enough to trip any sane timeout."""

    def choose_probes(self, round_no, active_players, view):
        import time

        time.sleep(10.0)
        return super().choose_probes(round_no, active_players, view)


class TestTimeout:
    def test_hung_trial_raises_timeout_error(self):
        from repro.errors import TrialTimeoutError

        with pytest.raises(TrialTimeoutError, match="trial 0"):
            run_trials(
                factory(),
                SleepyStrategy,
                n_trials=1,
                seed=0,
                timeout=0.2,
            )

    def test_fast_trials_unaffected_by_timeout(self):
        plain = run_trials(factory(), TrivialStrategy, n_trials=3, seed=5)
        capped = run_trials(
            factory(), TrivialStrategy, n_trials=3, seed=5, timeout=60.0
        )
        for key in plain.per_trial:
            assert np.array_equal(
                plain.per_trial[key], capped.per_trial[key]
            ), key

    def test_hung_trial_raises_in_pool_worker_too(self):
        from repro.errors import TrialTimeoutError

        with pytest.raises(TrialTimeoutError):
            run_trials(
                factory(),
                SleepyStrategy,
                n_trials=2,
                seed=0,
                n_jobs=2,
                timeout=0.2,
            )


class TestBrokenPoolRecovery:
    """Worker crashes must be retried (bit-identically) and, when the
    pool keeps dying, degrade to serial execution instead of failing."""

    def _crash_once_factory(self, flag_path):
        """An instance factory that kills its pool worker on first use."""

        def make(rng):
            import multiprocessing
            import os

            if (
                multiprocessing.parent_process() is not None
                and not os.path.exists(flag_path)
            ):
                with open(flag_path, "w") as handle:
                    handle.write("crashed")
                os._exit(13)  # hard-kill the worker: BrokenProcessPool
            return planted_instance(
                n=16, m=16, beta=0.25, alpha=0.75, rng=rng
            )

        return make

    def test_retry_after_worker_crash_is_bit_identical(self, tmp_path):
        flag = str(tmp_path / "crashed.flag")
        clean = run_trials(factory(), TrivialStrategy, n_trials=6, seed=11)
        recovered = run_trials(
            self._crash_once_factory(flag),
            TrivialStrategy,
            n_trials=6,
            seed=11,
            n_jobs=2,
            max_retries=2,
            backoff_base=0.0,
        )
        import os

        assert os.path.exists(flag)  # the crash really happened
        for key in clean.per_trial:
            assert np.array_equal(
                recovered.per_trial[key], clean.per_trial[key]
            ), key

    def test_degrades_to_serial_when_pool_keeps_dying(self):
        def always_crash_in_child(rng):
            import multiprocessing
            import os

            if multiprocessing.parent_process() is not None:
                os._exit(13)
            return planted_instance(
                n=16, m=16, beta=0.25, alpha=0.75, rng=rng
            )

        clean = run_trials(factory(), TrivialStrategy, n_trials=4, seed=3)
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            degraded = run_trials(
                always_crash_in_child,
                TrivialStrategy,
                n_trials=4,
                seed=3,
                n_jobs=2,
                max_retries=1,
                backoff_base=0.0,
            )
        for key in clean.per_trial:
            assert np.array_equal(
                degraded.per_trial[key], clean.per_trial[key]
            ), key

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=0,
                max_retries=-1,
            )


class TestCheckpoint:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        plain = run_trials(factory(), TrivialStrategy, n_trials=5, seed=2)
        checked = run_trials(
            factory(), TrivialStrategy, n_trials=5, seed=2,
            checkpoint_path=path,
        )
        for key in plain.per_trial:
            assert np.array_equal(
                checked.per_trial[key], plain.per_trial[key]
            ), key

    def test_interrupted_run_resumes_bit_identically(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        calls = {"n": 0}

        def poisoned(rng):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("simulated crash mid-sweep")
            return planted_instance(
                n=16, m=16, beta=0.25, alpha=0.75, rng=rng
            )

        with pytest.raises(RuntimeError, match="mid-sweep"):
            run_trials(
                poisoned, TrivialStrategy, n_trials=6, seed=4,
                checkpoint_path=path,
            )
        # the first three trials were persisted before the crash
        resumed = run_trials(
            factory(), TrivialStrategy, n_trials=6, seed=4,
            checkpoint_path=path,
        )
        uninterrupted = run_trials(
            factory(), TrivialStrategy, n_trials=6, seed=4
        )
        for key in uninterrupted.per_trial:
            assert np.array_equal(
                resumed.per_trial[key], uninterrupted.per_trial[key]
            ), key

    def test_completed_checkpoint_short_circuits(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_trials(
            factory(), TrivialStrategy, n_trials=4, seed=8,
            checkpoint_path=path,
        )
        calls = {"n": 0}

        def counting(rng):
            calls["n"] += 1
            return planted_instance(
                n=16, m=16, beta=0.25, alpha=0.75, rng=rng
            )

        res = run_trials(
            counting, TrivialStrategy, n_trials=4, seed=8,
            checkpoint_path=path,
        )
        assert calls["n"] == 0  # everything loaded, nothing re-run
        assert res.n_trials == 4

    def test_seed_mismatch_refused(self, tmp_path):
        from repro.errors import CheckpointError

        path = str(tmp_path / "sweep.jsonl")
        run_trials(
            factory(), TrivialStrategy, n_trials=4, seed=8,
            checkpoint_path=path,
        )
        with pytest.raises(CheckpointError, match="different sweep"):
            run_trials(
                factory(), TrivialStrategy, n_trials=4, seed=9,
                checkpoint_path=path,
            )

    def test_trial_count_mismatch_refused(self, tmp_path):
        from repro.errors import CheckpointError

        path = str(tmp_path / "sweep.jsonl")
        run_trials(
            factory(), TrivialStrategy, n_trials=4, seed=8,
            checkpoint_path=path,
        )
        with pytest.raises(CheckpointError, match="different sweep"):
            run_trials(
                factory(), TrivialStrategy, n_trials=5, seed=8,
                checkpoint_path=path,
            )

    def test_keep_metrics_conflict_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(ConfigurationError, match="keep_metrics"):
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=0,
                checkpoint_path=path, keep_metrics=True,
            )

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        """A sweep killed mid-append leaves a partial last line; resume
        must shrug it off and re-run that trial."""
        path = str(tmp_path / "sweep.jsonl")
        run_trials(
            factory(), TrivialStrategy, n_trials=4, seed=8,
            checkpoint_path=path,
        )
        with open(path) as handle:
            content = handle.read().splitlines()
        with open(path, "w") as handle:
            handle.write("\n".join(content[:-1]) + "\n")
            handle.write(content[-1][: len(content[-1]) // 2])  # torn write
        resumed = run_trials(
            factory(), TrivialStrategy, n_trials=4, seed=8,
            checkpoint_path=path,
        )
        plain = run_trials(factory(), TrivialStrategy, n_trials=4, seed=8)
        for key in plain.per_trial:
            assert np.array_equal(
                resumed.per_trial[key], plain.per_trial[key]
            ), key

    def test_parallel_run_checkpoints_too(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        res = run_trials(
            factory(), TrivialStrategy, n_trials=6, seed=2, n_jobs=2,
            checkpoint_path=path,
        )
        import json

        with open(path) as handle:
            lines = [json.loads(l) for l in handle.read().splitlines() if l]
        assert lines[0]["kind"] == "header"
        assert sorted(e["index"] for e in lines[1:]) == list(range(6))
        plain = run_trials(factory(), TrivialStrategy, n_trials=6, seed=2)
        for key in plain.per_trial:
            assert np.array_equal(
                res.per_trial[key], plain.per_trial[key]
            ), key


class TestFaultPlanThreading:
    """run_trials(fault_plan=...) must be deterministic, parallel-safe,
    and — for null plans — invisible."""

    def _run(self, **kwargs):
        from repro.faults import FaultPlan

        return run_trials(
            factory(),
            TrivialStrategy,
            n_trials=6,
            seed=13,
            fault_plan=FaultPlan(
                post_loss_rate=0.3, crash_rate=0.1, restart_after=2
            ),
            **kwargs,
        )

    def test_null_plan_bit_identical_to_no_plan(self):
        from repro.faults import FaultPlan

        bare = run_trials(factory(), TrivialStrategy, n_trials=5, seed=6)
        null = run_trials(
            factory(), TrivialStrategy, n_trials=5, seed=6,
            fault_plan=FaultPlan(),
        )
        for key in bare.per_trial:
            assert np.array_equal(
                null.per_trial[key], bare.per_trial[key]
            ), key

    def test_faults_change_results_but_reproducibly(self):
        clean = run_trials(factory(), TrivialStrategy, n_trials=6, seed=13)
        faulty_a, faulty_b = self._run(), self._run()
        for key in clean.per_trial:
            assert np.array_equal(
                faulty_a.per_trial[key], faulty_b.per_trial[key]
            ), key
        assert not np.array_equal(
            clean.per_trial["rounds"], faulty_a.per_trial["rounds"]
        )

    def test_fault_runs_bit_identical_serial_vs_parallel(self):
        serial = self._run(n_jobs=1)
        parallel = self._run(n_jobs=2, chunk_size=2)
        for key in serial.per_trial:
            assert np.array_equal(
                serial.per_trial[key], parallel.per_trial[key]
            ), key


class TestCheckpointEnvironment:
    """Environmental checkpoint failures surface as ConfigurationError
    (the CLI turns those into a clean exit-2 message), never as a raw
    OSError traceback mid-sweep."""

    def test_missing_directory_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=1,
                checkpoint_path="/no/such/directory/sweep.jsonl",
            )

    def test_error_names_the_path_and_the_fix(self):
        path = "/no/such/directory/sweep.jsonl"
        with pytest.raises(ConfigurationError) as excinfo:
            run_trials(
                factory(), TrivialStrategy, n_trials=2, seed=1,
                checkpoint_path=path,
            )
        message = str(excinfo.value)
        assert path in message
        assert "writable" in message

    def test_unwritable_directory_is_configuration_error(self, tmp_path):
        import os
        import subprocess

        target = tmp_path / "frozen"
        target.mkdir()
        # Running as root ignores permission bits, so freeze the
        # directory with chattr +i where available; otherwise chmod 500
        # covers the unprivileged case.
        immutable = (
            subprocess.run(
                ["chattr", "+i", str(target)], capture_output=True
            ).returncode
            == 0
        )
        if not immutable:
            target.chmod(0o500)
            if os.access(str(target), os.W_OK):
                pytest.skip("cannot produce an unwritable directory here")
        try:
            with pytest.raises(ConfigurationError, match="checkpoint"):
                run_trials(
                    factory(), TrivialStrategy, n_trials=2, seed=1,
                    checkpoint_path=str(target / "sweep.jsonl"),
                )
        finally:
            if immutable:
                subprocess.run(
                    ["chattr", "-i", str(target)], capture_output=True
                )
            else:
                target.chmod(0o700)
