"""Bit-inertness: enabling observability never changes seeded results.

The obs layer's core contract — metrics observe the run, they never
participate in it. Enforced over the PR-3 equivalence grid (strategy ×
adversary × vote mode) for the scalar engine, the batched engine, and
directly on the asynchronous engine, plus the fault-injected path. Every
cell runs twice — with a live :class:`~repro.obs.registry.Registry` and
without — and the results must match to the last array element.
"""

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.obs.registry import Registry, observe
from repro.sim.runner import run_trials

from tests.sim.test_batch_equivalence import (
    ADVERSARIES,
    GRID,
    STRATEGIES,
    _config,
    _run,
    assert_results_identical,
    factory,
)


class TestScalarGrid:
    @pytest.mark.parametrize("sname,aname,vname", GRID)
    def test_obs_is_bit_inert_scalar(self, sname, aname, vname):
        config = _config(vname)
        plain = _run(STRATEGIES[sname], ADVERSARIES[aname], config)
        registry = Registry()
        observed = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, obs=registry
        )
        assert_results_identical(plain, observed)
        assert registry.counters()["engine.rounds"] > 0
        assert registry.counters()["trial.completed"] == plain.n_trials


class TestBatchedGrid:
    @pytest.mark.parametrize("sname,aname,vname", GRID)
    def test_obs_is_bit_inert_batched(self, sname, aname, vname):
        config = _config(vname)
        plain = _run(
            STRATEGIES[sname], ADVERSARIES[aname], config, batch_lanes=3
        )
        registry = Registry()
        observed = _run(
            STRATEGIES[sname],
            ADVERSARIES[aname],
            config,
            batch_lanes=3,
            obs=registry,
        )
        assert_results_identical(plain, observed)
        assert registry.counters()["batch.rounds"] > 0
        assert registry.counters()["trial.batched"] == plain.n_trials


class TestFaultedPath:
    def test_obs_is_bit_inert_with_faults(self):
        plan = FaultPlan(post_loss_rate=0.2, crash_rate=0.05, restart_after=2)
        config = _config("single")
        plain = _run(
            STRATEGIES["distill"], ADVERSARIES["silent"], config,
            fault_plan=plan,
        )
        registry = Registry()
        observed = _run(
            STRATEGIES["distill"], ADVERSARIES["silent"], config,
            fault_plan=plan, obs=registry,
        )
        assert_results_identical(plain, observed)
        counters = registry.counters()
        assert "faults.crashes" in counters
        assert "faults.dropped_posts" in counters


class TestActiveRegistryPath:
    def test_process_wide_registry_is_bit_inert_too(self):
        config = _config("single")
        plain = _run(STRATEGIES["distill"], ADVERSARIES["split-vote"], config)
        with observe() as registry:
            observed = _run(
                STRATEGIES["distill"], ADVERSARIES["split-vote"], config
            )
        assert_results_identical(plain, observed)
        assert registry.counters()["engine.rounds"] > 0
        assert registry.manifest is not None
        assert registry.manifest == observed.manifest


class TestAsyncEngine:
    def _run_async(self, obs=None, seed=42):
        from repro.baselines.trivial import TrivialStrategy
        from repro.rng import RngFactory
        from repro.sim.async_engine import AsynchronousEngine, PerStepAdapter
        from repro.world.generators import planted_instance

        trial = RngFactory.from_seed(seed)
        world_rng = trial.spawn_generator()
        honest_rng = trial.spawn_generator()
        schedule_rng = trial.spawn_generator()
        instance = planted_instance(
            n=16, m=16, beta=0.25, alpha=0.75, rng=world_rng
        )
        engine = AsynchronousEngine(
            instance,
            PerStepAdapter(TrivialStrategy()),
            rng=honest_rng,
            schedule_rng=schedule_rng,
            obs=obs,
        )
        return engine.run()

    def test_obs_is_bit_inert_async(self):
        plain = self._run_async()
        registry = Registry()
        observed = self._run_async(obs=registry)
        assert np.array_equal(plain.probes, observed.probes)
        assert np.array_equal(plain.satisfied_step, observed.satisfied_step)
        assert plain.steps == observed.steps
        assert plain.all_honest_satisfied == observed.all_honest_satisfied
        counters = registry.counters()
        assert counters["async.steps"] == plain.steps
        assert counters["async.probes"] > 0


class TestManifestAttachment:
    def test_every_trial_results_carries_a_manifest(self):
        result = _run(STRATEGIES["distill"], ADVERSARIES["silent"],
                      _config("single"))
        assert result.manifest is not None
        assert result.manifest.n_trials == result.n_trials
        assert result.manifest.seed_entropy is not None

    def test_manifest_identical_across_engines(self):
        """Provenance depends on inputs, not the execution backend."""
        scalar = _run(STRATEGIES["distill"], ADVERSARIES["silent"],
                      _config("single"))
        batched = _run(STRATEGIES["distill"], ADVERSARIES["silent"],
                       _config("single"), batch_lanes=3)
        assert scalar.manifest == batched.manifest


class TestWorkerSnapshotPath:
    def test_worker_chunk_ships_a_snapshot(self):
        """The forked-pool contract, exercised in-process: a worker chunk
        accumulates into a fresh registry and returns its snapshot; the
        parent's own registry is untouched by the chunk."""
        import repro.sim.runner as runner_mod
        from repro.rng import RngFactory
        from repro.sim.runner import _run_trial_chunk

        parent = Registry()
        root = RngFactory.from_seed(42)
        chunk = [
            (index, fac.seed_sequence)
            for index, fac in enumerate(root.trial_factories(2))
        ]
        state = dict(
            make_instance=factory(),
            make_strategy=STRATEGIES["distill"],
            make_adversary=ADVERSARIES["silent"],
            make_context=None,
            config=_config("single"),
            keep_metrics=False,
            obs=parent,
        )
        previous = runner_mod._WORKER_STATE
        runner_mod._WORKER_STATE = state
        try:
            pairs, snapshot = _run_trial_chunk(chunk)
        finally:
            runner_mod._WORKER_STATE = previous
        assert len(pairs) == 2
        assert snapshot is not None
        assert snapshot["counters"]["trial.completed"] == 2
        assert parent.counters() == {}  # the chunk used its own registry

    def test_no_registry_means_no_snapshot(self):
        import repro.sim.runner as runner_mod
        from repro.rng import RngFactory
        from repro.sim.runner import _run_trial_chunk

        root = RngFactory.from_seed(42)
        chunk = [(0, next(iter(root.trial_factories(1))).seed_sequence)]
        state = dict(
            make_instance=factory(),
            make_strategy=STRATEGIES["distill"],
            make_adversary=ADVERSARIES["silent"],
            make_context=None,
            config=_config("single"),
            keep_metrics=False,
            obs=None,
        )
        previous = runner_mod._WORKER_STATE
        runner_mod._WORKER_STATE = state
        try:
            pairs, snapshot = _run_trial_chunk(chunk)
        finally:
            runner_mod._WORKER_STATE = previous
        assert len(pairs) == 1
        assert snapshot is None
