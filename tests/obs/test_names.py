"""Runtime pins for the declared metric-name registry.

RPL013 proves the *static* round trip (call sites <-> registry <-> doc
catalogue) but cannot see names that only exist at runtime — the
``f"faults.{key}"`` fold realizes whatever keys the injector's summary
dict happens to carry, and ``f"substrate.{name}"`` realizes whatever the
substrate chooser returns. These tests close that gap: every realizable
dynamic member must be declared, so the registry stays the complete
metric catalogue even for the f-string families.
"""

import numpy as np

from repro.faults import FaultInjector, FaultPlan
from repro.obs.names import (
    DECLARED_COUNTERS,
    DECLARED_TIMERS,
    DYNAMIC_COUNTER_PREFIXES,
    declared_phases,
)


class TestRegistryShape:
    def test_names_are_dotted_and_lowercase(self):
        for name in DECLARED_COUNTERS | DECLARED_TIMERS:
            phase, _, member = name.partition(".")
            assert phase and member, name
            assert name == name.lower(), name

    def test_counters_and_timers_disjoint(self):
        assert not (DECLARED_COUNTERS & DECLARED_TIMERS)

    def test_dynamic_prefixes_belong_to_declared_phases(self):
        phases = declared_phases()
        for prefix in DYNAMIC_COUNTER_PREFIXES:
            assert prefix.endswith("."), prefix
            assert prefix.rstrip(".") in phases, prefix


class TestDynamicFamiliesFullyDeclared:
    def test_fault_injector_info_keys_all_declared(self):
        # the engines fold f"faults.{key}" for every key in info(); an
        # injector summary key without a declaration would mint an
        # uncatalogued counter at runtime
        injector = FaultInjector(
            FaultPlan(post_loss_rate=0.5, crash_rate=0.1, restart_after=2),
            np.random.default_rng(0),
        )
        injector.reset()
        for key in injector.info():
            assert f"faults.{key}" in DECLARED_COUNTERS, key

    def test_substrate_names_all_declared(self):
        from repro.billboard.sparse import choose_substrate

        # both resolutions of the substrate knob (f"substrate.{name}")
        for n_players in (8, 10**6):
            name = choose_substrate("auto", n_players)
            assert f"substrate.{name}" in DECLARED_COUNTERS, name
