"""The unified observation JSONL schema: write, load, summarize, diff."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.export import (
    Observations,
    diff_observations,
    informational_differences,
    load_observations,
    observation_lines,
    render_summary,
    summarize,
    write_observations,
)
from repro.obs.manifest import collect_manifest
from repro.obs.registry import Registry
from repro.sim.trace import Trace


def _registry():
    registry = Registry()
    registry.counter("engine.rounds").add(12)
    registry.counter("billboard.posts_honest").add(34)
    registry.timer("runner.run_trials").add(0.5, count=1)
    return registry


class TestLines:
    def test_every_line_is_typed_json(self):
        lines = observation_lines(
            manifest=collect_manifest(seed=9), registry=_registry()
        )
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds[0] == "manifest"
        assert set(kinds[1:]) <= {"counter", "timer"}

    def test_trace_events_keep_their_payload(self):
        trace = Trace()
        trace.record(0, "vote", player=3, object=1)
        lines = observation_lines(traces=[(7, trace)])
        record = json.loads(lines[0])
        assert record["type"] == "trace"
        assert record["trial"] == 7
        assert record["round"] == 0
        assert record["kind"] == "vote"
        assert record["player"] == 3

    def test_empty_inputs_give_no_lines(self):
        assert observation_lines() == []


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        manifest = collect_manifest(seed=3, n_trials=4)
        write_observations(path, manifest=manifest, registry=_registry())

        loaded = load_observations(path)
        assert loaded.manifest == manifest
        assert loaded.counters == {
            "billboard.posts_honest": 34,
            "engine.rounds": 12,
        }
        assert loaded.timers == {"runner.run_trials": (1, 0.5)}

    def test_manifest_line_round_trips_bit_identically(self, tmp_path):
        """The golden JSONL contract: write → load → write reproduces the
        manifest line byte for byte."""
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        manifest = collect_manifest(seed=11, n_trials=2)
        write_observations(path_a, manifest=manifest)
        write_observations(path_b, manifest=load_observations(path_a).manifest)
        with open(path_a, "rb") as a, open(path_b, "rb") as b:
            assert a.read() == b.read()

    def test_missing_file_is_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_observations("/no/such/observations.jsonl")

    def test_malformed_line_is_configuration_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "counter", "name": "x", "value": 1}\nnot json\n')
        with pytest.raises(ConfigurationError, match="line 2"):
            load_observations(str(path))

    def test_unknown_type_is_configuration_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ConfigurationError, match="unknown record type"):
            load_observations(str(path))


class TestSummary:
    def test_groups_by_phase(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_observations(path, registry=_registry())
        summary = summarize(load_observations(path))
        assert sorted(summary["phases"]) == ["billboard", "engine", "runner"]
        engine = summary["phases"]["engine"]
        assert engine["counters"] == {"engine.rounds": 12}
        runner = summary["phases"]["runner"]
        assert runner["timers"]["runner.run_trials"]["count"] == 1

    def test_summary_is_json_safe(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_observations(
            path, manifest=collect_manifest(seed=1), registry=_registry()
        )
        json.dumps(summarize(load_observations(path)))

    def test_render_mentions_every_metric(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_observations(
            path, manifest=collect_manifest(seed=1), registry=_registry()
        )
        text = render_summary(load_observations(path))
        for needle in (
            "engine.rounds",
            "billboard.posts_honest",
            "runner.run_trials",
            "config_hash",
        ):
            assert needle in text


class TestDiff:
    def test_identical_files_have_no_differences(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_observations(
            path, manifest=collect_manifest(seed=5), registry=_registry()
        )
        data = load_observations(path)
        assert diff_observations(data, data) == []

    def test_counter_and_manifest_differences_reported(self, tmp_path):
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        other = Registry()
        other.counter("engine.rounds").add(99)
        write_observations(
            path_a, manifest=collect_manifest(seed=5), registry=_registry()
        )
        write_observations(
            path_b, manifest=collect_manifest(seed=6), registry=other
        )
        report = "\n".join(
            diff_observations(load_observations(path_a), load_observations(path_b))
        )
        assert "manifest.seed_entropy" in report
        assert "counter engine.rounds" in report
        assert "counter billboard.posts_honest" in report


class TestExecutorFieldIsReportingOnly:
    """Which backend ran the trials never changes the results, so the
    manifest's ``executor`` field must not flip a diff verdict — two
    runs of one seed on different backends claim the same identity."""

    @staticmethod
    def _observations(executor):
        from dataclasses import replace

        manifest = replace(collect_manifest(seed=5), executor=executor)
        return Observations(manifest=manifest, counters={"engine.rounds": 3})

    def test_backend_difference_is_not_an_identity_diff(self):
        serial = self._observations(
            {"backend": "serial", "workers": [], "reassignments": []}
        )
        socket = self._observations(
            {
                "backend": "socket",
                "workers": ["w0", "w1"],
                "reassignments": [{"trials": [3]}],
            }
        )
        assert diff_observations(serial, socket) == []

    def test_backend_difference_is_reported_informationally(self):
        serial = self._observations({"backend": "serial"})
        socket = self._observations({"backend": "socket"})
        notes = informational_differences(serial, socket)
        assert len(notes) == 1
        assert "manifest.executor" in notes[0]
        assert "reporting only" in notes[0]

    def test_identical_executors_have_no_notes(self):
        a = self._observations({"backend": "socket"})
        b = self._observations({"backend": "socket"})
        assert informational_differences(a, b) == []

    def test_real_differences_still_flagged(self):
        from dataclasses import replace

        a = self._observations({"backend": "serial"})
        b = Observations(
            manifest=replace(
                collect_manifest(seed=6),
                executor={"backend": "socket"},
            ),
            counters={"engine.rounds": 4},
        )
        report = "\n".join(diff_observations(a, b))
        assert "manifest.seed_entropy" in report
        assert "counter engine.rounds" in report
        assert "manifest.executor" not in report

    def test_exec_counters_are_not_an_identity_diff(self):
        """A serial run records no exec.* counters; a socket run records
        its worker roster and losses. Same computation, so no verdict."""
        serial = self._observations({"backend": "serial"})
        socket = Observations(
            manifest=serial.manifest,
            counters={
                "engine.rounds": 3,
                "exec.workers": 2,
                "exec.worker_lost": 1,
                "exec.reassigned": 1,
            },
        )
        assert diff_observations(serial, socket) == []
        notes = "\n".join(informational_differences(serial, socket))
        assert "counter exec.workers (reporting only)" in notes
        assert "counter exec.worker_lost (reporting only)" in notes

    def test_non_exec_counter_differences_still_flag(self):
        a = self._observations({"backend": "serial"})
        b = Observations(
            manifest=a.manifest,
            counters={"engine.rounds": 3, "exec.workers": 2,
                      "trial.completed": 9},
        )
        report = "\n".join(diff_observations(a, b))
        assert "counter trial.completed" in report
        assert "exec.workers" not in report
