"""Registry, Counter, Timer, and the process-wide active registry."""

from repro.obs.registry import (
    Counter,
    Registry,
    Timer,
    active_registry,
    observe,
    set_active_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("engine.rounds")
        assert counter.value == 0
        counter.add()
        counter.add(5)
        assert counter.value == 6

    def test_registry_memoizes_handles(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")


class TestTimer:
    def test_time_records_one_interval(self):
        timer = Timer("runner.run_trials")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total_seconds >= 0.0

    def test_add_merges_counts_and_seconds(self):
        timer = Timer("t")
        timer.add(1.5, count=3)
        assert timer.count == 3
        assert timer.total_seconds == 1.5
        assert timer.mean_seconds == 0.5

    def test_mean_is_zero_before_first_interval(self):
        assert Timer("t").mean_seconds == 0.0


class TestSnapshotMerge:
    def test_snapshot_round_trips_through_merge(self):
        source = Registry()
        source.counter("engine.rounds").add(10)
        source.timer("runner.run_trials").add(0.25, count=2)

        target = Registry()
        target.counter("engine.rounds").add(1)
        target.merge(source.snapshot())
        assert target.counters() == {"engine.rounds": 11}
        assert target.timers() == {"runner.run_trials": (2, 0.25)}

    def test_snapshot_is_plain_data(self):
        """Snapshots cross the pool's pickle channel: dicts and tuples
        only, no live handles."""
        import pickle

        registry = Registry()
        registry.counter("a").add(3)
        registry.timer("b").add(0.1)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        fresh = Registry()
        fresh.merge(snapshot)
        assert fresh.counters() == {"a": 3}

    def test_views_are_sorted_by_name(self):
        registry = Registry()
        for name in ("z.last", "a.first", "m.middle"):
            registry.counter(name).add()
        assert list(registry.counters()) == ["a.first", "m.middle", "z.last"]


class TestActiveRegistry:
    def test_default_is_off(self):
        assert active_registry() is None

    def test_set_returns_previous(self):
        registry = Registry()
        previous = set_active_registry(registry)
        try:
            assert previous is None
            assert active_registry() is registry
        finally:
            set_active_registry(previous)

    def test_observe_installs_and_restores(self):
        assert active_registry() is None
        with observe() as registry:
            assert active_registry() is registry
        assert active_registry() is None

    def test_observe_accepts_existing_registry(self):
        mine = Registry()
        with observe(mine) as registry:
            assert registry is mine

    def test_observe_restores_on_error(self):
        try:
            with observe():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active_registry() is None
