"""RunManifest: golden round-trips, digest stability, validation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.obs.manifest import (
    SCHEMA_VERSION,
    RunManifest,
    collect_manifest,
    config_digest,
    fault_plan_digest,
)
from repro.sim.engine import EngineConfig


class TestGoldenRoundTrip:
    def test_jsonl_round_trip_is_bit_identical(self):
        """The golden contract: manifest → JSON → manifest → JSON is
        byte-for-byte stable (canonical serialization)."""
        manifest = collect_manifest(
            seed=42, n_trials=64, config=EngineConfig(), fault_plan=FaultPlan()
        )
        text = manifest.to_json()
        rebuilt = RunManifest.from_json(text)
        assert rebuilt == manifest
        assert rebuilt.to_json() == text
        assert rebuilt.to_json().encode() == text.encode()

    def test_round_trip_through_dict(self):
        manifest = collect_manifest(seed=7, n_trials=3)
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_same_inputs_same_manifest(self):
        """A manifest is a statement about inputs: same inputs on the
        same host must produce the same record (no timestamps)."""
        a = collect_manifest(seed=5, n_trials=10, config=EngineConfig())
        b = collect_manifest(seed=5, n_trials=10, config=EngineConfig())
        assert a == b
        assert a.digest() == b.digest()

    def test_canonical_json_is_single_sorted_line(self):
        text = collect_manifest(seed=1).to_json()
        assert "\n" not in text
        payload = json.loads(text)
        assert list(payload) == sorted(payload)


class TestDigests:
    def test_config_digest_depends_on_values_not_identity(self):
        assert config_digest(EngineConfig()) == config_digest(EngineConfig())
        assert config_digest(EngineConfig()) != config_digest(
            EngineConfig(max_rounds=7)
        )

    def test_config_digest_handles_enums(self):
        from repro.billboard.votes import VoteMode

        single = config_digest(EngineConfig(vote_mode=VoteMode.SINGLE))
        multi = config_digest(EngineConfig(vote_mode=VoteMode.MULTI))
        assert single != multi

    def test_fault_plan_digest_none_passthrough(self):
        assert fault_plan_digest(None) is None
        assert fault_plan_digest(FaultPlan()) is not None

    def test_fault_plan_digest_tracks_rates(self):
        assert fault_plan_digest(FaultPlan()) != fault_plan_digest(
            FaultPlan(post_loss_rate=0.25)
        )


class TestCollect:
    def test_seed_entropy_matches_checkpoint_fingerprint(self):
        from repro.rng import make_seed_sequence

        manifest = collect_manifest(seed=(3, 10))
        assert manifest.seed_entropy == str(make_seed_sequence((3, 10)).entropy)

    def test_no_seed_records_none(self):
        assert collect_manifest().seed_entropy is None

    def test_schema_version_pinned(self):
        assert collect_manifest().schema_version == SCHEMA_VERSION

    def test_environment_fields_present(self):
        manifest = collect_manifest()
        assert set(manifest.versions) == {"python", "numpy", "repro"}
        assert "platform" in manifest.host
        assert "cpu_count" in manifest.host

    def test_config_payload_overrides_config(self):
        payload = {"bench": "obs", "points": [1, 2, 3]}
        manifest = collect_manifest(config_payload=payload)
        assert manifest.config_hash == config_digest(payload)


class TestValidation:
    def test_unknown_keys_rejected(self):
        payload = collect_manifest(seed=0).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown keys"):
            RunManifest.from_dict(payload)
