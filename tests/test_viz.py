"""Tests for the terminal visualizations."""

import numpy as np
import pytest

from repro.adversaries.flood import FloodAdversary
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.sim.engine import SynchronousEngine
from repro.viz import (
    billboard_timeline,
    candidate_trajectory,
    compare_series,
    render_run,
    satisfaction_curve,
)
from repro.world.generators import planted_instance


@pytest.fixture(scope="module")
def finished_run():
    inst = planted_instance(
        n=64, m=64, beta=1 / 16, alpha=0.6,
        rng=np.random.default_rng(5),
    )
    engine = SynchronousEngine(
        inst,
        DistillStrategy(),
        adversary=FloodAdversary(),
        rng=np.random.default_rng(6),
        adversary_rng=np.random.default_rng(7),
    )
    metrics = engine.run()
    return engine, metrics


class TestSatisfactionCurve:
    def test_mentions_rounds_and_percent(self, finished_run):
        _engine, metrics = finished_run
        out = satisfaction_curve(metrics)
        assert "round" in out
        assert "%" in out

    def test_final_row_is_full(self, finished_run):
        _engine, metrics = finished_run
        out = satisfaction_curve(metrics)
        assert "100.0%" in out

    def test_monotone_bars(self, finished_run):
        _engine, metrics = finished_run
        rows = satisfaction_curve(metrics).splitlines()[1:]
        fills = [row.count("#") for row in rows]
        assert fills == sorted(fills)


class TestCandidateTrajectory:
    def test_shows_attempts(self, finished_run):
        _engine, metrics = finished_run
        out = candidate_trajectory(metrics)
        assert "ATTEMPT 1" in out
        assert "|S|=" in out

    def test_handles_missing_info(self, finished_run):
        _engine, metrics = finished_run
        from repro.sim.metrics import RunMetrics

        bare = RunMetrics(
            honest_mask=metrics.honest_mask,
            probes=metrics.probes,
            paid=metrics.paid,
            satisfied_round=metrics.satisfied_round,
            halted_round=metrics.halted_round,
            rounds=metrics.rounds,
            all_honest_satisfied=True,
            strategy_info={},
        )
        assert "no candidate trajectory" in candidate_trajectory(bare)


class TestBillboardTimeline:
    def test_shows_both_parties(self, finished_run):
        engine, _metrics = finished_run
        out = billboard_timeline(engine)
        assert "#" in out  # honest votes
        assert "x" in out  # byzantine votes

    def test_empty_board(self):
        inst = planted_instance(
            n=8, m=8, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        engine = SynchronousEngine(inst, DistillStrategy())
        assert "no votes" in billboard_timeline(engine)


class TestRenderRun:
    def test_contains_all_sections(self, finished_run):
        engine, metrics = finished_run
        out = render_run(engine, metrics)
        assert "satisfaction curve" in out
        assert "candidate trajectory" in out
        assert "billboard timeline" in out
        assert "success=True" in out


class TestCompareSeries:
    def test_delegates_to_table_renderer(self):
        out = compare_series("n", [1, 2], {"a": [1.0, 2.0]})
        assert "n=1" in out

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            compare_series("n", [1], {})
