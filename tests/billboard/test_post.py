"""Tests for billboard post records."""

import pytest

from repro.billboard.post import Post, PostKind


def make_post(**overrides):
    defaults = dict(
        seq=0,
        round_no=3,
        player=2,
        object_id=7,
        reported_value=1.0,
        kind=PostKind.VOTE,
    )
    defaults.update(overrides)
    return Post(**defaults)


class TestPost:
    def test_vote_flag_for_vote(self):
        assert make_post(kind=PostKind.VOTE).is_vote

    def test_vote_flag_for_report(self):
        assert not make_post(kind=PostKind.REPORT).is_vote

    def test_posts_are_immutable(self):
        post = make_post()
        with pytest.raises(AttributeError):
            post.object_id = 5

    def test_equality_is_structural(self):
        assert make_post() == make_post()
        assert make_post() != make_post(seq=1)

    def test_str_mentions_player_and_object(self):
        text = str(make_post())
        assert "player=2" in text
        assert "object=7" in text

    def test_kind_enum_values(self):
        assert PostKind.VOTE.value == "vote"
        assert PostKind.REPORT.value == "report"
