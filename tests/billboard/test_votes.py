"""Tests for reader-side vote accounting (the VoteLedger)."""

import numpy as np
import pytest

from repro.billboard.post import Post, PostKind
from repro.billboard.votes import VoteLedger, VoteMode
from repro.errors import ConfigurationError


def vote(ledger, round_no, player, obj):
    post = Post(
        seq=0,
        round_no=round_no,
        player=player,
        object_id=obj,
        reported_value=1.0,
        kind=PostKind.VOTE,
    )
    return ledger.record(post)


@pytest.fixture
def single():
    return VoteLedger(n_players=6, n_objects=10, mode=VoteMode.SINGLE)


@pytest.fixture
def multi():
    return VoteLedger(
        n_players=6, n_objects=10, mode=VoteMode.MULTI, max_votes_per_player=2
    )


@pytest.fixture
def mutable():
    return VoteLedger(n_players=6, n_objects=10, mode=VoteMode.MUTABLE)


class TestConstruction:
    def test_rejects_zero_players(self):
        with pytest.raises(ConfigurationError):
            VoteLedger(0, 5)

    def test_rejects_zero_objects(self):
        with pytest.raises(ConfigurationError):
            VoteLedger(5, 0)

    def test_rejects_zero_vote_cap(self):
        with pytest.raises(ConfigurationError):
            VoteLedger(5, 5, mode=VoteMode.MULTI, max_votes_per_player=0)

    def test_single_mode_forces_cap_one(self):
        ledger = VoteLedger(
            5, 5, mode=VoteMode.SINGLE, max_votes_per_player=7
        )
        assert ledger.max_votes_per_player == 1


class TestSingleMode:
    def test_first_vote_is_effective(self, single):
        assert vote(single, 0, 1, 3)

    def test_second_vote_by_same_player_ignored(self, single):
        vote(single, 0, 1, 3)
        assert not vote(single, 1, 1, 4)
        assert single.current_vote_array()[1] == 3

    def test_one_vote_per_player_invariant(self, single):
        for obj in range(5):
            vote(single, obj, 2, obj)
        assert single.votes_of(2) == (0,)
        assert single.effective_vote_count == 1

    def test_current_vote_defaults_minus_one(self, single):
        assert (single.current_vote_array() == -1).all()

    def test_objects_with_votes_sorted_unique(self, single):
        vote(single, 0, 0, 7)
        vote(single, 0, 1, 2)
        vote(single, 1, 2, 7)
        assert np.array_equal(single.objects_with_votes(), [2, 7])


class TestMultiMode:
    def test_up_to_f_votes_count(self, multi):
        assert vote(multi, 0, 1, 3)
        assert vote(multi, 1, 1, 4)
        assert not vote(multi, 2, 1, 5)
        assert multi.votes_of(1) == (3, 4)

    def test_duplicate_object_vote_ignored(self, multi):
        vote(multi, 0, 1, 3)
        assert not vote(multi, 1, 1, 3)
        assert multi.votes_of(1) == (3,)

    def test_advice_target_is_first_vote(self, multi):
        vote(multi, 0, 1, 3)
        vote(multi, 1, 1, 4)
        assert multi.current_vote_array()[1] == 3

    def test_budget_accounting(self, multi):
        vote(multi, 0, 1, 3)
        vote(multi, 0, 1, 4)
        vote(multi, 0, 2, 5)
        assert multi.votes_cast_by(np.array([1, 2])) == 3


class TestMutableMode:
    def test_latest_vote_is_current(self, mutable):
        vote(mutable, 0, 1, 3)
        vote(mutable, 1, 1, 4)
        assert mutable.current_vote_array()[1] == 4

    def test_repeat_of_same_object_is_noop(self, mutable):
        vote(mutable, 0, 1, 3)
        assert not vote(mutable, 1, 1, 3)

    def test_switch_back_is_effective(self, mutable):
        vote(mutable, 0, 1, 3)
        vote(mutable, 1, 1, 4)
        assert vote(mutable, 2, 1, 3)
        assert mutable.current_vote_array()[1] == 3

    def test_window_counts_last_switch_only(self, mutable):
        vote(mutable, 0, 1, 3)
        vote(mutable, 1, 1, 4)
        counts = mutable.counts_in_window(0, 2)
        assert counts[3] == 0
        assert counts[4] == 1
        assert counts.sum() == 1


class TestWindows:
    def test_window_bounds_are_half_open(self, single):
        vote(single, 0, 0, 1)
        vote(single, 1, 1, 1)
        vote(single, 2, 2, 1)
        assert single.counts_in_window(1, 2)[1] == 1

    def test_negative_window_rejected(self, single):
        with pytest.raises(ConfigurationError):
            single.counts_in_window(3, 2)

    def test_empty_window_all_zero(self, single):
        vote(single, 0, 0, 1)
        assert single.counts_in_window(5, 9).sum() == 0

    def test_window_additivity(self, single):
        for r, (p, o) in enumerate([(0, 1), (1, 1), (2, 2), (3, 2), (4, 1)]):
            vote(single, r, p, o)
        whole = single.counts_in_window(0, 5)
        split = single.counts_in_window(0, 2) + single.counts_in_window(2, 5)
        assert np.array_equal(whole, split)


class TestHorizons:
    def test_current_votes_respect_horizon(self, single):
        vote(single, 0, 0, 1)
        vote(single, 3, 1, 2)
        asof = single.current_vote_array(before_round=3)
        assert asof[0] == 1
        assert asof[1] == -1

    def test_objects_with_votes_respect_horizon(self, single):
        vote(single, 0, 0, 5)
        vote(single, 4, 1, 6)
        assert np.array_equal(single.objects_with_votes(before_round=1), [5])

    def test_mutable_horizon_gives_vote_at_that_time(self, mutable):
        vote(mutable, 0, 1, 3)
        vote(mutable, 5, 1, 4)
        assert mutable.current_vote_array(before_round=5)[1] == 3
        assert mutable.current_vote_array(before_round=6)[1] == 4

    def test_multi_horizon_first_vote(self, multi):
        vote(multi, 0, 1, 3)
        vote(multi, 2, 1, 4)
        assert multi.current_vote_array(before_round=1)[1] == 3
        assert multi.current_vote_array(before_round=3)[1] == 3
