"""Property-based tests for the VoteLedger (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.post import Post, PostKind
from repro.billboard.votes import VoteLedger, VoteMode

N_PLAYERS = 8
N_OBJECTS = 12

# A vote stream: (player, object) pairs posted in consecutive rounds.
vote_streams = st.lists(
    st.tuples(
        st.integers(0, N_PLAYERS - 1), st.integers(0, N_OBJECTS - 1)
    ),
    max_size=60,
)


def replay(mode, stream, f=2):
    ledger = VoteLedger(
        N_PLAYERS, N_OBJECTS, mode=mode, max_votes_per_player=f
    )
    for round_no, (player, obj) in enumerate(stream):
        ledger.record(
            Post(
                seq=round_no,
                round_no=round_no,
                player=player,
                object_id=obj,
                reported_value=1.0,
                kind=PostKind.VOTE,
            )
        )
    return ledger


@given(vote_streams)
@settings(max_examples=80, deadline=None)
def test_single_mode_at_most_one_vote_per_player(stream):
    ledger = replay(VoteMode.SINGLE, stream)
    for player in range(N_PLAYERS):
        assert len(ledger.votes_of(player)) <= 1


@given(vote_streams)
@settings(max_examples=80, deadline=None)
def test_single_mode_first_vote_wins(stream):
    ledger = replay(VoteMode.SINGLE, stream)
    first_by_player = {}
    for player, obj in stream:
        first_by_player.setdefault(player, obj)
    votes = ledger.current_vote_array()
    for player in range(N_PLAYERS):
        expected = first_by_player.get(player, -1)
        assert votes[player] == expected


@given(vote_streams, st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_multi_mode_cap_and_distinctness(stream, f):
    ledger = replay(VoteMode.MULTI, stream, f=f)
    for player in range(N_PLAYERS):
        targets = ledger.votes_of(player)
        assert len(targets) <= f
        assert len(set(targets)) == len(targets)


@given(vote_streams)
@settings(max_examples=80, deadline=None)
def test_mutable_mode_current_is_last_posted(stream):
    ledger = replay(VoteMode.MUTABLE, stream)
    last_by_player = {}
    for player, obj in stream:
        last_by_player[player] = obj
    votes = ledger.current_vote_array()
    for player in range(N_PLAYERS):
        assert votes[player] == last_by_player.get(player, -1)


@given(vote_streams, st.integers(0, 30), st.integers(0, 30))
@settings(max_examples=80, deadline=None)
def test_window_counts_are_additive(stream, a, b):
    lo, hi = sorted((a, b))
    ledger = replay(VoteMode.SINGLE, stream)
    whole = ledger.counts_in_window(0, 61)
    left = ledger.counts_in_window(0, lo)
    mid = ledger.counts_in_window(lo, hi)
    right = ledger.counts_in_window(hi, 61)
    assert np.array_equal(whole, left + mid + right)


@given(vote_streams)
@settings(max_examples=80, deadline=None)
def test_total_counts_equal_effective_votes(stream):
    ledger = replay(VoteMode.SINGLE, stream)
    counts = ledger.counts_in_window(0, len(stream) + 1)
    assert counts.sum() == ledger.effective_vote_count


@given(vote_streams)
@settings(max_examples=80, deadline=None)
def test_objects_with_votes_matches_counts(stream):
    ledger = replay(VoteMode.SINGLE, stream)
    counts = ledger.counts_in_window(0, len(stream) + 1)
    assert np.array_equal(
        ledger.objects_with_votes(), np.flatnonzero(counts > 0)
    )
