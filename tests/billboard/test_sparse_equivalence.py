"""Golden equivalence suite: sparse substrate ≡ dense, bit for bit.

The sparse columnar substrate (:mod:`repro.billboard.sparse`) promises
that ``substrate=`` never changes a result: for every vote mode, both
engines, and faulted cells alike, a sparse run's
:class:`~repro.sim.metrics.RunMetrics` — probes, paid, satisfied/halted
arrays, rounds, ``fault_info``, everything — are *identical* to the
dense run of the same seed. This module is that promise's enforcement:
a pinned grid over vote modes × {scalar, batched K=8} × {clean, faulted
E15-style churn cell}, the auto-threshold contract, the structured-trace
fallback audit, and the ``substrate.*`` observability counters.
"""

import warnings

import numpy as np
import pytest

from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.sparse import SPARSE_AUTO_THRESHOLD
from repro.billboard.votes import VoteMode
from repro.core.distill import DistillStrategy
from repro.faults.plan import FaultPlan
from repro.obs.registry import Registry
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def factory(n=16, m=16, beta=0.25, alpha=0.75):
    return lambda rng: planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=rng
    )


VOTE_MODES = {
    "single": (VoteMode.SINGLE, 1),
    "multi": (VoteMode.MULTI, 2),
    "mutable": (VoteMode.MUTABLE, 1),
}

#: the E15-style robustness cell: post loss + delay + churn + noise at
#: once, the hardest configuration the fault layer supports
FAULTED_PLAN = FaultPlan(
    post_loss_rate=0.15,
    post_delay_rate=0.15,
    max_post_delay=2,
    crash_rate=0.03,
    restart_after=3,
    observation_noise_rate=0.2,
    observation_noise=0.05,
)

GRID = [
    (vname, lanes, plan_name)
    for vname in VOTE_MODES
    for lanes in (None, 8)
    for plan_name in ("clean", "faulted")
]


def _config(vname):
    mode, max_votes = VOTE_MODES[vname]
    return EngineConfig(
        max_rounds=50_000, vote_mode=mode, max_votes_per_player=max_votes
    )


def _run(substrate, vname, lanes, plan_name, seed=42, obs=None):
    return run_trials(
        factory(),
        DistillStrategy,
        SplitVoteAdversary,
        n_trials=8,
        seed=seed,
        config=_config(vname),
        keep_metrics=True,
        batch_lanes=lanes,
        fault_plan=FAULTED_PLAN if plan_name == "faulted" else None,
        substrate=substrate,
        obs=obs,
    )


def assert_results_identical(dense, sparse):
    """Full-strength equality: every per-trial array and metrics field."""
    assert set(dense.per_trial) == set(sparse.per_trial)
    for key in dense.per_trial:
        assert np.array_equal(dense.per_trial[key], sparse.per_trial[key]), (
            f"per-trial summary {key!r} diverged"
        )
    assert len(dense.metrics) == len(sparse.metrics)
    for i, (a, b) in enumerate(zip(dense.metrics, sparse.metrics)):
        assert np.array_equal(a.honest_mask, b.honest_mask), i
        assert np.array_equal(a.probes, b.probes), i
        assert np.array_equal(a.paid, b.paid), i
        assert np.array_equal(a.satisfied_round, b.satisfied_round), i
        assert np.array_equal(a.halted_round, b.halted_round), i
        assert a.rounds == b.rounds, i
        assert a.all_honest_satisfied == b.all_honest_satisfied, i
        assert a.strategy_info == b.strategy_info, i
        assert a.fault_info == b.fault_info, i
    assert dense.strategy_infos == sparse.strategy_infos


class TestGoldenGrid:
    """Every (vote mode, engine, fault) cell, dense vs sparse, down to
    the last array element."""

    @pytest.mark.parametrize("vname,lanes,plan_name", GRID)
    def test_sparse_matches_dense(self, vname, lanes, plan_name):
        dense = _run("dense", vname, lanes, plan_name)
        sparse = _run("sparse", vname, lanes, plan_name)
        assert_results_identical(dense, sparse)
        if plan_name == "faulted":
            assert any(m.fault_info for m in sparse.metrics), (
                "faulted cell produced no fault_info — the injector "
                "never ran"
            )

    def test_auto_matches_both_below_threshold(self):
        # n=16 is far below SPARSE_AUTO_THRESHOLD, so auto resolves to
        # dense — and either way the results must be the pinned ones
        auto = _run("auto", "single", None, "clean")
        dense = _run("dense", "single", None, "clean")
        assert_results_identical(dense, auto)
        default = _run(None, "single", None, "clean")
        assert_results_identical(dense, default)


class TestSubstrateResolution:
    """Engine-level knob resolution, fallbacks, and observability."""

    def _engine(self, n=12, substrate=None, config=None, obs=None):
        rng = np.random.default_rng(np.random.SeedSequence(5))
        instance = planted_instance(
            n=n, m=8, beta=0.25, alpha=0.75,
            rng=np.random.default_rng(np.random.SeedSequence(6)),
        )
        return SynchronousEngine(
            instance,
            DistillStrategy(),
            adversary=SilentAdversary(),
            rng=rng,
            adversary_rng=np.random.default_rng(np.random.SeedSequence(7)),
            config=config,
            obs=obs,
            substrate=substrate,
        )

    def test_engine_resolves_auto_by_player_count(self):
        assert self._engine(substrate=None).substrate == "dense"
        assert self._engine(substrate="sparse").substrate == "sparse"
        assert SPARSE_AUTO_THRESHOLD > 12  # the fixture stays dense

    def test_traces_degrade_sparse_to_dense_with_audit(self):
        engine = self._engine(
            substrate="sparse", config=EngineConfig(trace=True)
        )
        assert engine.substrate == "dense"
        assert engine.substrate_fallback is not None
        clean = self._engine(substrate="sparse")
        assert clean.substrate == "sparse"
        assert clean.substrate_fallback is None

    def test_substrate_counters_are_recorded(self):
        obs = Registry()
        self._engine(substrate="sparse", obs=obs).run()
        counters = obs.snapshot()["counters"]
        assert counters.get("substrate.sparse") == 1
        assert "substrate.fallback" not in counters

    def test_fallback_counter_on_traced_sparse_run(self):
        obs = Registry()
        self._engine(
            substrate="sparse", config=EngineConfig(trace=True), obs=obs
        ).run()
        counters = obs.snapshot()["counters"]
        assert counters.get("substrate.dense") == 1
        assert counters.get("substrate.fallback") == 1

    def test_manifest_records_the_requested_substrate(self):
        res = _run("sparse", "single", None, "clean")
        assert res.manifest.substrate == "sparse"
        assert res.manifest.schema_version >= 4
        default = _run(None, "single", None, "clean")
        assert default.manifest.substrate is None

    def test_obs_diff_treats_substrate_as_reporting_only(self):
        from repro.obs.export import (
            REPORTING_COUNTER_PREFIXES,
            REPORTING_MANIFEST_FIELDS,
        )

        assert "substrate" in REPORTING_MANIFEST_FIELDS
        assert "substrate." in REPORTING_COUNTER_PREFIXES

    def test_no_fallback_warning_on_clean_sparse_runs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _run("sparse", "single", 8, "clean")
