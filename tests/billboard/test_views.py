"""Tests for horizon-limited billboard views."""

import numpy as np

from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView


def fill(board):
    board.append(0, 0, 1, 1.0, PostKind.VOTE)
    board.append(1, 1, 2, 1.0, PostKind.VOTE)
    board.append(2, 2, 3, 0.0, PostKind.REPORT)
    board.append(2, 3, 1, 1.0, PostKind.VOTE)


class TestHorizon:
    def test_full_view_sees_everything(self, board):
        fill(board)
        view = BillboardView(board)
        assert len(view.posts()) == 4

    def test_horizon_excludes_current_round(self, board):
        fill(board)
        view = BillboardView(board, before_round=2)
        assert len(view.posts()) == 2

    def test_horizon_zero_sees_nothing(self, board):
        fill(board)
        view = BillboardView(board, before_round=0)
        assert view.posts() == []
        assert (view.current_vote_array() == -1).all()

    def test_with_horizon_builds_new_view(self, board):
        fill(board)
        full = BillboardView(board)
        narrowed = full.with_horizon(1)
        assert len(narrowed.posts()) == 1
        assert len(full.posts()) == 4

    def test_dimensions_exposed(self, board):
        view = BillboardView(board)
        assert view.n_players == 8
        assert view.n_objects == 16


class TestQueries:
    def test_vote_posts_filtered(self, board):
        fill(board)
        view = BillboardView(board)
        assert all(p.is_vote for p in view.vote_posts())
        assert len(view.vote_posts()) == 3

    def test_current_votes_at_horizon(self, board):
        fill(board)
        view = BillboardView(board, before_round=1)
        votes = view.current_vote_array()
        assert votes[0] == 1
        assert votes[1] == -1

    def test_objects_with_votes_at_horizon(self, board):
        fill(board)
        view = BillboardView(board, before_round=2)
        assert np.array_equal(view.objects_with_votes(), [1, 2])

    def test_counts_window_clipped_to_horizon(self, board):
        fill(board)
        view = BillboardView(board, before_round=1)
        counts = view.counts_in_window(0, 10)
        assert counts.sum() == 1  # only round-0 votes visible

    def test_counts_window_degenerate_after_clip(self, board):
        fill(board)
        view = BillboardView(board, before_round=1)
        counts = view.counts_in_window(5, 10)
        assert counts.sum() == 0

    def test_cumulative_counts_respect_horizon(self, board):
        fill(board)
        partial = BillboardView(board, before_round=2).cumulative_vote_counts()
        full = BillboardView(board).cumulative_vote_counts()
        assert partial.sum() == 2
        assert full.sum() == 3
        assert full[1] == 2  # players 0 and 3 both voted object 1
