"""Equivalence tests for the vectorized VoteLedger queries.

The ledger's numpy-column queries (``current_vote_array``,
``objects_with_votes``, ``counts_in_window``) replaced straightforward
Python walks over the effective-vote log. These properties replay random
vote streams through the ledger and check every query, at random horizons
and windows, against a pure-Python reference derived directly from the
mode semantics — including interleaved queries, which exercise the
per-horizon memo's invalidation on new effective votes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.post import Post, PostKind
from repro.billboard.votes import VoteLedger, VoteMode

N_PLAYERS = 8
N_OBJECTS = 12

# A vote stream: (player, object) pairs posted in consecutive rounds.
vote_streams = st.lists(
    st.tuples(
        st.integers(0, N_PLAYERS - 1), st.integers(0, N_OBJECTS - 1)
    ),
    max_size=60,
)

modes = st.sampled_from([VoteMode.SINGLE, VoteMode.MULTI, VoteMode.MUTABLE])


def make_post(round_no, player, obj):
    return Post(
        seq=round_no,
        round_no=round_no,
        player=player,
        object_id=obj,
        reported_value=1.0,
        kind=PostKind.VOTE,
    )


def effective_log(mode, stream, f):
    """(round, player, object) rows the ledger should treat as effective,
    re-derived from the documented mode semantics alone."""
    targets = {player: [] for player in range(N_PLAYERS)}
    log = []
    for round_no, (player, obj) in enumerate(stream):
        held = targets[player]
        if mode is VoteMode.MUTABLE:
            if held and held[-1] == obj:
                continue
        else:
            cap = 1 if mode is VoteMode.SINGLE else f
            if len(held) >= cap or obj in held:
                continue
        held.append(obj)
        log.append((round_no, player, obj))
    return log


def ref_current_votes(mode, log, before_round):
    """Reference current_vote_array: first effective vote under MULTI,
    latest otherwise."""
    result = [-1] * N_PLAYERS
    for round_no, player, obj in log:
        if before_round is not None and round_no >= before_round:
            break
        if mode is VoteMode.MULTI and result[player] != -1:
            continue
        result[player] = obj
    return result


def ref_counts(mode, log, start, end):
    """Reference counts_in_window: one count per effective vote, except
    MUTABLE where only each player's last in-window switch counts."""
    in_window = [row for row in log if start <= row[0] < end]
    if mode is VoteMode.MUTABLE:
        last = {}
        for round_no, player, obj in in_window:
            last[player] = obj
        voted = list(last.values())
    else:
        voted = [obj for _round, _player, obj in in_window]
    counts = [0] * N_OBJECTS
    for obj in voted:
        counts[obj] += 1
    return counts


def replay(mode, stream, f):
    ledger = VoteLedger(
        N_PLAYERS, N_OBJECTS, mode=mode, max_votes_per_player=f
    )
    for round_no, (player, obj) in enumerate(stream):
        ledger.record(make_post(round_no, player, obj))
    return ledger


@given(modes, vote_streams, st.integers(1, 4), st.integers(0, 61))
@settings(max_examples=80, deadline=None)
def test_current_vote_array_matches_reference(mode, stream, f, horizon):
    ledger = replay(mode, stream, f)
    log = effective_log(mode, stream, f)
    assert ledger.current_vote_array(horizon).tolist() == ref_current_votes(
        mode, log, horizon
    )
    assert ledger.current_vote_array().tolist() == ref_current_votes(
        mode, log, None
    )


@given(modes, vote_streams, st.integers(1, 4), st.integers(0, 30),
       st.integers(0, 30))
@settings(max_examples=80, deadline=None)
def test_counts_in_window_matches_reference(mode, stream, f, a, b):
    lo, hi = sorted((a, b))
    ledger = replay(mode, stream, f)
    log = effective_log(mode, stream, f)
    assert ledger.counts_in_window(lo, hi).tolist() == ref_counts(
        mode, log, lo, hi
    )


@given(modes, vote_streams, st.integers(1, 4), st.integers(0, 61))
@settings(max_examples=80, deadline=None)
def test_objects_with_votes_matches_reference(mode, stream, f, horizon):
    ledger = replay(mode, stream, f)
    log = effective_log(mode, stream, f)
    expected = sorted(
        {obj for round_no, _player, obj in log if round_no < horizon}
    )
    assert ledger.objects_with_votes(horizon).tolist() == expected


@given(modes, vote_streams, st.integers(1, 4), st.integers(0, 61),
       st.integers(0, 61))
@settings(max_examples=80, deadline=None)
def test_memo_survives_interleaved_records(mode, stream, f, h1, h2):
    """Querying between records must never leak stale memo entries, and
    repeated queries at the same horizon must return equal fresh copies."""
    ledger = VoteLedger(
        N_PLAYERS, N_OBJECTS, mode=mode, max_votes_per_player=f
    )
    for round_no, (player, obj) in enumerate(stream):
        ledger.record(make_post(round_no, player, obj))
        ledger.current_vote_array(h1)  # populate the memo mid-stream
        ledger.counts_in_window(0, h2)
    log = effective_log(mode, stream, f)
    first = ledger.current_vote_array(h1)
    again = ledger.current_vote_array(h1)
    assert first.tolist() == again.tolist() == ref_current_votes(
        mode, log, h1
    )
    first[:] = -7  # mutating a returned array must not poison the memo
    assert ledger.current_vote_array(h1).tolist() == ref_current_votes(
        mode, log, h1
    )
    assert ledger.counts_in_window(0, h2).tolist() == ref_counts(
        mode, log, 0, h2
    )
