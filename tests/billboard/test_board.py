"""Tests for the append-only billboard."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.errors import InvalidPostError, TamperError

#: the head digest of a fixed three-post history, recorded from the eager
#: per-append chain before lazy materialization landed — must never change
GOLDEN_DIGEST = (
    "02ef530994b56ae56f4172b2401bb0c2e9a40e9d9c5811e78388b4d69039150c"
)


def _golden_entries():
    """(round_no, player, object_id, value, kind) rows behind GOLDEN_DIGEST."""
    return [
        (0, 1, 2, 1.0, PostKind.VOTE),
        (1, 2, 3, 0.25, PostKind.REPORT),
        (3, 0, 1, -2.5, PostKind.VOTE),
    ]


class TestAppend:
    def test_append_assigns_sequential_seq(self, board):
        p0 = board.append(0, 1, 2, 0.0, PostKind.REPORT)
        p1 = board.append(0, 2, 3, 1.0, PostKind.VOTE)
        assert (p0.seq, p1.seq) == (0, 1)

    def test_append_stamps_round(self, board):
        post = board.append(5, 0, 0, 0.0, PostKind.REPORT)
        assert post.round_no == 5
        assert board.last_round == 5

    def test_rejects_unknown_player(self, board):
        with pytest.raises(InvalidPostError):
            board.append(0, 8, 0, 0.0, PostKind.REPORT)

    def test_rejects_negative_player(self, board):
        with pytest.raises(InvalidPostError):
            board.append(0, -1, 0, 0.0, PostKind.REPORT)

    def test_rejects_unknown_object(self, board):
        with pytest.raises(InvalidPostError):
            board.append(0, 0, 16, 0.0, PostKind.REPORT)

    def test_rejects_negative_round(self, board):
        with pytest.raises(InvalidPostError):
            board.append(-1, 0, 0, 0.0, PostKind.REPORT)

    def test_append_only_rounds_must_not_decrease(self, board):
        board.append(4, 0, 0, 0.0, PostKind.REPORT)
        with pytest.raises(TamperError):
            board.append(3, 0, 0, 0.0, PostKind.REPORT)

    def test_same_round_multiple_posts_allowed(self, board):
        board.append(2, 0, 0, 0.0, PostKind.REPORT)
        board.append(2, 1, 1, 0.0, PostKind.REPORT)
        assert len(board) == 2


class TestReading:
    def test_len_counts_all_posts(self, board):
        for r in range(3):
            board.append(r, r, r, 0.0, PostKind.REPORT)
        assert len(board) == 3

    def test_iteration_preserves_order(self, board):
        board.append(0, 0, 1, 0.0, PostKind.REPORT)
        board.append(1, 1, 2, 0.0, PostKind.VOTE)
        seqs = [p.seq for p in board]
        assert seqs == [0, 1]

    def test_getitem_by_seq(self, board):
        board.append(0, 3, 4, 0.5, PostKind.VOTE)
        assert board[0].player == 3

    def test_posts_filter_by_kind(self, board):
        board.append(0, 0, 0, 0.0, PostKind.REPORT)
        board.append(0, 1, 1, 1.0, PostKind.VOTE)
        votes = board.posts(kind=PostKind.VOTE)
        assert len(votes) == 1
        assert votes[0].player == 1

    def test_posts_filter_by_player(self, board):
        board.append(0, 2, 0, 0.0, PostKind.REPORT)
        board.append(0, 3, 1, 0.0, PostKind.REPORT)
        assert len(board.posts(player=2)) == 1

    def test_posts_before_round_excludes_current(self, board):
        board.append(0, 0, 0, 1.0, PostKind.VOTE)
        board.append(1, 1, 1, 1.0, PostKind.VOTE)
        visible = board.posts(before_round=1)
        assert [p.player for p in visible] == [0]

    def test_empty_board_last_round(self, board):
        assert board.last_round == -1


class TestLedgerIntegration:
    def test_vote_posts_feed_ledger(self, board):
        board.append(0, 1, 5, 1.0, PostKind.VOTE)
        votes = board.current_vote_array()
        assert votes[1] == 5

    def test_reports_do_not_feed_ledger(self, board):
        board.append(0, 1, 5, 0.0, PostKind.REPORT)
        assert board.current_vote_array()[1] == -1

    def test_counts_in_window_passthrough(self, board):
        board.append(0, 1, 5, 1.0, PostKind.VOTE)
        board.append(3, 2, 5, 1.0, PostKind.VOTE)
        counts = board.counts_in_window(0, 2)
        assert counts[5] == 1

    def test_objects_with_votes_passthrough(self, board):
        board.append(0, 0, 7, 1.0, PostKind.VOTE)
        board.append(1, 1, 3, 1.0, PostKind.VOTE)
        assert np.array_equal(board.objects_with_votes(), [3, 7])


class TestIntegrityChain:
    def test_fresh_board_verifies(self, board):
        board.verify_integrity()

    def test_head_digest_changes_per_append(self, board):
        d0 = board.head_digest
        board.append(0, 0, 0, 0.0, PostKind.REPORT)
        d1 = board.head_digest
        board.append(0, 1, 1, 1.0, PostKind.VOTE)
        assert len({d0, d1, board.head_digest}) == 3

    def test_identical_histories_share_digests(self):
        a = Billboard(4, 4)
        b = Billboard(4, 4)
        for board_ in (a, b):
            board_.append(0, 1, 2, 1.0, PostKind.VOTE)
            board_.append(1, 2, 3, 0.0, PostKind.REPORT)
        assert a.head_digest == b.head_digest

    def test_populated_board_verifies(self, board):
        for r in range(5):
            board.append(r, r % 8, r % 16, float(r % 2), PostKind.VOTE)
        board.verify_integrity()

    def test_mutated_post_detected(self, board):
        from repro.billboard.post import Post

        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        board.append(1, 2, 3, 1.0, PostKind.VOTE)
        # simulate an out-of-API mutation of history
        original = board._posts[0]
        board._posts[0] = Post(
            seq=original.seq,
            round_no=original.round_no,
            player=original.player,
            object_id=9,  # changed
            reported_value=original.reported_value,
            kind=original.kind,
        )
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_reordered_posts_detected(self, board):
        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        board.append(1, 2, 3, 1.0, PostKind.VOTE)
        board._posts.reverse()
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_deleted_post_detected(self, board):
        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        board.append(1, 2, 3, 1.0, PostKind.VOTE)
        del board._posts[0]
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_digest_matches_pre_lazy_golden(self):
        b = Billboard(4, 4)
        for round_no, player, obj, value, kind in _golden_entries():
            b.append(round_no, player, obj, value, kind)
        assert b.head_digest == GOLDEN_DIGEST

    def test_mutation_before_materialization_detected(self, board):
        """The lazy chain snapshots fields at append time, so tampering
        with a stored post before the digest is ever read still fails."""
        from repro.billboard.post import Post

        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        original = board._posts[0]
        board._posts[0] = Post(
            seq=original.seq,
            round_no=original.round_no,
            player=original.player,
            object_id=9,  # changed without reading head_digest first
            reported_value=original.reported_value,
            kind=original.kind,
        )
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_digest_independent_of_read_schedule(self):
        """Polling head_digest mid-history must not change the final value."""
        polled = Billboard(4, 4)
        deferred = Billboard(4, 4)
        for round_no, player, obj, value, kind in _golden_entries():
            polled.append(round_no, player, obj, value, kind)
            polled.head_digest
            deferred.append(round_no, player, obj, value, kind)
        assert deferred.head_digest == polled.head_digest == GOLDEN_DIGEST

    def test_full_run_board_verifies(self):
        import numpy as np

        from repro.adversaries.flood import FloodAdversary
        from repro.core.distill import DistillStrategy
        from repro.sim.engine import SynchronousEngine
        from repro.world.generators import planted_instance

        inst = planted_instance(
            n=64, m=64, beta=1 / 8, alpha=0.5,
            rng=np.random.default_rng(3),
        )
        engine = SynchronousEngine(
            inst,
            DistillStrategy(),
            adversary=FloodAdversary(),
            rng=np.random.default_rng(4),
            adversary_rng=np.random.default_rng(5),
        )
        engine.run()
        engine.board.verify_integrity()


class TestAppendMany:
    def test_empty_batch_is_a_noop(self, board):
        assert board.append_many(0, []) == []
        assert len(board) == 0
        assert board.last_round == -1

    def test_batch_matches_per_post_appends(self):
        eager = Billboard(4, 4)
        batched = Billboard(4, 4)
        for round_no, player, obj, value, kind in _golden_entries():
            eager.append(round_no, player, obj, value, kind)
            batched.append_many(round_no, [(player, obj, value, kind)])
        assert list(batched) == list(eager)
        assert batched.head_digest == eager.head_digest == GOLDEN_DIGEST

    def test_sequential_seqs_across_batches(self, board):
        board.append(0, 0, 0, 0.0, PostKind.REPORT)
        posts = board.append_many(
            1,
            [(1, 1, 1.0, PostKind.VOTE), (2, 2, 0.0, PostKind.REPORT)],
        )
        assert [p.seq for p in posts] == [1, 2]
        assert board[2].player == 2

    def test_batch_feeds_ledger(self, board):
        board.append_many(
            0,
            [(1, 5, 1.0, PostKind.VOTE), (2, 7, 0.0, PostKind.REPORT)],
        )
        votes = board.current_vote_array()
        assert votes[1] == 5
        assert votes[2] == -1  # reports never reach the ledger

    def test_invalid_entry_leaves_board_unchanged(self, board):
        """Validation is all-or-nothing: a bad entry anywhere in the batch
        means nothing is appended."""
        board.append(0, 0, 0, 0.0, PostKind.REPORT)
        digest = board.head_digest
        with pytest.raises(InvalidPostError):
            board.append_many(
                1,
                [(1, 1, 1.0, PostKind.VOTE), (99, 2, 0.0, PostKind.REPORT)],
            )
        assert len(board) == 1
        assert board.head_digest == digest
        assert board.current_vote_array()[1] == -1

    def test_round_regression_rejected(self, board):
        board.append(4, 0, 0, 0.0, PostKind.REPORT)
        with pytest.raises(TamperError):
            board.append_many(3, [(1, 1, 1.0, PostKind.VOTE)])
        assert len(board) == 1


# ----------------------------------------------------------------------
# Property: append_many + lazy chain ≡ eager per-post appends
# ----------------------------------------------------------------------
_entry = st.tuples(
    st.integers(0, 7),
    st.integers(0, 15),
    st.sampled_from([0.0, 1.0, 0.25, -2.5]),
    st.sampled_from([PostKind.VOTE, PostKind.REPORT]),
)


@given(st.lists(_entry, max_size=40), st.integers(1, 7))
@settings(max_examples=80, deadline=None)
def test_append_many_equivalent_to_eager_appends(entries, batch_size):
    """Batched appends with deferred hashing must be indistinguishable
    from per-post appends with the digest forced after every post: same
    posts, same head digest, same ledger state, and a verifying chain."""
    eager = Billboard(8, 16)
    batched = Billboard(8, 16)
    for start in range(0, len(entries), batch_size):
        round_no = start // batch_size
        batch = entries[start : start + batch_size]
        for player, obj, value, kind in batch:
            eager.append(round_no, player, obj, value, kind)
            eager.head_digest  # force eager materialization per post
        batched.append_many(round_no, batch)
    assert list(batched) == list(eager)
    assert batched.head_digest == eager.head_digest
    assert np.array_equal(
        batched.current_vote_array(), eager.current_vote_array()
    )
    assert np.array_equal(
        batched.objects_with_votes(), eager.objects_with_votes()
    )
    batched.verify_integrity()
    eager.verify_integrity()
