"""Tests for the append-only billboard."""

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.errors import InvalidPostError, TamperError


class TestAppend:
    def test_append_assigns_sequential_seq(self, board):
        p0 = board.append(0, 1, 2, 0.0, PostKind.REPORT)
        p1 = board.append(0, 2, 3, 1.0, PostKind.VOTE)
        assert (p0.seq, p1.seq) == (0, 1)

    def test_append_stamps_round(self, board):
        post = board.append(5, 0, 0, 0.0, PostKind.REPORT)
        assert post.round_no == 5
        assert board.last_round == 5

    def test_rejects_unknown_player(self, board):
        with pytest.raises(InvalidPostError):
            board.append(0, 8, 0, 0.0, PostKind.REPORT)

    def test_rejects_negative_player(self, board):
        with pytest.raises(InvalidPostError):
            board.append(0, -1, 0, 0.0, PostKind.REPORT)

    def test_rejects_unknown_object(self, board):
        with pytest.raises(InvalidPostError):
            board.append(0, 0, 16, 0.0, PostKind.REPORT)

    def test_rejects_negative_round(self, board):
        with pytest.raises(InvalidPostError):
            board.append(-1, 0, 0, 0.0, PostKind.REPORT)

    def test_append_only_rounds_must_not_decrease(self, board):
        board.append(4, 0, 0, 0.0, PostKind.REPORT)
        with pytest.raises(TamperError):
            board.append(3, 0, 0, 0.0, PostKind.REPORT)

    def test_same_round_multiple_posts_allowed(self, board):
        board.append(2, 0, 0, 0.0, PostKind.REPORT)
        board.append(2, 1, 1, 0.0, PostKind.REPORT)
        assert len(board) == 2


class TestReading:
    def test_len_counts_all_posts(self, board):
        for r in range(3):
            board.append(r, r, r, 0.0, PostKind.REPORT)
        assert len(board) == 3

    def test_iteration_preserves_order(self, board):
        board.append(0, 0, 1, 0.0, PostKind.REPORT)
        board.append(1, 1, 2, 0.0, PostKind.VOTE)
        seqs = [p.seq for p in board]
        assert seqs == [0, 1]

    def test_getitem_by_seq(self, board):
        board.append(0, 3, 4, 0.5, PostKind.VOTE)
        assert board[0].player == 3

    def test_posts_filter_by_kind(self, board):
        board.append(0, 0, 0, 0.0, PostKind.REPORT)
        board.append(0, 1, 1, 1.0, PostKind.VOTE)
        votes = board.posts(kind=PostKind.VOTE)
        assert len(votes) == 1
        assert votes[0].player == 1

    def test_posts_filter_by_player(self, board):
        board.append(0, 2, 0, 0.0, PostKind.REPORT)
        board.append(0, 3, 1, 0.0, PostKind.REPORT)
        assert len(board.posts(player=2)) == 1

    def test_posts_before_round_excludes_current(self, board):
        board.append(0, 0, 0, 1.0, PostKind.VOTE)
        board.append(1, 1, 1, 1.0, PostKind.VOTE)
        visible = board.posts(before_round=1)
        assert [p.player for p in visible] == [0]

    def test_empty_board_last_round(self, board):
        assert board.last_round == -1


class TestLedgerIntegration:
    def test_vote_posts_feed_ledger(self, board):
        board.append(0, 1, 5, 1.0, PostKind.VOTE)
        votes = board.current_vote_array()
        assert votes[1] == 5

    def test_reports_do_not_feed_ledger(self, board):
        board.append(0, 1, 5, 0.0, PostKind.REPORT)
        assert board.current_vote_array()[1] == -1

    def test_counts_in_window_passthrough(self, board):
        board.append(0, 1, 5, 1.0, PostKind.VOTE)
        board.append(3, 2, 5, 1.0, PostKind.VOTE)
        counts = board.counts_in_window(0, 2)
        assert counts[5] == 1

    def test_objects_with_votes_passthrough(self, board):
        board.append(0, 0, 7, 1.0, PostKind.VOTE)
        board.append(1, 1, 3, 1.0, PostKind.VOTE)
        assert np.array_equal(board.objects_with_votes(), [3, 7])


class TestIntegrityChain:
    def test_fresh_board_verifies(self, board):
        board.verify_integrity()

    def test_head_digest_changes_per_append(self, board):
        d0 = board.head_digest
        board.append(0, 0, 0, 0.0, PostKind.REPORT)
        d1 = board.head_digest
        board.append(0, 1, 1, 1.0, PostKind.VOTE)
        assert len({d0, d1, board.head_digest}) == 3

    def test_identical_histories_share_digests(self):
        a = Billboard(4, 4)
        b = Billboard(4, 4)
        for board_ in (a, b):
            board_.append(0, 1, 2, 1.0, PostKind.VOTE)
            board_.append(1, 2, 3, 0.0, PostKind.REPORT)
        assert a.head_digest == b.head_digest

    def test_populated_board_verifies(self, board):
        for r in range(5):
            board.append(r, r % 8, r % 16, float(r % 2), PostKind.VOTE)
        board.verify_integrity()

    def test_mutated_post_detected(self, board):
        from repro.billboard.post import Post

        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        board.append(1, 2, 3, 1.0, PostKind.VOTE)
        # simulate an out-of-API mutation of history
        original = board._posts[0]
        board._posts[0] = Post(
            seq=original.seq,
            round_no=original.round_no,
            player=original.player,
            object_id=9,  # changed
            reported_value=original.reported_value,
            kind=original.kind,
        )
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_reordered_posts_detected(self, board):
        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        board.append(1, 2, 3, 1.0, PostKind.VOTE)
        board._posts.reverse()
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_deleted_post_detected(self, board):
        board.append(0, 1, 2, 1.0, PostKind.VOTE)
        board.append(1, 2, 3, 1.0, PostKind.VOTE)
        del board._posts[0]
        with pytest.raises(TamperError):
            board.verify_integrity()

    def test_full_run_board_verifies(self):
        import numpy as np

        from repro.adversaries.flood import FloodAdversary
        from repro.core.distill import DistillStrategy
        from repro.sim.engine import SynchronousEngine
        from repro.world.generators import planted_instance

        inst = planted_instance(
            n=64, m=64, beta=1 / 8, alpha=0.5,
            rng=np.random.default_rng(3),
        )
        engine = SynchronousEngine(
            inst,
            DistillStrategy(),
            adversary=FloodAdversary(),
            rng=np.random.default_rng(4),
            adversary_rng=np.random.default_rng(5),
        )
        engine.run()
        engine.board.verify_integrity()
