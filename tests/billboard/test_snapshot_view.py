"""SnapshotView: epoch-pinned reads are immutable under live writes."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.sparse import SparseBoard
from repro.billboard.views import BillboardView, SnapshotView

N_PLAYERS = 8
N_OBJECTS = 12


def _batch(entries):
    return [
        (player, obj, 1.0, PostKind.VOTE) for player, obj in entries
    ]


def _fingerprint(view):
    """Every read surface of a view, as comparable bytes."""
    return (
        view.cumulative_vote_counts().tobytes(),
        view.current_vote_array().tobytes(),
        view.objects_with_votes().tobytes(),
        view.counts_in_window(0, view.before_round or 0).tobytes(),
        len(view.posts()),
    )


class TestSnapshotViewBasics:
    def test_epoch_is_the_exclusive_horizon(self):
        board = Billboard(N_PLAYERS, N_OBJECTS)
        board.append_many(0, _batch([(0, 3), (1, 4)]))
        board.append_many(1, _batch([(2, 5)]))
        assert SnapshotView(board, epoch=1).epoch == 1
        assert len(SnapshotView(board, epoch=0).posts()) == 0
        assert len(SnapshotView(board, epoch=1).posts()) == 2
        assert len(SnapshotView(board, epoch=2).posts()) == 3

    def test_negative_epoch_rejected(self):
        board = Billboard(N_PLAYERS, N_OBJECTS)
        with pytest.raises(ValueError):
            SnapshotView(board, epoch=-1)

    def test_rehorizoned_snapshot_degrades_to_plain_view(self):
        board = Billboard(N_PLAYERS, N_OBJECTS)
        view = SnapshotView(board, epoch=2).with_horizon(5)
        assert type(view) is BillboardView
        assert view.before_round == 5

    def test_works_on_sparse_substrate(self):
        board = SparseBoard(N_PLAYERS, N_OBJECTS)
        board.append_many(0, _batch([(0, 1)]))
        view = SnapshotView(board, epoch=1)
        assert view.cumulative_vote_counts()[1] == 1


# one hypothesis-drawn traffic history: per-epoch batches of votes
epoch_batches = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, N_PLAYERS - 1), st.integers(0, N_OBJECTS - 1)
        ),
        max_size=8,
    ),
    min_size=1,
    max_size=10,
)


@given(epoch_batches, epoch_batches)
@settings(max_examples=60, deadline=None)
def test_snapshot_immutable_under_interleaved_append_many(past, future):
    """A reader pinned at epoch E never observes posts from epochs >= E.

    The property the serving layer's snapshot isolation rests on: pin a
    snapshot at the writer's current epoch, then keep appending — every
    read surface of the snapshot must stay bit-identical, batch after
    batch.
    """
    board = Billboard(N_PLAYERS, N_OBJECTS)
    for round_no, batch in enumerate(past):
        board.append_many(round_no, _batch(batch))
    epoch = len(past)
    snapshot = SnapshotView(board, epoch=epoch)
    pinned = _fingerprint(snapshot)
    for offset, batch in enumerate(future):
        board.append_many(epoch + offset, _batch(batch))
        assert _fingerprint(snapshot) == pinned
    # a fresh snapshot at the same epoch agrees too: isolation is a
    # property of the board, not of cached view state
    assert _fingerprint(SnapshotView(board, epoch=epoch)) == pinned


def test_snapshot_immutable_under_concurrent_append_many():
    """Thread-level version: a writer hammers epochs >= E while readers
    repeatedly fingerprint a snapshot pinned at E."""
    board = Billboard(N_PLAYERS, N_OBJECTS)
    rng = np.random.default_rng(7)
    for round_no in range(4):
        pairs = zip(
            rng.integers(0, N_PLAYERS, 6), rng.integers(0, N_OBJECTS, 6)
        )
        board.append_many(round_no, _batch([(int(p), int(o)) for p, o in pairs]))
    epoch = 4
    snapshot = SnapshotView(board, epoch=epoch)
    pinned = _fingerprint(snapshot)
    mismatches = []

    def writer():
        for offset in range(50):
            pairs = zip(
                rng.integers(0, N_PLAYERS, 4),
                rng.integers(0, N_OBJECTS, 4),
            )
            board.append_many(
                epoch + offset, _batch([(int(p), int(o)) for p, o in pairs])
            )

    def reader():
        for _ in range(200):
            if _fingerprint(snapshot) != pinned:
                mismatches.append(True)
                return

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not mismatches
    assert _fingerprint(snapshot) == pinned
