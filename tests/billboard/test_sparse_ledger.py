"""Unit parity for the sparse columnar substrate.

:class:`~repro.billboard.sparse.SparseVoteLedger` and
:class:`~repro.billboard.sparse.SparseBoard` promise *bit-identical*
behaviour to the dense :class:`~repro.billboard.votes.VoteLedger` and
:class:`~repro.billboard.board.Billboard` for every vote mode and every
query — the substrate knob must never change a result. This module
drives both implementations through the same randomized workloads and
asserts every observable agrees, plus the pinned satellite contracts:
empty batches are explicit no-ops and column views are read-only.
"""

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.billboard.lanes import LaneBillboard
from repro.billboard.post import Post, PostKind
from repro.billboard.sparse import (
    SPARSE_AUTO_THRESHOLD,
    SparseBoard,
    SparseVoteLedger,
    choose_substrate,
    normalize_substrate,
    substrate_fallback_reason,
)
from repro.billboard.votes import VoteLedger, VoteMode
from repro.errors import ConfigurationError, InvalidPostError
from repro.sim.engine import EngineConfig

MODES = {
    "single": (VoteMode.SINGLE, 1),
    "multi": (VoteMode.MULTI, 3),
    "mutable": (VoteMode.MUTABLE, 2),
}


def _vote_post(round_no, player, obj):
    return Post(
        seq=0,
        round_no=round_no,
        player=player,
        object_id=obj,
        reported_value=1.0,
        kind=PostKind.VOTE,
    )


def _pair(mode_name, n_players=24, n_objects=12):
    mode, cap = MODES[mode_name]
    dense = VoteLedger(
        n_players, n_objects, mode=mode, max_votes_per_player=cap
    )
    sparse = SparseVoteLedger(
        n_players, n_objects, mode=mode, max_votes_per_player=cap
    )
    return dense, sparse


def _assert_ledgers_agree(dense, sparse, horizons):
    for horizon in horizons:
        for name in ("current_vote_array", "objects_with_votes"):
            a = getattr(dense, name)(horizon)
            b = getattr(sparse, name)(horizon)
            assert np.array_equal(a, b), (name, horizon)
            assert a.dtype == b.dtype, (name, horizon)
    for start, end in [(0, 1), (0, 50), (2, 5), (3, 3), (1, 10)]:
        a = dense.counts_in_window(start, end)
        b = sparse.counts_in_window(start, end)
        assert np.array_equal(a, b), (start, end)
    assert dense.effective_vote_count == sparse.effective_vote_count
    for player in range(dense.n_players):
        assert dense.votes_of(player) == sparse.votes_of(player), player
    players = np.arange(dense.n_players)
    assert dense.votes_cast_by(players) == sparse.votes_cast_by(players)


class TestLedgerParity:
    """Randomized interleaved record/record_block parity, every mode."""

    @pytest.mark.parametrize("mode_name", sorted(MODES))
    def test_interleaved_workload_matches_dense(self, mode_name):
        rng = np.random.default_rng(2026)
        for trial in range(10):
            dense, sparse = _pair(mode_name)
            round_no = 0
            for _step in range(40):
                if rng.random() < 0.5:
                    player = int(rng.integers(dense.n_players))
                    obj = int(rng.integers(dense.n_objects))
                    post = _vote_post(round_no, player, obj)
                    assert dense.record(post) == sparse.record(post)
                else:
                    k = int(rng.integers(0, 6))
                    players = rng.integers(0, dense.n_players, size=k)
                    objects = rng.integers(0, dense.n_objects, size=k)
                    a = dense.record_block(round_no, players, objects)
                    b = sparse.record_block(round_no, players, objects)
                    assert np.array_equal(a, b)
                if rng.random() < 0.4:
                    round_no += int(rng.integers(1, 3))
                if rng.random() < 0.3:
                    horizon = int(rng.integers(0, round_no + 2))
                    _assert_ledgers_agree(dense, sparse, [horizon])
            _assert_ledgers_agree(dense, sparse, [None, 0, 1, round_no + 1])

    @pytest.mark.parametrize("mode_name", sorted(MODES))
    def test_empty_record_block_is_a_no_op(self, mode_name):
        dense, sparse = _pair(mode_name)
        for ledger in (dense, sparse):
            accepted = ledger.record_block(
                3, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
            )
            assert accepted.shape == (0,)
            assert accepted.dtype == np.bool_
            assert ledger.effective_vote_count == 0
        _assert_ledgers_agree(dense, sparse, [None, 0, 5])

    def test_constructor_errors_match_dense(self):
        with pytest.raises(ConfigurationError):
            SparseVoteLedger(0, 4)
        with pytest.raises(ConfigurationError):
            SparseVoteLedger(4, 4, mode=VoteMode.MULTI, max_votes_per_player=0)
        with pytest.raises(ConfigurationError):
            SparseVoteLedger(4, 4, n_shards=0)

    def test_shards_partition_the_vote_stream(self):
        _dense, sparse = _pair("single")
        players = np.arange(10)
        objects = np.arange(10) % sparse.n_objects
        sparse.record_block(0, players, objects)
        assert sum(sparse.shard_sizes()) == sparse.effective_vote_count


class TestBoardParity:
    """SparseBoard ≡ Billboard: posts, reads, errors, hash-free batches."""

    def _boards(self, mode_name="single"):
        mode, cap = MODES[mode_name]
        dense = Billboard(16, 8, vote_mode=mode, max_votes_per_player=cap)
        sparse = SparseBoard(16, 8, vote_mode=mode, max_votes_per_player=cap)
        return dense, sparse

    @pytest.mark.parametrize("mode_name", sorted(MODES))
    def test_append_paths_agree(self, mode_name):
        dense, sparse = self._boards(mode_name)
        rng = np.random.default_rng(7)
        round_no = 0
        for _step in range(25):
            entries = [
                (
                    int(rng.integers(16)),
                    int(rng.integers(8)),
                    float(rng.random()),
                    PostKind.VOTE if rng.random() < 0.7 else PostKind.REPORT,
                )
                for _ in range(int(rng.integers(0, 4)))
            ]
            a = dense.append_many(round_no, entries)
            b = sparse.append_many(round_no, entries)
            assert [p.__dict__ for p in a] == [p.__dict__ for p in b]
            round_no += int(rng.integers(0, 2))
        assert len(dense) == len(sparse)
        assert dense.last_round == sparse.last_round
        for i in range(len(dense)):
            assert dense[i] == sparse[i]
        for kind in (None, PostKind.VOTE, PostKind.REPORT):
            a = dense.posts(kind=kind)
            b = sparse.posts(kind=kind)
            assert a == b
        assert np.array_equal(
            dense.current_vote_array(), sparse.current_vote_array()
        )
        assert np.array_equal(
            dense.objects_with_votes(), sparse.objects_with_votes()
        )

    def test_empty_append_many_is_a_no_op(self):
        dense, sparse = self._boards()
        for board in (dense, sparse):
            assert board.append_many(5, []) == []
            assert len(board) == 0
            assert board.last_round == -1
        # a later batch at an *earlier* round still succeeds: the empty
        # batch must not have advanced the round clock
        dense.append_many(2, [(0, 0, 1.0, PostKind.VOTE)])
        sparse.append_many(2, [(0, 0, 1.0, PostKind.VOTE)])
        assert dense.last_round == sparse.last_round == 2

    def test_validation_errors_match_dense(self):
        dense, sparse = self._boards()
        for round_no, player, obj in [(0, 16, 0), (0, 0, 8), (-1, 0, 0)]:
            with pytest.raises(InvalidPostError) as dense_err:
                dense.append_many(
                    round_no, [(player, obj, 1.0, PostKind.VOTE)]
                )
            with pytest.raises(InvalidPostError) as sparse_err:
                sparse.append_many(
                    round_no, [(player, obj, 1.0, PostKind.VOTE)]
                )
            assert str(dense_err.value) == str(sparse_err.value)


class TestReadOnlyViews:
    """Satellite pin: ledger column views cannot be mutated in place."""

    def test_dense_column_view_is_read_only(self):
        ledger = VoteLedger(4, 4)
        ledger.record(_vote_post(0, 1, 2))
        view = ledger._players.view()
        with pytest.raises(ValueError):
            view[0] = 3

    def test_lane_column_view_is_read_only(self):
        board = LaneBillboard(2, 4, 4)
        board.lane(0).post_block(
            0,
            np.array([1]),
            np.array([2]),
            np.array([1.0]),
            PostKind.VOTE,
        )
        view = board.lane(0)._players.view()
        with pytest.raises(ValueError):
            view[0] = 3

    def test_view_does_not_freeze_the_buffer(self):
        # the writeable=False flag is on the returned window only; the
        # ledger itself must keep accepting votes afterwards
        ledger = VoteLedger(4, 4)
        ledger.record(_vote_post(0, 1, 2))
        ledger._players.view()
        assert ledger.record(_vote_post(1, 2, 3))


class TestSubstrateSelection:
    """The knob helpers behind ``substrate=``."""

    def test_normalize_accepts_the_three_choices(self):
        assert normalize_substrate(None) == "auto"
        assert normalize_substrate("auto") == "auto"
        assert normalize_substrate("dense") == "dense"
        assert normalize_substrate("sparse") == "sparse"
        with pytest.raises(ConfigurationError):
            normalize_substrate("bogus")

    def test_auto_picks_sparse_at_the_threshold(self):
        assert choose_substrate("auto", SPARSE_AUTO_THRESHOLD - 1) == "dense"
        assert choose_substrate("auto", SPARSE_AUTO_THRESHOLD) == "sparse"
        assert choose_substrate(None, SPARSE_AUTO_THRESHOLD) == "sparse"
        assert choose_substrate("dense", 10**6) == "dense"
        assert choose_substrate("sparse", 2) == "sparse"

    def test_traces_force_the_dense_fallback(self):
        assert substrate_fallback_reason(EngineConfig()) is None
        reason = substrate_fallback_reason(EngineConfig(trace=True))
        assert reason is not None and "trace" in reason
