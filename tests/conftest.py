"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.strategies.base import StrategyContext
from repro.world.generators import planted_instance


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; tests needing other seeds build their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_instance(rng):
    """A small planted world: 32 players, 32 objects, 4 good, 24 honest."""
    return planted_instance(n=32, m=32, beta=4 / 32, alpha=0.75, rng=rng)


@pytest.fixture
def board() -> Billboard:
    return Billboard(n_players=8, n_objects=16)


@pytest.fixture
def ctx() -> StrategyContext:
    return StrategyContext(
        n=32, m=32, alpha=0.75, beta=0.125, good_threshold=0.5
    )
