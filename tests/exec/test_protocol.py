"""The length-prefixed frame protocol: round-trips and refusals."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.exec.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestRoundTrip:
    def test_kind_and_body_survive(self, pair):
        a, b = pair
        send_frame(a, "task", {"chunk_id": 3, "chunk": [1, 2]})
        kind, body = recv_frame(b)
        assert kind == "task"
        assert body == {"chunk_id": 3, "chunk": [1, 2]}

    def test_none_body(self, pair):
        a, b = pair
        send_frame(a, "heartbeat")
        assert recv_frame(b) == ("heartbeat", None)

    def test_seed_sequences_cross_exactly(self, pair):
        a, b = pair
        seq = np.random.SeedSequence(42).spawn(3)[1]
        send_frame(a, "task", {"chunk": [(0, seq)]})
        _kind, body = recv_frame(b)
        (index, received) = body["chunk"][0]
        assert index == 0
        # the same entropy and spawn key → the same derived streams
        assert received.entropy == seq.entropy
        assert received.spawn_key == seq.spawn_key

    def test_several_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            send_frame(a, "result", i)
        assert [recv_frame(b)[1] for _ in range(5)] == list(range(5))


class TestRefusals:
    def test_eof_between_frames(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)

    def test_eof_mid_frame(self, pair):
        a, b = pair
        # announce 100 bytes, deliver 3, hang up
        a.sendall(struct.Struct(">I").pack(100) + b"abc")
        a.close()
        with pytest.raises(ConnectionClosed, match="97 of 100"):
            recv_frame(b)

    def test_oversized_announcement(self, pair):
        a, b = pair
        a.sendall(struct.Struct(">I").pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="cap"):
            recv_frame(b)

    def test_undecodable_payload(self, pair):
        a, b = pair
        garbage = b"\x00not pickle"
        a.sendall(struct.Struct(">I").pack(len(garbage)) + garbage)
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_frame(b)

    def test_non_string_kind(self, pair):
        import pickle

        a, b = pair
        payload = pickle.dumps((7, None))
        a.sendall(struct.Struct(">I").pack(len(payload)) + payload)
        with pytest.raises(ProtocolError, match="kind must be a string"):
            recv_frame(b)


class TestConcurrency:
    def test_interleaved_send_receive(self, pair):
        """A reader thread sees frames whole even when sent rapidly."""
        a, b = pair
        got = []

        def reader():
            for _ in range(20):
                got.append(recv_frame(b))

        thread = threading.Thread(target=reader)
        thread.start()
        for i in range(20):
            send_frame(a, "result", {"i": i, "pad": "x" * 1000})
        thread.join(timeout=5)
        assert [body["i"] for _kind, body in got] == list(range(20))
