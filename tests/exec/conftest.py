"""Shared fixtures for the executor-fabric tests.

Same rationale as the simulation-layer conftest: ``resolve_n_jobs``
degrades oversized pools to the host's core count, so on a small CI box
every multi-worker test would silently run serial. Pin a roomy fake
core count so pool and socket tests always exercise real concurrency.
"""

import os

import pytest

from repro.sim import runner


@pytest.fixture(autouse=True)
def _plenty_of_cores(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    monkeypatch.setattr(runner, "_DEGRADE_WARNED", False)
    monkeypatch.setattr(runner, "_BATCH_FALLBACK_WARNED", False)
