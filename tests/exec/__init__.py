"""Tests for the fault-tolerant trial execution fabric (repro.exec)."""
