"""Satellite contract: checkpoint-resume across a killed socket worker.

The scenario the fabric exists for: a sweep is running on the socket
backend, its only worker is chaos-killed mid-sweep with the respawn
budget exhausted, the sweep aborts — and a resume from the checkpoint
finishes the remainder (on any backend) with ``per_trial`` arrays
bit-identical to a run that was never interrupted.
"""

import json

import numpy as np
import pytest

from repro.baselines.trivial import TrivialStrategy
from repro.errors import ExecutorError
from repro.exec import ChaosAction, ChaosPlan, RetryPolicy, SocketWorkerExecutor
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def factory():
    return lambda rng: planted_instance(
        n=16, m=16, beta=0.25, alpha=0.75, rng=rng
    )


def kill_on_second_dispatch_plan():
    """A plan whose worker 0 completes its first task, dies on its second.

    Found by deterministic search over plan seeds using the monkey's
    own preview — no hand-tuned magic constant to rot when the rng
    layout changes.
    """
    for seed in range(1000):
        plan = ChaosPlan(kill_rate=0.5, max_events=1, seed=seed)
        fate = plan.monkey_for(0).preview(2)
        if fate == [ChaosAction.NONE, ChaosAction.KILL]:
            return plan
    raise AssertionError("no suitable chaos seed in 0..999")


def interruptible_sweep(checkpoint_path, executor, **kwargs):
    return run_trials(
        factory(),
        TrivialStrategy,
        n_trials=8,
        seed=21,
        chunk_size=2,
        checkpoint_path=checkpoint_path,
        executor=executor,
        **kwargs,
    )


class TestResumeAfterWorkerLoss:
    def test_resumed_sweep_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")

        # one worker, no respawn budget, no fallback: the kill is fatal
        doomed = SocketWorkerExecutor(
            n_workers=1,
            lease_timeout=5.0,
            heartbeat_interval=0.25,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            chaos=kill_on_second_dispatch_plan(),
        )
        with pytest.raises(ExecutorError, match="all socket workers lost"):
            interruptible_sweep(path, doomed, executor_fallback=False)

        # the first chunk survived the crash: trials 0 and 1, exactly once
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert sorted(entry["index"] for entry in lines[1:]) == [0, 1]

        # resume serially and compare to a never-interrupted serial run
        resumed = interruptible_sweep(path, "serial")
        uninterrupted = run_trials(
            factory(),
            TrivialStrategy,
            n_trials=8,
            seed=21,
            executor="serial",
        )
        assert set(resumed.per_trial) == set(uninterrupted.per_trial)
        for key in uninterrupted.per_trial:
            assert np.array_equal(
                resumed.per_trial[key], uninterrupted.per_trial[key]
            ), key

    def test_resume_on_socket_backend_also_matches(self, tmp_path):
        """Resume does not need the same backend that crashed."""
        path = str(tmp_path / "sweep.ckpt")
        doomed = SocketWorkerExecutor(
            n_workers=1,
            lease_timeout=5.0,
            heartbeat_interval=0.25,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            chaos=kill_on_second_dispatch_plan(),
        )
        with pytest.raises(ExecutorError):
            interruptible_sweep(path, doomed, executor_fallback=False)

        healthy = SocketWorkerExecutor(
            n_workers=2,
            lease_timeout=5.0,
            heartbeat_interval=0.25,
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
        )
        resumed = interruptible_sweep(path, healthy)
        uninterrupted = run_trials(
            factory(), TrivialStrategy, n_trials=8, seed=21
        )
        for key in uninterrupted.per_trial:
            assert np.array_equal(
                resumed.per_trial[key], uninterrupted.per_trial[key]
            ), key
        # the resume reports what it skipped and what it ran
        assert resumed.manifest.executor["backend"] == "socket"
