"""Monotonic-deadline cancellation: main thread, worker threads, races."""

import signal
import threading
import time

import pytest

from repro.errors import TrialTimeoutError
from repro.exec import trial_deadline
from repro.exec.deadline import timeout_message


class TestDisabled:
    @pytest.mark.parametrize("budget", [None, 0, -1.0])
    def test_no_budget_is_passthrough(self, budget):
        with trial_deadline(budget):
            pass  # no watchdog, no handler, no error

    def test_fast_block_unaffected(self):
        with trial_deadline(30.0):
            total = sum(range(1000))
        assert total == 499500


class TestMainThread:
    def test_sleeping_block_is_interrupted(self):
        start = time.monotonic()
        with pytest.raises(TrialTimeoutError, match="wall-clock budget"):
            with trial_deadline(0.2):
                time.sleep(30.0)
        assert time.monotonic() - start < 5.0

    def test_message_is_the_pinned_contract(self):
        with pytest.raises(TrialTimeoutError) as info:
            with trial_deadline(0.1):
                time.sleep(10.0)
        assert str(info.value) == timeout_message(0.1)

    def test_previous_sigalrm_handler_restored(self):
        sentinel = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, sentinel)
        try:
            with trial_deadline(30.0):
                pass
            assert signal.getsignal(signal.SIGALRM) is sentinel
        finally:
            signal.signal(signal.SIGALRM, previous)

    def test_reusable_after_timeout(self):
        with pytest.raises(TrialTimeoutError):
            with trial_deadline(0.1):
                time.sleep(10.0)
        with trial_deadline(30.0):
            pass  # the watchdog must be clean for the next block


class TestWorkerThread:
    def test_busy_thread_is_cancelled(self):
        """Off the main thread SIGALRM is useless; the async-exc path
        must cancel a busy loop and carry the same message."""
        caught = {}

        def busy():
            try:
                with trial_deadline(0.2):
                    deadline = time.monotonic() + 30.0
                    while time.monotonic() < deadline:
                        sum(range(1000))  # stay at bytecode boundaries
            except TrialTimeoutError as exc:
                caught["error"] = str(exc)

        thread = threading.Thread(target=busy)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert caught["error"] == timeout_message(0.2)

    def test_fast_worker_thread_unaffected(self):
        outcome = {}

        def quick():
            with trial_deadline(30.0):
                outcome["total"] = sum(range(1000))

        thread = threading.Thread(target=quick)
        thread.start()
        thread.join(timeout=5.0)
        assert outcome["total"] == 499500

    def test_many_concurrent_deadlines(self):
        """One watchdog serves every thread; only the slow one dies."""
        errors = {}

        def run(name, budget, work):
            # short sleeps, not one long one: off-main-thread
            # cancellation lands at bytecode boundaries only
            try:
                with trial_deadline(budget):
                    deadline = time.monotonic() + work
                    while time.monotonic() < deadline:
                        time.sleep(0.01)
                errors[name] = None
            except TrialTimeoutError:
                errors[name] = "timeout"

        threads = [
            threading.Thread(target=run, args=("fast", 10.0, 0.01)),
            threading.Thread(target=run, args=("slow", 0.2, 30.0)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert errors == {"fast": None, "slow": "timeout"}
