"""Deterministic chaos: plans validate, monkeys replay exactly."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import ChaosAction, ChaosMonkey, ChaosPlan


class TestPlanValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_rate": -0.1},
            {"stall_rate": 1.5},
            {"partition_rate": 2.0},
            {"kill_rate": 0.5, "stall_rate": 0.4, "partition_rate": 0.2},
            {"stall_seconds": -1.0},
            {"max_events": -1},
        ],
    )
    def test_rejects_bad_plans(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChaosPlan(**kwargs)

    def test_null_plans(self):
        assert ChaosPlan().is_null()
        assert ChaosPlan(kill_rate=0.5, max_events=0).is_null()
        assert not ChaosPlan(kill_rate=0.5).is_null()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ChaosPlan().kill_rate = 0.5


class TestMonkeyDeterminism:
    def test_same_worker_replays_identically(self):
        plan = ChaosPlan(kill_rate=0.3, stall_rate=0.3, seed=11)
        stream_a = plan.monkey_for(2)
        stream_b = plan.monkey_for(2)
        assert [stream_a.decide() for _ in range(50)] == [
            stream_b.decide() for _ in range(50)
        ]

    def test_workers_draw_independent_streams(self):
        # streams come from (seed, ordinal) tuple entropy — over many
        # draws two workers must not mirror each other
        plan = ChaosPlan(kill_rate=0.5, seed=3)
        monkey_a, monkey_b = plan.monkey_for(0), plan.monkey_for(1)
        draws_a = [monkey_a.decide() for _ in range(64)]
        draws_b = [monkey_b.decide() for _ in range(64)]
        assert draws_a != draws_b

    def test_rejects_negative_ordinal(self):
        with pytest.raises(ConfigurationError):
            ChaosMonkey(ChaosPlan(), -1)

    def test_rates_partition_one_draw(self):
        """With rates summing to 1, every action is a misbehaviour."""
        plan = ChaosPlan(
            kill_rate=0.4, stall_rate=0.3, partition_rate=0.3, seed=5
        )
        monkey = plan.monkey_for(0)
        draws = [monkey.decide() for _ in range(32)]
        assert ChaosAction.NONE not in draws
        assert set(draws) <= {
            ChaosAction.KILL,
            ChaosAction.STALL,
            ChaosAction.PARTITION,
        }


class TestMuzzling:
    def test_muzzled_monkey_never_acts(self):
        plan = ChaosPlan(kill_rate=1.0, max_events=1, seed=0)
        quiet = plan.monkey_for(1)
        assert [quiet.decide() for _ in range(16)] == [ChaosAction.NONE] * 16

    def test_muzzled_monkey_still_advances_its_stream(self):
        """The cap changes whether actions happen, never where they land."""
        loud_plan = ChaosPlan(kill_rate=0.5, seed=9)
        capped_plan = ChaosPlan(kill_rate=0.5, max_events=0, seed=9)
        loud = loud_plan.monkey_for(0)
        capped = capped_plan.monkey_for(0)
        # consume the same number of draws from both, then unmuzzle by
        # comparing the *next* draws of loud twins: the underlying
        # uniform streams must agree draw for draw
        assert capped.preview(8) == [ChaosAction.NONE] * 8
        assert loud.preview(8) == loud_plan.monkey_for(0).preview(8)


class TestPreview:
    def test_preview_does_not_consume(self):
        plan = ChaosPlan(kill_rate=0.5, seed=7)
        monkey = plan.monkey_for(0)
        before = monkey.preview(10)
        assert monkey.preview(10) == before
        assert [monkey.decide() for _ in range(10)] == before
