"""Executor protocol machinery: chunking, reports, the fallback chain."""

import warnings

import pytest

from repro.errors import ExecutorError
from repro.exec import (
    Executor,
    ExecutorReport,
    build_chunks,
    execute_with_fallback,
)
from repro.obs.registry import Registry


def units(count):
    """Dispatch units with None seeds (base machinery never reads them)."""
    return [(index, None) for index in range(count)]


class TestBuildChunks:
    def test_everything_covered_once_in_order(self):
        chunks = build_chunks(units(17), workers=2, chunk_size=None, lanes=1)
        flat = [index for chunk in chunks for index, _seed in chunk]
        assert flat == list(range(17))

    def test_default_targets_four_chunks_per_worker(self):
        chunks = build_chunks(units(32), workers=2, chunk_size=None, lanes=1)
        assert len(chunks) == 8
        assert all(len(chunk) == 4 for chunk in chunks)

    def test_explicit_chunk_size_wins(self):
        chunks = build_chunks(units(10), workers=4, chunk_size=3, lanes=1)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_rounded_up_to_whole_lane_groups(self):
        # 32 units over 3 workers → raw size ceil(32/12)=3, rounded up
        # to the lane multiple 4 so workers always run full batches
        chunks = build_chunks(units(32), workers=3, chunk_size=None, lanes=4)
        assert all(len(chunk) % 4 == 0 for chunk in chunks[:-1])

    def test_single_unit(self):
        assert build_chunks(units(1), 8, None, 1) == [[(0, None)]]


class TestExecutorReport:
    def test_to_dict_is_stable_and_copied(self):
        report = ExecutorReport(backend="socket")
        report.workers.append("w0")
        report.reassignments.append(
            {"trials": [3], "from": "w0", "to": "w1", "reason": "worker_lost"}
        )
        payload = report.to_dict()
        assert payload == {
            "backend": "socket",
            "workers": ["w0"],
            "reassignments": [
                {
                    "trials": [3],
                    "from": "w0",
                    "to": "w1",
                    "reason": "worker_lost",
                }
            ],
            "retries": 0,
            "worker_losses": 0,
            "degraded_from": [],
        }
        payload["workers"].append("w9")
        assert report.workers == ["w0"]  # to_dict copies, never aliases


# ----------------------------------------------------------------------
class FakeExecutor(Executor):
    """Completes the first ``finish`` units, then fails (or finishes)."""

    name = "fake"

    def __init__(self, finish=None, error=None):
        super().__init__()
        self.finish = finish
        self.error = error
        self.calls = 0

    def run(self, pending, state, *, chunk_size=None, on_chunk_done=None):
        self.calls += 1
        take = len(pending) if self.finish is None else self.finish
        completed = {index: f"{self.name}:{index}" for index, _ in pending[:take]}
        if self.error is not None:
            raise ExecutorError(self.error, completed=completed)
        return completed


class TestExecuteWithFallback:
    def test_first_success_short_circuits(self):
        first, second = FakeExecutor(), FakeExecutor()
        results, used = execute_with_fallback(
            [first, second], units(4), {}
        )
        assert used is first
        assert second.calls == 0
        assert sorted(results) == [0, 1, 2, 3]

    def test_partial_results_survive_degradation(self):
        flaky = FakeExecutor(finish=2, error="boom")
        backup = FakeExecutor()
        with pytest.warns(RuntimeWarning, match="degrading to fake"):
            results, used = execute_with_fallback(
                [flaky, backup], units(5), {}
            )
        assert used is backup
        # 0 and 1 kept from the flaky backend, only 2..4 re-dispatched
        assert results[0] == "fake:0"
        assert sorted(results) == [0, 1, 2, 3, 4]
        assert used.report.degraded_from == ["fake"]

    def test_degradations_are_counted(self):
        registry = Registry()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            execute_with_fallback(
                [FakeExecutor(finish=0, error="a"), FakeExecutor()],
                units(3),
                {},
                obs=registry,
            )
        assert registry.counters()["exec.degraded"] == 1

    def test_last_failure_propagates_with_merged_results(self):
        first = FakeExecutor(finish=1, error="first down")
        second = FakeExecutor(finish=1, error="second down")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ExecutorError) as info:
                execute_with_fallback([first, second], units(4), {})
        # everything either backend completed rides on the final error
        assert sorted(info.value.completed) == [0, 1]

    def test_empty_chain_rejected(self):
        with pytest.raises(ExecutorError, match="empty"):
            execute_with_fallback([], units(1), {})

    def test_reports_reset_between_sweeps(self):
        executor = FakeExecutor()
        executor.report.workers.append("stale")
        execute_with_fallback([executor], units(2), {})
        assert executor.report.workers == []
