"""The shared retry policy: schedule, budget, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.exec import RetryPolicy


class TestDelay:
    def test_doubles_from_base(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.5)
        assert [policy.delay(a) for a in (1, 2, 3, 4)] == [0.5, 1.0, 2.0, 4.0]

    def test_capped(self):
        policy = RetryPolicy(max_retries=10, backoff_base=8.0, backoff_cap=10.0)
        assert policy.delay(5) == 10.0

    def test_zero_base_retries_immediately(self):
        policy = RetryPolicy(backoff_base=0.0)
        assert policy.delay(1) == 0.0
        assert policy.delay(7) == 0.0

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            RetryPolicy().delay(0)


class TestBudget:
    def test_allows_within_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)

    def test_zero_budget_never_retries(self):
        assert not RetryPolicy(max_retries=0).allows(1)

    def test_schedule_length_matches_budget(self):
        policy = RetryPolicy(max_retries=3, backoff_base=1.0)
        assert list(policy.schedule()) == [1.0, 2.0, 4.0]


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_cap": -1.0},
        ],
    )
    def test_rejects_negative_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_retries = 5
