"""Backend equivalence and recovery: every executor, same bits.

The fabric's correctness contract is single-sentence: for one seed,
``run_trials`` returns bit-identical ``per_trial`` arrays whichever
backend ran the trials, however many workers died along the way. These
tests pin that sentence, plus the provenance trail (manifest ``executor``
field, ``exec.*`` counters) that says what the fabric actually did.
"""

import time
import warnings

import numpy as np
import pytest

from repro.baselines.trivial import TrivialStrategy
from repro.errors import ConfigurationError, ExecutorError, TrialTimeoutError
from repro.exec import (
    ChaosPlan,
    LocalPoolExecutor,
    RetryPolicy,
    SerialExecutor,
    SocketWorkerExecutor,
)
from repro.obs.registry import Registry
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def factory(n=16, m=16, beta=0.25, alpha=0.75):
    return lambda rng: planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=rng
    )


def sweep(executor=None, n_trials=8, seed=42, **kwargs):
    return run_trials(
        factory(),
        TrivialStrategy,
        n_trials=n_trials,
        seed=seed,
        executor=executor,
        **kwargs,
    )


def assert_identical(a, b):
    assert set(a.per_trial) == set(b.per_trial)
    for key in a.per_trial:
        assert np.array_equal(a.per_trial[key], b.per_trial[key]), key


def fast_socket(**kwargs):
    """A socket executor tuned for test latency, not production."""
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("lease_timeout", 5.0)
    kwargs.setdefault("heartbeat_interval", 0.25)
    kwargs.setdefault("retry", RetryPolicy(max_retries=4, backoff_base=0.0))
    return SocketWorkerExecutor(**kwargs)


def noop_launcher(host, port, token, ordinal):
    """A launcher that never actually starts anything."""
    return None


class TestEquivalence:
    def test_serial_name_matches_default(self):
        assert_identical(sweep(), sweep(executor="serial"))

    def test_serial_instance_matches_default(self):
        assert_identical(sweep(), sweep(executor=SerialExecutor()))

    def test_local_pool_matches_serial(self):
        assert_identical(sweep(), sweep(executor="local", n_jobs=2))

    def test_local_instance_without_fork_viability_matches_serial(self):
        # n_jobs=1: the pool is not viable, the backend runs in-process
        assert_identical(
            sweep(), sweep(executor=LocalPoolExecutor(n_jobs=1))
        )

    def test_socket_matches_serial(self):
        assert_identical(sweep(), sweep(executor=fast_socket()))

    def test_socket_with_lanes_matches_serial_with_lanes(self):
        a = sweep(batch_lanes=4)
        b = sweep(executor=fast_socket(), batch_lanes=4)
        assert_identical(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            sweep(executor="quantum")

    def test_non_executor_object_rejected(self):
        with pytest.raises(ConfigurationError, match="Executor instance"):
            sweep(executor=42)


class TestManifestReport:
    def test_serial_backend_recorded(self):
        manifest = sweep(executor="serial").manifest
        assert manifest.executor["backend"] == "serial"
        assert manifest.executor["reassignments"] == []

    def test_local_pool_roster_recorded(self):
        manifest = sweep(executor="local", n_jobs=2).manifest
        assert manifest.executor["backend"] == "local"
        assert manifest.executor["workers"]  # at least one pool worker

    def test_socket_roster_recorded(self):
        manifest = sweep(executor=fast_socket()).manifest
        assert manifest.executor["backend"] == "socket"
        assert len(manifest.executor["workers"]) >= 2


class TestChaosEquivalence:
    """The acceptance criterion: chaos-killed runs lose nothing."""

    def test_killed_workers_change_nothing(self):
        baseline = sweep(executor="serial")
        registry = Registry()
        chaotic = sweep(
            executor=fast_socket(
                chaos=ChaosPlan(kill_rate=0.5, max_events=2, seed=7)
            ),
            obs=registry,
        )
        assert_identical(baseline, chaotic)

        report = chaotic.manifest.executor
        assert report["backend"] == "socket"
        assert report["worker_losses"] >= 1
        assert report["reassignments"], "chaos run must log reassignments"
        for entry in report["reassignments"]:
            assert entry["reason"] in ("worker_lost", "lease_expired")
            assert entry["trials"]

        counters = registry.counters()
        assert counters["exec.worker_lost"] >= 1
        assert counters["exec.reassigned"] >= 1
        assert counters["exec.retries"] >= 1

    def test_partitioned_workers_change_nothing(self):
        baseline = sweep(executor="serial")
        chaotic = sweep(
            executor=fast_socket(
                chaos=ChaosPlan(partition_rate=0.5, max_events=2, seed=3)
            )
        )
        assert_identical(baseline, chaotic)

    def test_every_trial_checkpointed_exactly_once_under_chaos(self, tmp_path):
        """Redispatch is idempotent and the dispatcher deduplicates, so
        the checkpoint hook sees each trial exactly once even when its
        first owner was killed mid-chunk."""
        import json

        path = str(tmp_path / "chaos.ckpt")
        sweep(
            executor=fast_socket(
                chaos=ChaosPlan(kill_rate=0.5, max_events=2, seed=7)
            ),
            chunk_size=2,
            checkpoint_path=path,
        )
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        indexes = [entry["index"] for entry in lines[1:]]  # line 1: header
        assert sorted(indexes) == list(range(8))


class TestDegradation:
    def test_socket_failure_degrades_to_serial(self):
        executor = fast_socket(
            launcher=noop_launcher,
            connect_timeout=0.4,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        registry = Registry()
        with pytest.warns(RuntimeWarning, match="degrading to serial"):
            degraded = sweep(executor=executor, obs=registry)
        assert_identical(sweep(), degraded)
        report = degraded.manifest.executor
        assert report["backend"] == "serial"
        assert report["degraded_from"] == ["socket"]
        assert registry.counters()["exec.degraded"] == 1

    def test_fallback_disabled_propagates_executor_error(self):
        executor = fast_socket(
            launcher=noop_launcher,
            connect_timeout=0.4,
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        with pytest.raises(ExecutorError, match="no live socket workers"):
            sweep(executor=executor, executor_fallback=False)


class SleepyStrategy(TrivialStrategy):
    """Stalls inside the engine long enough to trip any sane timeout."""

    def choose_probes(self, round_no, active_players, view):
        time.sleep(10.0)
        return super().choose_probes(round_no, active_players, view)


class TestTimeoutAcrossBackends:
    def test_socket_worker_timeout_aborts_the_sweep(self):
        """A hung trial is deterministic: redispatching it would hang
        again, so the worker ships the timeout home and the sweep
        aborts instead of degrading."""
        with pytest.raises(TrialTimeoutError, match="wall-clock budget"):
            run_trials(
                factory(),
                SleepyStrategy,
                n_trials=2,
                seed=0,
                timeout=0.3,
                executor=fast_socket(),
            )


class TestValidation:
    def test_socket_rejects_bad_heartbeat(self):
        with pytest.raises(ConfigurationError, match="heartbeat_interval"):
            SocketWorkerExecutor(lease_timeout=1.0, heartbeat_interval=2.0)

    def test_socket_rejects_nonpositive_lease(self):
        with pytest.raises(ConfigurationError, match="lease_timeout"):
            SocketWorkerExecutor(lease_timeout=0.0)

    def test_socket_rejects_zero_workers_with_launcher(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            SocketWorkerExecutor(n_workers=0)


class TestProcessWideKnob:
    def test_env_and_override_resolution(self, monkeypatch):
        from repro.experiments.config import (
            EXECUTOR_ENV_VAR,
            default_executor,
            resolve_executor,
            set_default_executor,
        )

        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        assert default_executor() == "serial"
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "bogus")
        with pytest.raises(ConfigurationError, match="REPRO_EXECUTOR"):
            default_executor()
        monkeypatch.delenv(EXECUTOR_ENV_VAR)
        set_default_executor("local")
        try:
            assert resolve_executor(None) == "local"
            assert resolve_executor("serial") == "serial"
        finally:
            set_default_executor(None)

    def test_measure_threads_the_knob_through(self):
        from repro.experiments.common import measure
        from repro.experiments.config import set_default_executor

        set_default_executor(SerialExecutor())
        try:
            result = measure(
                factory(), TrivialStrategy, trials=3, seed=5
            )
        finally:
            set_default_executor(None)
        assert result.manifest.executor["backend"] == "serial"
