"""Admission control: token buckets, the in-flight gauge, shed reasons."""

from repro.serve.admission import (
    SHED_INFLIGHT,
    SHED_RATE,
    Admission,
    InflightGauge,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_starve(self):
        bucket = TokenBucket(rate=1.0, burst=3, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2, now=0.0)
        assert bucket.try_acquire(0.0) and bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.25)  # half a token accrued
        assert bucket.try_acquire(0.5)  # one full token at 2/s
        assert not bucket.try_acquire(0.5)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2, now=0.0)
        assert bucket.try_acquire(0.0)
        # a long quiet period refills to burst, not beyond
        assert bucket.try_acquire(1000.0)
        assert bucket.try_acquire(1000.0)
        assert not bucket.try_acquire(1000.0)

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0, burst=1, now=0.0)
        assert all(bucket.try_acquire(0.0) for _ in range(100))

    def test_clock_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=1.0, burst=5, now=10.0)
        assert bucket.try_acquire(10.0)
        assert bucket.try_acquire(3.0)  # no refill, no crash


class TestInflightGauge:
    def test_caps_and_releases(self):
        gauge = InflightGauge(2)
        assert gauge.try_acquire() and gauge.try_acquire()
        assert not gauge.try_acquire()
        gauge.release()
        assert gauge.try_acquire()

    def test_peak_high_water(self):
        gauge = InflightGauge(8)
        for _ in range(5):
            gauge.try_acquire()
        for _ in range(5):
            gauge.release()
        assert gauge.peak == 5
        assert gauge.inflight == 0


class TestAdmission:
    def test_rate_shed_comes_first(self):
        admission = Admission(1.0, 1, InflightGauge(10), now=0.0)
        assert admission.admit(0.0) is None
        assert admission.admit(0.0) == SHED_RATE
        admission.finish()

    def test_inflight_shed(self):
        gauge = InflightGauge(1)
        first = Admission(0.0, 1, gauge, now=0.0)
        second = Admission(0.0, 1, gauge, now=0.0)
        assert first.admit(0.0) is None
        assert second.admit(0.0) == SHED_INFLIGHT
        first.finish()
        assert second.admit(0.0) is None
        second.finish()

    def test_rate_shed_holds_no_slot(self):
        gauge = InflightGauge(1)
        throttled = Admission(1.0, 1, gauge, now=0.0)
        assert throttled.admit(0.0) is None
        throttled.finish()
        assert throttled.admit(0.0) == SHED_RATE
        # the rate-shed request must not have leaked an in-flight slot
        assert gauge.inflight == 0
