"""Online incremental DISTILL must be bit-identical to batch DISTILL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.sparse import SparseBoard
from repro.errors import ConfigurationError
from repro.serve.recommender import (
    OnlineDistillRecommender,
    batch_recommender,
)
from repro.strategies.base import StrategyContext

N, M = 16, 12


def _ctx():
    return StrategyContext(n=N, m=M, alpha=0.5, beta=0.25)


def _seeded_traffic(board, epochs, seed=0, votes_per_epoch=5):
    """Deterministic vote traffic appended epoch by epoch (a generator
    so callers can interleave folds with appends)."""
    rng = np.random.default_rng(seed)
    for epoch in range(epochs):
        players = rng.integers(0, N, votes_per_epoch)
        objects = rng.integers(0, M, votes_per_epoch)
        board.append_many(
            epoch,
            [
                (int(p), int(o), 1.0, PostKind.VOTE)
                for p, o in zip(players, objects)
            ],
        )
        yield epoch + 1


class TestOnlineVsBatch:
    @pytest.mark.parametrize("board_cls", [Billboard, SparseBoard])
    def test_bit_identical_at_every_epoch_boundary(self, board_cls):
        """The golden equivalence: fold epochs one at a time online, and
        at *every* boundary the full state digest must equal a fresh
        batch replay over the same board — phase machine and scores,
        bit for bit, long enough to cross phase transitions."""
        board = board_cls(N, M)
        online = OnlineDistillRecommender(board, _ctx())
        for epoch in _seeded_traffic(board, epochs=60, seed=3):
            online.fold_epoch(epoch)
            batch = batch_recommender(board, _ctx(), epoch)
            assert online.state_digest() == batch.state_digest(), (
                f"online diverged from batch at epoch {epoch} "
                f"(online phase {online.phase}, batch {batch.phase})"
            )
            assert online.recommend(5) == batch.recommend(5)

    def test_matches_engine_style_per_round_replay(self):
        """The canonical reference: a raw tracker advanced round by
        round with the honest start-of-round view, exactly as the
        engine drives it. The online fold (and therefore the batch
        reference built on it) must land in the same tracker state."""
        from repro.billboard.views import BillboardView
        from repro.core.parameters import DistillParameters
        from repro.core.tracker import DistillPhaseTracker

        board = Billboard(N, M)
        online = OnlineDistillRecommender(board, _ctx())
        engine_tracker = DistillPhaseTracker(_ctx(), DistillParameters())
        for epoch in _seeded_traffic(board, epochs=60, seed=3):
            online.fold_epoch(epoch)
            engine_tracker.advance(
                epoch, BillboardView(board, before_round=epoch)
            )
            assert online.phase == engine_tracker.phase.value
            assert np.array_equal(online.pool, engine_tracker.pool)
            assert np.array_equal(
                online.candidates, engine_tracker.candidates
            )
            assert online._tracker.phase_start == engine_tracker.phase_start

    def test_crosses_phase_transitions(self):
        board = Billboard(N, M)
        online = OnlineDistillRecommender(board, _ctx())
        phases = set()
        for epoch in _seeded_traffic(board, epochs=60, seed=3):
            online.fold_epoch(epoch)
            phases.add(online.phase)
        assert "step1.1" in phases
        assert len(phases) >= 2, f"traffic never left {phases}"

    def test_sparse_equals_dense(self):
        dense, sparse = Billboard(N, M), SparseBoard(N, M)
        online_dense = OnlineDistillRecommender(dense, _ctx())
        online_sparse = OnlineDistillRecommender(sparse, _ctx())
        for board, online in ((dense, online_dense), (sparse, online_sparse)):
            for epoch in _seeded_traffic(board, epochs=25, seed=9):
                online.fold_epoch(epoch)
        assert online_dense.state_digest() == online_sparse.state_digest()


# arbitrary per-epoch batches, including empty epochs
traffic = st.lists(
    st.lists(
        st.tuples(st.integers(0, N - 1), st.integers(0, M - 1)),
        max_size=6,
    ),
    max_size=25,
)


@given(traffic)
@settings(max_examples=40, deadline=None)
def test_equivalence_under_arbitrary_traffic(batches):
    board = Billboard(N, M)
    online = OnlineDistillRecommender(board, _ctx())
    for epoch_no, batch in enumerate(batches):
        board.append_many(
            epoch_no, [(p, o, 1.0, PostKind.VOTE) for p, o in batch]
        )
        online.fold_epoch(epoch_no + 1)
        batch_ref = batch_recommender(board, _ctx(), epoch_no + 1)
        assert online.state_digest() == batch_ref.state_digest()


class TestRecommenderSurface:
    def test_epochs_fold_forward_only(self):
        online = OnlineDistillRecommender(Billboard(N, M), _ctx())
        online.fold_epoch(3)
        with pytest.raises(ConfigurationError):
            online.fold_epoch(2)
        online.fold_epoch(3)  # idempotent re-fold of the same boundary

    def test_scores_mask_non_pool_objects(self):
        board = Billboard(N, M)
        online = OnlineDistillRecommender(board, _ctx())
        for epoch in _seeded_traffic(board, epochs=10, seed=1):
            online.fold_epoch(epoch)
        scores = online.scores()
        assert scores.shape == (M,)
        pool = set(int(obj) for obj in online.pool)
        for obj in range(M):
            if obj in pool:
                assert scores[obj] >= 0.0
            else:
                assert scores[obj] == -1.0

    def test_recommend_ranks_by_score_then_id(self):
        board = Billboard(N, M)
        online = OnlineDistillRecommender(board, _ctx())
        board.append_many(
            0,
            [(p, 7, 1.0, PostKind.VOTE) for p in range(5)]
            + [(p, 2, 1.0, PostKind.VOTE) for p in range(5, 8)]
            + [(8, 4, 1.0, PostKind.VOTE), (9, 9, 1.0, PostKind.VOTE)],
        )
        online.fold_epoch(1)
        top = online.recommend(4)
        assert top[0] == 7  # most-voted first
        assert top[1] == 2
        assert top[2:] == [4, 9]  # tied at 1 vote: id ascending

    def test_diagnostics_shape(self):
        online = OnlineDistillRecommender(Billboard(N, M), _ctx())
        online.fold_epoch(2)
        diag = online.diagnostics()
        assert diag["epoch"] == 2
        assert diag["phase"] == online.phase
        assert diag["pool_size"] == M
