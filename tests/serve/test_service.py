"""BillboardService integration: the full socket round trip."""

import pytest

from repro.errors import ConfigurationError, LoadShedError
from repro.obs.manifest import SCHEMA_VERSION
from repro.serve import (
    ServeClient,
    ServeConfig,
    batch_recommender,
    default_serve_max_inflight,
    default_serve_port,
    default_serve_rate,
    resolve_serve_rate,
    set_default_serve_port,
)
from repro.serve.service import ServiceThread


@pytest.fixture()
def served():
    """One live service on a daemon thread, torn down via shutdown."""
    config = ServeConfig(n_players=32, n_objects=16)
    with ServiceThread(config) as runner:
        yield runner


class TestServiceRoundTrip:
    def test_post_tick_query_cycle(self, served):
        host, port = served.address
        with ServeClient(host, port) as client:
            for player in range(6):
                reply = client.vote(player, player % 3)
                assert reply["epoch"] == 0
            # buffered writes are invisible until the epoch completes
            assert client.counts()["counts"] == [0] * 16
            tick = client.tick()
            assert tick["epoch"] == 1
            counts = client.counts()["counts"]
            assert counts[0] == 2 and counts[1] == 2 and counts[2] == 2
            assert client.recommend(3) == [0, 1, 2]
            scores = client.scores()
            assert scores["epoch"] == 1
            assert scores["scores"][0] == 2.0

    def test_report_posts_are_not_votes(self, served):
        host, port = served.address
        with ServeClient(host, port) as client:
            client.post(0, 5, value=0.75, kind="report")
            client.tick()
            assert client.counts()["counts"][5] == 0
            board = client.board()
            assert board["posts"] == 1 and board["visible_votes"] == 0

    def test_served_board_matches_batch_distill(self, served):
        host, port = served.address
        with ServeClient(host, port) as client:
            for epoch in range(12):
                for player in range(5):
                    client.vote(
                        (epoch * 5 + player) % 32, (epoch + player) % 16
                    )
                client.tick()
        online = served.service.recommender
        reference = batch_recommender(
            served.service.board, online.ctx, online.epoch
        )
        assert online.state_digest() == reference.state_digest()

    def test_metrics_surface(self, served):
        host, port = served.address
        with ServeClient(host, port) as client:
            client.vote(0, 0)
            client.tick()
            metrics = client.metrics()
        manifest = metrics["manifest"]
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["serving"]["n_players"] == 32
        assert manifest["serving"]["max_inflight"] == 256
        counters = metrics["counters"]
        assert counters["serve.posts"] == 1
        assert counters["serve.ticks"] == 1
        assert counters["serve.shed"] == 0
        assert metrics["recommender"]["phase"] == "step1.1"
        assert metrics["substrate"] == "dense"

    def test_bad_requests_get_typed_errors(self, served):
        host, port = served.address
        with ServeClient(host, port) as client:
            with pytest.raises(ConfigurationError, match="player"):
                client.vote(99, 0)
            with pytest.raises(ConfigurationError, match="object"):
                client.vote(0, 99)
            with pytest.raises(ConfigurationError, match="non-finite"):
                client.post(0, 0, value=float("nan"))
            with pytest.raises(ConfigurationError, match="unknown query"):
                client.request("query", {"op": "bogus"})
            with pytest.raises(ConfigurationError, match="unknown request"):
                client.request("frobnicate")
            # the connection survives errors and rejected posts leave
            # no trace on the board
            client.tick()
            assert client.board()["posts"] == 0


class TestBackpressure:
    def test_rate_limit_sheds_with_reason(self):
        config = ServeConfig(n_players=8, n_objects=4, rate=0.001, burst=2)
        with ServiceThread(config) as runner:
            with ServeClient(*runner.address) as client:
                client.vote(0, 0)
                client.vote(1, 1)
                with pytest.raises(LoadShedError) as excinfo:
                    client.vote(2, 2)
                assert excinfo.value.reason == "rate"
                metrics_config = runner.service.config
                assert metrics_config.rate == 0.001
            with ServeClient(*runner.address) as fresh:
                # shed replies kept the server alive; a new connection
                # has its own bucket
                assert fresh.board()["posts"] == 0
                shed = fresh.metrics()["counters"]["serve.shed"]
                assert shed >= 1

    def test_full_write_buffer_flushes_synchronously(self):
        config = ServeConfig(n_players=8, n_objects=4, queue_depth=3)
        with ServiceThread(config) as runner:
            with ServeClient(*runner.address) as client:
                assert client.vote(0, 0)["buffered"] == 1
                assert client.vote(1, 1)["buffered"] == 2
                # the third post fills the buffer and flushes it
                assert client.vote(2, 2)["buffered"] == 0
                assert client.board()["posts"] == 3
                flushes = client.metrics()["counters"]["serve.flushes"]
                assert flushes == 1


class TestSubstrateKnob:
    def test_sparse_substrate_serves_identically(self):
        config = ServeConfig(n_players=8, n_objects=4, substrate="sparse")
        with ServiceThread(config) as runner:
            assert runner.service.substrate == "sparse"
            with ServeClient(*runner.address) as client:
                client.vote(3, 2)
                client.tick()
                assert client.counts()["counts"] == [0, 0, 1, 0]
                assert client.board()["substrate"] == "sparse"
                serving = client.metrics()["manifest"]["serving"]
                assert serving["substrate"] == "sparse"


class TestServeKnobs:
    def test_port_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_PORT", raising=False)
        assert default_serve_port() == 0
        monkeypatch.setenv("REPRO_SERVE_PORT", "4242")
        assert default_serve_port() == 4242
        set_default_serve_port(9999)
        try:
            assert default_serve_port() == 9999
        finally:
            set_default_serve_port(None)
        monkeypatch.setenv("REPRO_SERVE_PORT", "not-a-port")
        with pytest.raises(ConfigurationError, match="REPRO_SERVE_PORT"):
            default_serve_port()

    def test_max_inflight_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "0")
        with pytest.raises(
            ConfigurationError, match="REPRO_SERVE_MAX_INFLIGHT"
        ):
            default_serve_max_inflight()

    def test_rate_env_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_RATE", "2.5")
        assert default_serve_rate() == 2.5
        assert resolve_serve_rate(None) == 2.5
        assert resolve_serve_rate(7.0) == 7.0
        monkeypatch.setenv("REPRO_SERVE_RATE", "-1")
        with pytest.raises(ConfigurationError, match="REPRO_SERVE_RATE"):
            default_serve_rate()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(n_players=0, n_objects=4)
        with pytest.raises(ConfigurationError):
            ServeConfig(n_players=4, n_objects=4, max_inflight=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(n_players=4, n_objects=4, rate=-0.5)
        with pytest.raises(ConfigurationError):
            ServeConfig(n_players=4, n_objects=4, queue_depth=0)


class TestServeCli:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--n",
                "64",
                "--m",
                "32",
                "--port",
                "0",
                "--substrate",
                "sparse",
                "--max-inflight",
                "128",
                "--rate",
                "100",
            ]
        )
        assert args.command == "serve"
        assert args.n == 64 and args.m == 32
        assert args.substrate == "sparse"
        assert args.max_inflight == 128
        assert args.rate == 100.0
