"""Tests for the adaptive split-vote adversary."""

import numpy as np
import pytest

from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.sim.engine import SynchronousEngine
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def run_engine(adversary, n=128, alpha=0.4, beta=1 / 16, seed=7):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=n, m=n, beta=beta, alpha=alpha, rng=np.random.default_rng(world_ss)
    )
    engine = SynchronousEngine(
        inst,
        DistillStrategy(),
        adversary=adversary,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
    )
    return inst, engine, engine.run()


class TestConstruction:
    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            SplitVoteAdversary(step11_fraction=-0.1)
        with pytest.raises(ValueError):
            SplitVoteAdversary(step13_fraction=1.1)

    def test_rejects_bad_vote_multiplier(self):
        with pytest.raises(ValueError):
            SplitVoteAdversary(votes_per_identity=0)


class TestBudget:
    def test_never_exceeds_one_vote_per_identity(self):
        adv = SplitVoteAdversary()
        inst, engine, _metrics = run_engine(adv)
        ledger = engine.board.ledger
        assert (
            ledger.votes_cast_by(inst.dishonest_ids)
            <= inst.n_dishonest
        )

    def test_votes_target_bad_objects_only(self):
        adv = SplitVoteAdversary()
        inst, engine, _metrics = run_engine(adv)
        for post in engine.board.vote_posts():
            if not inst.honest_mask[post.player]:
                assert not inst.space.good_mask[post.object_id]

    def test_batches_have_distinct_voters(self):
        """With votes_per_identity > 1 a threshold batch must still use
        distinct identities (the ledger dedups same-player same-object)."""
        adv = SplitVoteAdversary(votes_per_identity=3)
        adv._unused = [1, 1, 1, 2, 2, 2]
        taken = adv._take_votes(2)
        assert taken == [1, 2]
        assert adv._unused == [1, 1, 2, 2]

    def test_take_votes_refuses_partial_batch(self):
        adv = SplitVoteAdversary()
        adv._unused = [1, 2]
        assert adv._take_votes(3) == []
        assert adv._unused == [1, 2]


class TestEffectiveness:
    def test_costs_more_than_silence(self):
        def mean_cost(factory, seed=41):
            return run_trials(
                lambda rng: planted_instance(
                    n=256, m=256, beta=1 / 16, alpha=0.3, rng=rng
                ),
                DistillStrategy,
                make_adversary=factory,
                n_trials=12,
                seed=seed,
            ).mean("mean_individual_rounds")

        assert mean_cost(SplitVoteAdversary) > mean_cost(SilentAdversary)

    def test_iterations_stay_within_lemma7(self):
        """Full engine runs never exceed the Lemma 7 iteration budget —
        in fact at simulable n the Lemma 6 advice cascade usually ends
        the run during Step 1.3 with zero iterations (see bench E5; the
        worst-case combinatorics are exercised by the Lemma 7 kernel)."""
        from repro.analysis.bounds import lemma7_iteration_bound

        res = run_trials(
            lambda rng: planted_instance(
                n=512, m=512, beta=1 / 16, alpha=0.2, rng=rng
            ),
            DistillStrategy,
            make_adversary=SplitVoteAdversary,
            n_trials=8,
            seed=43,
        )
        bound = lemma7_iteration_bound(512, 0.2)
        for info in res.strategy_infos:
            assert info["max_iterations_per_attempt"] <= 2.5 * bound

    def test_mirror_tracks_phases_without_crashing(self):
        """Long adversarial run exercising every phase transition in the
        mirror tracker."""
        adv = SplitVoteAdversary()
        _inst, _engine, metrics = run_engine(adv, alpha=0.2, seed=51)
        assert metrics.all_honest_satisfied
