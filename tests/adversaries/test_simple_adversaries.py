"""Tests for the silent, flood, random-votes, and concentrate adversaries."""

import numpy as np
import pytest

from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.flood import FloodAdversary
from repro.adversaries.random_votes import RandomVotesAdversary
from repro.adversaries.silent import SilentAdversary
from repro.billboard.board import Billboard
from repro.billboard.views import BillboardView
from repro.errors import ConfigurationError
from repro.world.generators import planted_instance


@pytest.fixture
def instance(rng):
    return planted_instance(n=16, m=16, beta=0.25, alpha=0.5, rng=rng)


def view_for(instance):
    return BillboardView(Billboard(instance.n, instance.m))


class TestSilent:
    def test_never_acts(self, instance, rng):
        adv = SilentAdversary()
        adv.reset(instance, rng)
        for r in range(10):
            assert adv.act(r, view_for(instance)) == []


class TestFlood:
    def test_votes_all_at_round_zero(self, instance, rng):
        adv = FloodAdversary()
        adv.reset(instance, rng)
        actions = adv.act(0, view_for(instance))
        assert len(actions) == instance.n_dishonest
        assert adv.act(1, view_for(instance)) == []

    def test_targets_are_bad_objects(self, instance, rng):
        adv = FloodAdversary()
        adv.reset(instance, rng)
        bad = set(np.flatnonzero(~instance.space.good_mask).tolist())
        for action in adv.act(0, view_for(instance)):
            assert action.object_id in bad

    def test_targets_distinct_when_enough_bad(self, instance, rng):
        adv = FloodAdversary()
        adv.reset(instance, rng)
        actions = adv.act(0, view_for(instance))
        targets = [a.object_id for a in actions]
        assert len(set(targets)) == len(targets)

    def test_each_identity_used_once(self, instance, rng):
        adv = FloodAdversary()
        adv.reset(instance, rng)
        actions = adv.act(0, view_for(instance))
        voters = [a.player for a in actions]
        assert len(set(voters)) == len(voters)
        assert set(voters) == set(instance.dishonest_ids.tolist())


class TestRandomVotes:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            RandomVotesAdversary(horizon=0)

    def test_total_budget_respected(self, instance, rng):
        adv = RandomVotesAdversary(horizon=8)
        adv.reset(instance, rng)
        total = sum(
            len(adv.act(r, view_for(instance))) for r in range(10)
        )
        assert total == instance.n_dishonest

    def test_votes_spread_over_horizon(self, instance):
        adv = RandomVotesAdversary(horizon=64)
        big = planted_instance(
            n=256, m=256, beta=0.25, alpha=0.2,
            rng=np.random.default_rng(0),
        )
        adv.reset(big, np.random.default_rng(1))
        rounds_with_votes = sum(
            1 for r in range(64) if adv.act(r, view_for(big))
        )
        assert rounds_with_votes > 10


class TestConcentrate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConcentrateAdversary(n_targets=0)
        with pytest.raises(ConfigurationError):
            ConcentrateAdversary(votes_each=0)
        with pytest.raises(ConfigurationError):
            ConcentrateAdversary(at_round=-1)

    def test_fires_once_at_round(self, instance, rng):
        adv = ConcentrateAdversary(n_targets=2, votes_each=3, at_round=2)
        adv.reset(instance, rng)
        assert adv.act(0, view_for(instance)) == []
        assert adv.act(1, view_for(instance)) == []
        actions = adv.act(2, view_for(instance))
        assert len(actions) == 6
        assert adv.act(3, view_for(instance)) == []

    def test_votes_stack_per_target(self, instance, rng):
        adv = ConcentrateAdversary(n_targets=2, votes_each=3)
        adv.reset(instance, rng)
        actions = adv.act(0, view_for(instance))
        per_target = {}
        for a in actions:
            per_target.setdefault(a.object_id, set()).add(a.player)
        assert len(per_target) == 2
        assert all(len(v) == 3 for v in per_target.values())

    def test_budget_cap(self, instance, rng):
        adv = ConcentrateAdversary(n_targets=4, votes_each=100)
        adv.reset(instance, rng)
        actions = adv.act(0, view_for(instance))
        assert len(actions) <= instance.n_dishonest

    def test_even_split_when_votes_each_omitted(self, instance, rng):
        adv = ConcentrateAdversary(n_targets=2)
        adv.reset(instance, rng)
        actions = adv.act(0, view_for(instance))
        assert len(actions) == 2 * (instance.n_dishonest // 2)
