"""Tests for the adversary registry."""

import numpy as np
import pytest

from repro.adversaries.base import Adversary
from repro.adversaries.registry import (
    ADVERSARY_REGISTRY,
    available_adversaries,
    make_adversary,
)
from repro.errors import ConfigurationError
from repro.world.generators import planted_instance


class TestRegistry:
    def test_expected_names_present(self):
        names = available_adversaries()
        for expected in (
            "silent",
            "flood",
            "concentrate",
            "random-votes",
            "split-vote",
            "mimic",
        ):
            assert expected in names

    def test_make_returns_fresh_instances(self):
        a = make_adversary("silent")
        b = make_adversary("silent")
        assert a is not b
        assert isinstance(a, Adversary)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_adversary("nope")

    def test_kwargs_forwarded(self):
        adv = make_adversary("concentrate", n_targets=5)
        assert adv.n_targets == 5

    def test_every_registered_adversary_runs(self, rng):
        """Each registry entry completes a round of act() without error."""
        from repro.billboard.board import Billboard
        from repro.billboard.views import BillboardView

        inst = planted_instance(
            n=32, m=32, beta=0.25, alpha=0.5,
            rng=np.random.default_rng(3),
        )
        for name in available_adversaries():
            adv = make_adversary(name)
            adv.reset(inst, np.random.default_rng(4))
            view = BillboardView(Billboard(inst.n, inst.m))
            actions = adv.act(0, view)
            for action in actions:
                assert not inst.honest_mask[action.player], name

    def test_names_match_class_attribute(self):
        for name, factory in ADVERSARY_REGISTRY.items():
            assert factory().name == name
