"""Tests for protocol-mimicking adversaries (spoofed values, lures)."""

import numpy as np

from repro.adversaries.mimic import MimicAdversary
from repro.adversaries.spoofed import SpoofedProtocolAdversary
from repro.core.distill import DistillStrategy
from repro.sim.engine import SynchronousEngine
from repro.world.generators import planted_instance
from repro.world.valuemodel import constant_spoof_table


def make_world(seed=5, n=64, alpha=0.5):
    return planted_instance(
        n=n, m=n, beta=1 / 8, alpha=alpha, rng=np.random.default_rng(seed)
    )


def run_with(adversary, inst, seed=6):
    honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(2)
    engine = SynchronousEngine(
        inst,
        DistillStrategy(),
        adversary=adversary,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
    )
    return engine, engine.run()


class TestSpoofedProtocol:
    def test_spoofed_players_vote_for_their_spoofed_goods(self):
        inst = make_world()
        lure = int(np.flatnonzero(~inst.space.good_mask)[0])
        table = constant_spoof_table(inst.space, np.array([lure]))
        adversary = SpoofedProtocolAdversary(
            strategy_factory=DistillStrategy,
            spoof_tables={int(p): table for p in inst.dishonest_ids},
        )
        # seed picked so the mimicked cohort's DISTILL runs reach their
        # vote step before the honest cohort satisfies and the run halts
        engine, metrics = run_with(adversary, inst, seed=9)
        dishonest_votes = [
            p
            for p in engine.board.vote_posts()
            if not inst.honest_mask[p.player]
        ]
        assert dishonest_votes, "spoofed cohort should eventually vote"
        assert all(p.object_id == lure for p in dishonest_votes)
        assert metrics.all_honest_satisfied

    def test_players_without_tables_never_vote(self):
        inst = make_world()
        adversary = SpoofedProtocolAdversary(
            strategy_factory=DistillStrategy, spoof_tables={}
        )
        engine, _metrics = run_with(adversary, inst)
        dishonest_votes = [
            p
            for p in engine.board.vote_posts()
            if not inst.honest_mask[p.player]
        ]
        assert dishonest_votes == []

    def test_votes_at_protocol_plausible_times(self):
        """A spoofed player's vote must come while its mimicked protocol
        is actually probing — i.e., at some round within the run, not all
        in a burst at round 0 like the flood adversary."""
        inst = make_world(alpha=0.3, seed=9)
        lures = np.flatnonzero(~inst.space.good_mask)[:4]
        table = constant_spoof_table(inst.space, lures)
        adversary = SpoofedProtocolAdversary(
            strategy_factory=DistillStrategy,
            spoof_tables={int(p): table for p in inst.dishonest_ids},
        )
        engine, _metrics = run_with(adversary, inst, seed=10)
        vote_rounds = sorted(
            p.round_no
            for p in engine.board.vote_posts()
            if not inst.honest_mask[p.player]
        )
        assert len(set(vote_rounds)) > 1  # spread over time


class TestMimic:
    def test_mimic_runs_and_honest_win(self):
        inst = make_world(alpha=0.4, seed=11)
        engine, metrics = run_with(MimicAdversary(), inst, seed=12)
        assert metrics.all_honest_satisfied

    def test_mimic_votes_concentrate_on_lures(self):
        inst = make_world(alpha=0.4, seed=13)
        engine, _metrics = run_with(
            MimicAdversary(n_lures=2), inst, seed=14
        )
        lure_votes = {
            p.object_id
            for p in engine.board.vote_posts()
            if not inst.honest_mask[p.player]
        }
        assert len(lure_votes) <= 2
        assert all(
            not inst.space.good_mask[obj] for obj in lure_votes
        )

    def test_mimic_costs_more_than_nothing(self):
        from repro.adversaries.silent import SilentAdversary
        from repro.sim.runner import run_trials

        def mean_cost(factory):
            return run_trials(
                lambda rng: planted_instance(
                    n=256, m=256, beta=1 / 32, alpha=0.3, rng=rng
                ),
                DistillStrategy,
                make_adversary=factory,
                n_trials=10,
                seed=15,
            ).mean("mean_individual_rounds")

        assert mean_cost(MimicAdversary) > mean_cost(SilentAdversary)
