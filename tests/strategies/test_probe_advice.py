"""Tests for the PROBE&SEEKADVICE primitive."""

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.strategies.probe_advice import AdviceAlternator


class TestParity:
    def test_even_offsets_explore(self):
        assert not AdviceAlternator.is_advice_round(0)
        assert not AdviceAlternator.is_advice_round(2)

    def test_odd_offsets_advise(self):
        assert AdviceAlternator.is_advice_round(1)
        assert AdviceAlternator.is_advice_round(3)


class TestExplore:
    def test_samples_from_pool_only(self, rng):
        alt = AdviceAlternator(n_players=4)
        pool = np.array([3, 5, 9])
        picks = alt.explore(pool, 100, rng)
        assert set(np.unique(picks)) <= {3, 5, 9}
        assert picks.shape == (100,)

    def test_empty_pool_idles(self, rng):
        alt = AdviceAlternator(n_players=4)
        picks = alt.explore(np.array([], dtype=np.int64), 5, rng)
        assert (picks == -1).all()

    def test_covers_pool_eventually(self, rng):
        alt = AdviceAlternator(n_players=4)
        pool = np.array([0, 1, 2, 3])
        picks = alt.explore(pool, 400, rng)
        assert set(np.unique(picks)) == {0, 1, 2, 3}


class TestAdvise:
    def test_follows_votes(self, rng):
        board = Billboard(4, 8)
        board.append(0, 0, 6, 1.0, PostKind.VOTE)
        board.append(0, 1, 6, 1.0, PostKind.VOTE)
        board.append(0, 2, 6, 1.0, PostKind.VOTE)
        board.append(0, 3, 6, 1.0, PostKind.VOTE)
        view = BillboardView(board)
        alt = AdviceAlternator(n_players=4)
        picks = alt.advise(20, view, rng)
        assert (picks == 6).all()

    def test_no_votes_means_idle(self, rng):
        board = Billboard(4, 8)
        view = BillboardView(board)
        alt = AdviceAlternator(n_players=4)
        picks = alt.advise(10, view, rng)
        assert (picks == -1).all()

    def test_mixed_votes_sample_all_players(self, rng):
        board = Billboard(2, 8)
        board.append(0, 0, 3, 1.0, PostKind.VOTE)
        view = BillboardView(board)
        alt = AdviceAlternator(n_players=2)
        picks = alt.advise(300, view, rng)
        # advisor 0 -> object 3, advisor 1 -> no vote (-1)
        values, counts = np.unique(picks, return_counts=True)
        assert set(values) == {-1, 3}
        # roughly half each (binomial, very loose bounds)
        assert counts.min() > 75
