"""Tests for the Strategy base class and context."""

import numpy as np
import pytest

from repro.strategies.base import Strategy, StrategyContext


class TestContext:
    def test_local_testing_flag(self):
        with_test = StrategyContext(4, 4, 0.5, 0.5, good_threshold=0.5)
        without = StrategyContext(4, 4, 0.5, 0.5, good_threshold=None)
        assert with_test.supports_local_testing
        assert not without.supports_local_testing


class TestDefaultHandleResults:
    def make(self, threshold=0.5):
        strategy = Strategy()
        strategy.reset(
            StrategyContext(4, 4, 0.5, 0.5, good_threshold=threshold),
            np.random.default_rng(0),
        )
        return strategy

    def test_vote_and_halt_on_threshold_pass(self):
        strategy = self.make()
        vote, halt = strategy.handle_results(
            0,
            np.array([0, 1]),
            np.array([2, 3]),
            np.array([1.0, 0.0]),
        )
        assert vote.tolist() == [True, False]
        assert halt.tolist() == [True, False]

    def test_threshold_boundary_is_inclusive(self):
        strategy = self.make(threshold=0.5)
        vote, _halt = strategy.handle_results(
            0, np.array([0]), np.array([0]), np.array([0.5])
        )
        assert vote[0]

    def test_requires_local_testing(self):
        strategy = Strategy()
        strategy.reset(
            StrategyContext(4, 4, 0.5, 0.5, good_threshold=None),
            np.random.default_rng(0),
        )
        with pytest.raises(NotImplementedError):
            strategy.handle_results(
                0, np.array([0]), np.array([0]), np.array([1.0])
            )

    def test_choose_probes_abstract(self):
        with pytest.raises(NotImplementedError):
            Strategy().choose_probes(0, np.array([0]), None)

    def test_finished_defaults_false(self):
        assert not Strategy().finished(10)

    def test_info_defaults_empty(self):
        assert Strategy().info() == {}
