"""Unit tests for the lane-vectorized fault injector.

The engine-level faulted equivalence grid lives in
``tests/sim/test_batch_equivalence.py``; this module pins the building
blocks underneath it: the array-native post filter consumes the *exact*
stream the tuple-based scalar filter does, per-lane injector construction
treats ``None``/null plans as fault-free lanes, and the lane bookkeeping
(restarts, crashes, per-lane summaries) matches its scalar counterpart.
"""

import numpy as np
import pytest

from repro.billboard.post import PostKind
from repro.errors import ConfigurationError
from repro.faults.batched import BatchedFaultInjector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


def _rng(seed=0):
    return np.random.default_rng(seed)


def _block(rng, size):
    players = rng.integers(0, 16, size=size)
    objects = rng.integers(0, 16, size=size)
    values = rng.random(size)
    return players, objects, values


class TestFilterPostArrays:
    """The array filter is the tuple filter with different plumbing: same
    draws, same fates, same queue contents, same counters."""

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(post_loss_rate=0.3),
            FaultPlan(post_delay_rate=0.5, max_post_delay=3),
            FaultPlan(post_loss_rate=0.25, post_delay_rate=0.25,
                      max_post_delay=2),
        ],
    )
    def test_matches_filter_posts_stream_for_stream(self, plan):
        world = _rng(7)
        scalar = FaultInjector(plan, _rng(42))
        arrayed = FaultInjector(plan, _rng(42))
        scalar.reset()
        arrayed.reset()
        for round_no in range(12):
            players, objects, values = _block(world, int(world.integers(0, 9)))
            entries = [
                (int(p), int(o), float(v), PostKind.VOTE)
                for p, o, v in zip(players, objects, values)
            ]
            delivered, _dropped, _delayed = scalar.filter_posts(
                round_no, entries
            )
            dp, do, dv = arrayed.filter_post_arrays(
                round_no, players, objects, values, PostKind.VOTE
            )
            assert [
                (int(p), int(o), float(v), PostKind.VOTE)
                for p, o, v in zip(dp, do, dv)
            ] == delivered
            # the delayed-post queues must release identically too
            assert arrayed.due_posts(round_no + 1) == scalar.due_posts(
                round_no + 1
            )
        assert arrayed.counts == scalar.counts
        assert arrayed.pending_posts == scalar.pending_posts

    def test_empty_block_draws_nothing(self):
        plan = FaultPlan(post_loss_rate=0.5)
        injector = FaultInjector(plan, _rng(3))
        injector.reset()
        before = injector.rng.bit_generator.state
        out = injector.filter_post_arrays(
            0,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            PostKind.VOTE,
        )
        assert all(arr.size == 0 for arr in out)
        assert injector.rng.bit_generator.state == before

    def test_lossless_plan_draws_nothing(self):
        plan = FaultPlan(crash_rate=0.5)  # no post faults
        injector = FaultInjector(plan, _rng(3))
        injector.reset()
        before = injector.rng.bit_generator.state
        players, objects, values = _block(_rng(1), 5)
        dp, do, dv = injector.filter_post_arrays(
            0, players, objects, values, PostKind.REPORT
        )
        assert np.array_equal(dp, players)
        assert injector.rng.bit_generator.state == before


class TestFromPlans:
    """Per-lane construction: ``None`` and null plans mean a fault-free
    lane whose spare stream is never consumed."""

    def test_null_and_none_plans_make_no_injector(self):
        plans = [FaultPlan(post_loss_rate=0.1), None, FaultPlan()]
        faults = BatchedFaultInjector.from_plans(
            plans, [_rng(i) for i in range(3)]
        )
        assert faults.n_lanes == 3
        assert faults.lane(0) is not None
        assert faults.lane(1) is None
        assert faults.lane(2) is None
        assert faults.info(1) == {}
        assert faults.info(2) == {}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="fault streams"):
            BatchedFaultInjector.from_plans([None], [_rng(0), _rng(1)])

    def test_empty_lanes_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one lane"):
            BatchedFaultInjector([])


class TestLaneBookkeeping:
    def test_apply_crashes_matches_scalar_coins(self):
        plan = FaultPlan(crash_rate=0.4, restart_after=2)
        faults = BatchedFaultInjector(
            [FaultInjector(plan, _rng(s)) for s in (10, 11)]
        )
        faults.reset()
        scalar = [FaultInjector(plan, _rng(s)) for s in (10, 11)]
        for injector in scalar:
            injector.reset()
        active = np.ones((2, 8), dtype=bool)
        halted = np.full((2, 8), -1, dtype=np.int64)
        down = np.full((2, 8), -1, dtype=np.int64)
        faults.apply_crashes(3, [0, 1], active, halted, down)
        for k, injector in enumerate(scalar):
            crashed = injector.crash_coins(3, np.arange(8))
            assert np.array_equal(np.flatnonzero(~active[k]), crashed)
            assert (down[k][crashed] == 5).all()
            assert (halted[k][crashed] == -1).all()

    def test_permanent_crashes_halt(self):
        plan = FaultPlan(crash_rate=1.0)  # no restart_after
        faults = BatchedFaultInjector([FaultInjector(plan, _rng(0))])
        faults.reset()
        active = np.ones((1, 4), dtype=bool)
        halted = np.full((1, 4), -1, dtype=np.int64)
        down = np.full((1, 4), -1, dtype=np.int64)
        faults.apply_crashes(2, [0], active, halted, down)
        assert not active.any()
        assert (halted == 2).all()
        assert (down == -1).all()

    def test_info_total_sums_lanes(self):
        plan = FaultPlan(crash_rate=1.0)
        faults = BatchedFaultInjector(
            [FaultInjector(plan, _rng(0)), None, FaultInjector(plan, _rng(1))]
        )
        faults.reset()
        active = np.ones((3, 4), dtype=bool)
        halted = np.full((3, 4), -1, dtype=np.int64)
        down = np.full((3, 4), -1, dtype=np.int64)
        faults.apply_crashes(0, [0, 1, 2], active, halted, down)
        total = faults.info_total()
        assert total["crashes"] == 8
        assert faults.info(0)["crashes"] == 4
        assert faults.info(1) == {}

    def test_lane_count_validation_in_engine(self):
        from repro.sim.batch_engine import BatchedEngine
        from repro.world.generators import planted_instance

        rng = _rng(5)
        instances = [
            planted_instance(n=8, m=8, beta=0.25, alpha=0.75, rng=rng)
            for _ in range(2)
        ]
        faults = BatchedFaultInjector([None])
        with pytest.raises(ConfigurationError, match="lanes"):
            BatchedEngine(instances, strategy=None, faults=faults)

    def test_wrap_value_models_length_checked(self):
        faults = BatchedFaultInjector([None, None])
        with pytest.raises(ConfigurationError, match="value models"):
            faults.wrap_value_models([])
