"""Tests for the fault decision oracle."""

import numpy as np

from repro.billboard.post import PostKind
from repro.faults import FaultInjector, FaultPlan
from repro.world.valuemodel import PerturbedValueModel, TrueValueModel
from repro.world.generators import planted_instance


def make(plan, seed=7):
    injector = FaultInjector(plan, np.random.default_rng(seed))
    injector.reset()
    return injector


def entries(count):
    return [(p, p % 3, 1.0, PostKind.VOTE) for p in range(count)]


class TestFilterPosts:
    def test_zero_rates_pass_through_without_consuming_rng(self):
        injector = make(FaultPlan())
        before = injector.rng.bit_generator.state
        delivered, dropped, delayed = injector.filter_posts(0, entries(5))
        assert delivered == entries(5)
        assert dropped == [] and delayed == []
        assert injector.rng.bit_generator.state == before

    def test_full_loss_drops_everything(self):
        injector = make(FaultPlan(post_loss_rate=1.0))
        delivered, dropped, delayed = injector.filter_posts(0, entries(4))
        assert delivered == [] and delayed == []
        assert dropped == entries(4)
        assert injector.counts["dropped_posts"] == 4

    def test_full_delay_queues_everything(self):
        injector = make(
            FaultPlan(post_delay_rate=1.0, max_post_delay=2)
        )
        delivered, dropped, delayed = injector.filter_posts(3, entries(4))
        assert delivered == [] and dropped == []
        assert len(delayed) == 4
        assert injector.pending_posts == 4
        for deliver_round, _entry in delayed:
            assert deliver_round in (4, 5)

    def test_due_posts_release_at_the_stamped_round(self):
        injector = make(FaultPlan(post_delay_rate=1.0, max_post_delay=1))
        _, _, delayed = injector.filter_posts(0, entries(3))
        assert all(at == 1 for at, _ in delayed)
        assert injector.due_posts(0) == []
        released = injector.due_posts(1)
        assert sorted(released) == sorted(entries(3))
        # popped: a second ask returns nothing, nothing left in flight
        assert injector.due_posts(1) == []
        assert injector.pending_posts == 0

    def test_decisions_reproducible_for_same_seed(self):
        plan = FaultPlan(post_loss_rate=0.3, post_delay_rate=0.3)
        a, b = make(plan, seed=11), make(plan, seed=11)
        for round_no in range(5):
            assert a.filter_posts(round_no, entries(6)) == b.filter_posts(
                round_no, entries(6)
            )
        assert a.counts == b.counts


class TestCrashCoins:
    def test_zero_rate_is_free(self):
        injector = make(FaultPlan())
        before = injector.rng.bit_generator.state
        crashed = injector.crash_coins(0, np.arange(8))
        assert crashed.size == 0
        assert injector.rng.bit_generator.state == before

    def test_rate_one_crashes_everyone(self):
        injector = make(FaultPlan(crash_rate=1.0, restart_after=2))
        crashed = injector.crash_coins(0, np.arange(5))
        assert crashed.tolist() == [0, 1, 2, 3, 4]
        assert injector.counts["crashes"] == 5

    def test_stream_advance_depends_on_count_not_outcomes(self):
        """Two plans with different crash rates consume the stream
        identically, so fault realizations upstream never shift the
        decisions downstream."""
        lo, hi = make(FaultPlan(crash_rate=0.1)), make(
            FaultPlan(crash_rate=0.9)
        )
        lo.crash_coins(0, np.arange(16))
        hi.crash_coins(0, np.arange(16))
        assert (
            lo.rng.bit_generator.state == hi.rng.bit_generator.state
        )

    def test_note_restarts_counts(self):
        injector = make(FaultPlan(crash_rate=0.5, restart_after=1))
        injector.note_restarts(np.array([3, 4]))
        assert injector.counts["restarts"] == 2


class TestValueModelWrapping:
    def make_inner(self):
        inst = planted_instance(
            n=8, m=8, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        return TrueValueModel(inst.space)

    def test_zero_noise_rate_returns_inner_untouched(self):
        injector = make(FaultPlan(post_loss_rate=0.5))
        inner = self.make_inner()
        assert injector.wrap_value_model(inner) is inner

    def test_nonzero_noise_rate_wraps(self):
        injector = make(
            FaultPlan(observation_noise_rate=1.0, observation_noise=0.2)
        )
        wrapped = injector.wrap_value_model(self.make_inner())
        assert isinstance(wrapped, PerturbedValueModel)

    def test_perturbation_bounded_and_reproducible(self):
        inner = self.make_inner()
        players = np.arange(8)
        objects = np.arange(8)
        truth = inner.observe_many(players, objects)
        noisy = PerturbedValueModel(
            inner, rng=np.random.default_rng(5), noise_rate=1.0, noise=0.2
        )
        values = noisy.observe_many(players, objects)
        assert (np.abs(values - truth) <= 0.2 + 1e-12).all()
        assert not np.allclose(values, truth)
        again = PerturbedValueModel(
            inner, rng=np.random.default_rng(5), noise_rate=1.0, noise=0.2
        )
        assert np.array_equal(values, again.observe_many(players, objects))

    def test_stream_position_independent_of_outcomes(self):
        """observe_many always burns one coin + one shift per probe."""
        inner = self.make_inner()
        players, objects = np.arange(8), np.arange(8)
        never = PerturbedValueModel(
            inner, rng=np.random.default_rng(9), noise_rate=0.0, noise=0.2
        )
        always = PerturbedValueModel(
            inner, rng=np.random.default_rng(9), noise_rate=1.0, noise=0.2
        )
        assert np.array_equal(
            never.observe_many(players, objects),
            inner.observe_many(players, objects),
        )
        always.observe_many(players, objects)
        assert (
            never.rng.bit_generator.state
            == always.rng.bit_generator.state
        )

    def test_scalar_observe_matches_contract(self):
        inner = self.make_inner()
        noisy = PerturbedValueModel(
            inner, rng=np.random.default_rng(2), noise_rate=1.0, noise=0.1
        )
        value = noisy.observe(3, 3)
        assert abs(value - inner.observe(3, 3)) <= 0.1 + 1e-12


class TestInfo:
    def test_info_reports_counts_and_backlog(self):
        injector = make(
            FaultPlan(post_loss_rate=0.5, post_delay_rate=0.5)
        )
        injector.filter_posts(0, entries(20))
        info = injector.info()
        assert set(info) == {
            "dropped_posts",
            "delayed_posts",
            "crashes",
            "restarts",
            "undelivered_posts",
        }
        assert info["dropped_posts"] + info["delayed_posts"] == 20
        assert info["undelivered_posts"] == info["delayed_posts"]

    def test_reset_clears_everything(self):
        injector = make(FaultPlan(post_delay_rate=1.0))
        injector.filter_posts(0, entries(3))
        injector.reset()
        assert injector.pending_posts == 0
        assert injector.info()["delayed_posts"] == 0
