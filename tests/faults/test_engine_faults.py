"""Fault behavior of the synchronous engine.

The contract under test, per fault kind:

* lossy billboard — honest votes vanish (or land late) but a player's
  *own* probe still satisfies it: faults cost time, never correctness;
* churn — crashed players stop probing; restartable ones rejoin with no
  memory and the strategy is notified; permanent ones are halted;
* null plan — byte-identical to running with no fault layer at all;
* adversary posts are never filtered (it is already Byzantine).
"""

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.post import PostKind
from repro.core.distill import DistillStrategy
from repro.faults import FaultInjector, FaultPlan
from repro.sim.actions import VoteAction
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.strategies.base import Strategy
from repro.world.generators import explicit_instance, planted_instance


class FixedProbeStrategy(Strategy):
    name = "fixed"

    def __init__(self, target=1):
        self.target = target

    def choose_probes(self, round_no, active_players, view):
        return np.full(active_players.size, self.target, dtype=np.int64)


class RestartSpyStrategy(FixedProbeStrategy):
    """Records every restart notification it receives."""

    def reset(self, ctx, rng):
        super().reset(ctx, rng)
        self.restarted = []

    def on_player_restart(self, round_no, players):
        self.restarted.append((round_no, sorted(int(p) for p in players)))


class StubbornVoteAdversary(Adversary):
    """Votes for a scripted object every round, forever."""

    name = "stubborn"

    def __init__(self, player, obj):
        self.player = player
        self.obj = obj

    def act(self, round_no, view):
        return [VoteAction(player=self.player, object_id=self.obj)]


def two_object_instance(honest=(True, True, False)):
    """Object 0 bad, object 1 good."""
    return explicit_instance(
        values=np.array([0.0, 1.0]),
        good_mask=np.array([False, True]),
        honest_mask=np.array(honest),
        good_threshold=0.5,
    )


def injector(plan, seed=0):
    return FaultInjector(plan, np.random.default_rng(seed))


class TestLossyBillboard:
    def test_total_loss_keeps_correctness_loses_votes(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy(1),
            fault_injector=injector(FaultPlan(post_loss_rate=1.0)),
        )
        metrics = engine.run()
        # their own probe of the good object satisfies them regardless
        assert metrics.all_honest_satisfied
        assert engine.board.posts(kind=PostKind.VOTE) == []
        assert metrics.fault_info["dropped_posts"] == 2
        assert metrics.fault_info["undelivered_posts"] == 0

    def test_delayed_votes_land_with_the_delivery_stamp(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy(1),
            fault_injector=injector(
                FaultPlan(post_delay_rate=1.0, max_post_delay=1)
            ),
        )
        metrics = engine.run()
        votes = engine.board.posts(kind=PostKind.VOTE)
        assert len(votes) == 2
        # probed (and halted) in round 0; the posts landed in round 1
        assert all(post.round_no == 1 for post in votes)
        assert metrics.fault_info["delayed_posts"] == 2
        assert metrics.fault_info["undelivered_posts"] == 0
        assert metrics.halted_round[inst.honest_mask].tolist() == [0, 0]

    def test_adversary_posts_bypass_the_filter(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy(1),
            adversary=StubbornVoteAdversary(player=2, obj=0),
            fault_injector=injector(FaultPlan(post_loss_rate=1.0)),
        )
        engine.run()
        votes = engine.board.posts(kind=PostKind.VOTE)
        assert votes  # the Byzantine vote survives
        assert all(post.player == 2 for post in votes)


class TestChurn:
    def test_permanent_crashes_halt_players_unsatisfied(self):
        inst = two_object_instance()
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy(1),
            fault_injector=injector(
                FaultPlan(crash_rate=1.0, restart_after=None)
            ),
        )
        metrics = engine.run()
        # everyone crashed before their first probe
        assert not metrics.all_honest_satisfied
        assert metrics.satisfied_round[inst.honest_mask].tolist() == [-1, -1]
        assert metrics.halted_round[inst.honest_mask].tolist() == [0, 0]
        assert metrics.probes.sum() == 0
        assert metrics.fault_info["crashes"] == 2
        assert metrics.fault_info["restarts"] == 0

    def test_restarts_rejoin_and_notify_the_strategy(self):
        inst = two_object_instance()
        spy = RestartSpyStrategy(1)
        engine = SynchronousEngine(
            inst,
            spy,
            fault_injector=injector(
                FaultPlan(crash_rate=0.5, restart_after=2), seed=3
            ),
            config=EngineConfig(max_rounds=200),
        )
        metrics = engine.run()
        # with restarts, every honest player finishes eventually
        assert metrics.all_honest_satisfied
        assert metrics.fault_info["crashes"] >= 1
        assert metrics.fault_info["restarts"] == metrics.fault_info["crashes"]
        assert len(spy.restarted) >= 1
        for round_no, players in spy.restarted:
            assert round_no >= 2 and players

    def test_all_down_rounds_idle_instead_of_ending_the_run(self):
        inst = two_object_instance(honest=(True, False, False))
        engine = SynchronousEngine(
            inst,
            FixedProbeStrategy(1),
            fault_injector=injector(
                FaultPlan(crash_rate=1.0, restart_after=3), seed=1
            ),
            config=EngineConfig(max_rounds=20, strict=False),
        )
        metrics = engine.run()
        # the lone honest player crashes every time it is up, so the run
        # alternates down-time and crashes until the budget: the engine
        # must keep ticking through all-down rounds rather than stopping
        assert metrics.rounds == 20
        assert not metrics.all_honest_satisfied
        assert metrics.fault_info["crashes"] >= 2
        assert metrics.fault_info["restarts"] >= 1


class TestNullPlanIdentity:
    def _run(self, fault_injector):
        inst = planted_instance(
            n=32, m=32, beta=0.125, alpha=0.75,
            rng=np.random.default_rng(42),
        )
        engine = SynchronousEngine(
            inst,
            DistillStrategy(),
            rng=np.random.default_rng(1),
            adversary_rng=np.random.default_rng(2),
            fault_injector=fault_injector,
        )
        metrics = engine.run()
        return metrics, engine.board

    def test_null_plan_is_bit_identical_to_no_fault_layer(self):
        clean_metrics, clean_board = self._run(None)
        null_metrics, null_board = self._run(injector(FaultPlan()))
        assert np.array_equal(clean_metrics.probes, null_metrics.probes)
        assert np.array_equal(
            clean_metrics.satisfied_round, null_metrics.satisfied_round
        )
        assert np.array_equal(
            clean_metrics.halted_round, null_metrics.halted_round
        )
        assert clean_metrics.rounds == null_metrics.rounds
        assert len(clean_board.posts()) == len(null_board.posts())
        # the only observable difference: the null injector reports its
        # (empty) realization
        assert clean_metrics.fault_info == {}
        assert null_metrics.fault_info["dropped_posts"] == 0

    def test_fault_realization_reproducible(self):
        plan = FaultPlan(post_loss_rate=0.3, crash_rate=0.1,
                         restart_after=2)
        a, _ = self._run(injector(plan, seed=9))
        b, _ = self._run(injector(plan, seed=9))
        assert a.fault_info == b.fault_info
        assert np.array_equal(a.probes, b.probes)
        assert a.rounds == b.rounds


class TestObservationNoise:
    def test_noise_perturbs_observed_values(self):
        inst = two_object_instance()

        class Recorder(FixedProbeStrategy):
            def reset(self, ctx, rng):
                super().reset(ctx, rng)
                self.seen = []

            def handle_results(self, round_no, players, objects, values):
                self.seen.extend(values.tolist())
                return super().handle_results(
                    round_no, players, objects, values
                )

        recorder = Recorder(1)
        engine = SynchronousEngine(
            inst,
            recorder,
            fault_injector=injector(
                FaultPlan(
                    observation_noise_rate=1.0, observation_noise=0.05
                )
            ),
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied  # 0.05 noise cannot flip 1.0
        assert recorder.seen
        assert all(abs(v - 1.0) <= 0.05 + 1e-12 for v in recorder.seen)
        assert any(v != 1.0 for v in recorder.seen)
