"""Tests for the declarative fault plan."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan


class TestValidation:
    def test_defaults_are_null(self):
        assert FaultPlan().is_null()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"post_loss_rate": -0.1},
            {"post_loss_rate": 1.5},
            {"post_delay_rate": -1.0},
            {"crash_rate": 2.0},
            {"observation_noise_rate": -0.01},
            {"post_loss_rate": 0.7, "post_delay_rate": 0.7},
            {"max_post_delay": 0},
            {"restart_after": 0},
            {"restart_after": -3},
            {"observation_noise": -0.5},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlan(**kwargs)

    def test_loss_plus_delay_exactly_one_is_legal(self):
        FaultPlan(post_loss_rate=0.5, post_delay_rate=0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"post_loss_rate": 0.1},
            {"post_delay_rate": 0.1},
            {"crash_rate": 0.1},
            {"observation_noise_rate": 0.1},
        ],
    )
    def test_any_nonzero_rate_is_not_null(self, kwargs):
        assert not FaultPlan(**kwargs).is_null()

    def test_parameters_without_rates_stay_null(self):
        # knobs that only matter once a rate is on don't break identity
        assert FaultPlan(max_post_delay=10, restart_after=5).is_null()

    def test_plan_is_frozen_and_hashable(self):
        plan = FaultPlan(post_loss_rate=0.2)
        with pytest.raises(Exception):
            plan.post_loss_rate = 0.3
        assert plan == FaultPlan(post_loss_rate=0.2)
        assert hash(plan) == hash(FaultPlan(post_loss_rate=0.2))
