"""Fault behavior of the asynchronous engine.

Same contract as the synchronous engine, with rates interpreted per
basic *step*: a scheduled player may crash instead of acting, votes may
be dropped or land late, and a null plan changes nothing.
"""

import numpy as np

from repro.baselines.trivial import TrivialStrategy
from repro.billboard.post import PostKind
from repro.faults import FaultInjector, FaultPlan
from repro.sim.async_engine import AsynchronousEngine, PerStepAdapter
from repro.world.generators import planted_instance


def world(n=32, beta=1 / 8, alpha=1.0, seed=3):
    return planted_instance(
        n=n, m=n, beta=beta, alpha=alpha, rng=np.random.default_rng(seed)
    )


def injector(plan, seed=0):
    return FaultInjector(plan, np.random.default_rng(seed))


class TestAsyncFaults:
    def test_total_loss_still_finishes(self):
        engine = AsynchronousEngine(
            world(),
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(1),
            fault_injector=injector(FaultPlan(post_loss_rate=1.0)),
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied
        assert engine.board.posts(kind=PostKind.VOTE) == []
        assert metrics.fault_info["dropped_posts"] > 0

    def test_permanent_crash_rate_one_fells_every_player_in_one_pass(self):
        inst = world(n=16)
        engine = AsynchronousEngine(
            inst,
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(1),
            fault_injector=injector(
                FaultPlan(crash_rate=1.0, restart_after=None)
            ),
        )
        metrics = engine.run()
        # every scheduled player crashes before its first probe
        assert not metrics.all_honest_satisfied
        assert metrics.probes.sum() == 0
        assert (metrics.satisfied_step == -1).all()
        assert metrics.steps == int(inst.honest_mask.sum())
        assert metrics.fault_info["crashes"] == int(inst.honest_mask.sum())

    def test_churn_recovers_and_counts_restarts(self):
        engine = AsynchronousEngine(
            world(n=16),
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(1),
            fault_injector=injector(
                FaultPlan(crash_rate=0.3, restart_after=4), seed=5
            ),
            max_steps=100_000,
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied
        assert metrics.fault_info["crashes"] >= 1
        assert (
            metrics.fault_info["restarts"] == metrics.fault_info["crashes"]
        )

    def test_delayed_votes_eventually_land(self):
        engine = AsynchronousEngine(
            world(n=16),
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(1),
            fault_injector=injector(
                FaultPlan(post_delay_rate=1.0, max_post_delay=2)
            ),
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied
        delivered = len(engine.board.posts(kind=PostKind.VOTE))
        assert (
            delivered + metrics.fault_info["undelivered_posts"]
            == metrics.fault_info["delayed_posts"]
        )

    def _run(self, fault_injector):
        engine = AsynchronousEngine(
            world(),
            PerStepAdapter(TrivialStrategy()),
            rng=np.random.default_rng(7),
            fault_injector=fault_injector,
        )
        return engine.run()

    def test_null_plan_is_bit_identical_to_no_fault_layer(self):
        clean = self._run(None)
        null = self._run(injector(FaultPlan()))
        assert np.array_equal(clean.probes, null.probes)
        assert np.array_equal(clean.satisfied_step, null.satisfied_step)
        assert clean.steps == null.steps
        assert clean.fault_info == {}
        assert null.fault_info["crashes"] == 0
