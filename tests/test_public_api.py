"""Contract tests for the public API surface."""

import inspect

import repro


class TestPublicSurface:
    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_no_private_names_exported(self):
        assert not any(name.startswith("_") for name in repro.__all__)

    def test_version_is_semver_ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_strategies_share_the_interface(self):
        from repro.strategies.base import Strategy

        for name in (
            "DistillStrategy",
            "DistillHPStrategy",
            "AlphaDoublingStrategy",
            "MultiVoteDistill",
            "NoLocalTestingDistill",
            "ThreePhaseStrategy",
            "TrivialStrategy",
            "AsyncEC04Strategy",
            "FullCooperationStrategy",
            "NoAdviceDistill",
            "SlanderingDistill",
        ):
            assert issubclass(getattr(repro, name), Strategy), name

    def test_adversaries_share_the_interface(self):
        from repro.adversaries.base import Adversary

        for name in (
            "SilentAdversary",
            "FloodAdversary",
            "RandomVotesAdversary",
            "SplitVoteAdversary",
            "MimicAdversary",
            "SpoofedProtocolAdversary",
            "SlanderAdversary",
            "SelfPromotionAdversary",
        ):
            assert issubclass(getattr(repro, name), Adversary), name

    def test_public_classes_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if inspect.isclass(getattr(repro, name))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, undocumented

    def test_public_functions_have_docstrings(self):
        undocumented = [
            name
            for name in repro.__all__
            if inspect.isfunction(getattr(repro, name))
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, undocumented


class TestSubpackageSurfaces:
    def test_analysis_exports_resolve(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert getattr(analysis, name) is not None

    def test_experiments_exports_resolve(self):
        import repro.experiments as experiments

        for name in experiments.__all__:
            assert getattr(experiments, name) is not None

    def test_sim_exports_resolve(self):
        import repro.sim as sim

        for name in sim.__all__:
            assert getattr(sim, name) is not None
