"""Tests for instance generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.world.generators import (
    cost_class_instance,
    explicit_instance,
    planted_instance,
    valued_instance,
)


class TestPlanted:
    def test_shapes_and_fractions(self, rng):
        inst = planted_instance(n=40, m=80, beta=0.1, alpha=0.5, rng=rng)
        assert inst.n == 40
        assert inst.m == 80
        assert inst.space.good_mask.sum() == 8
        assert inst.n_honest == 20

    def test_values_are_binary(self, rng):
        inst = planted_instance(n=10, m=20, beta=0.25, alpha=1.0, rng=rng)
        assert set(np.unique(inst.space.values)) <= {0.0, 1.0}

    def test_local_testing_supported(self, rng):
        inst = planted_instance(n=10, m=20, beta=0.25, alpha=1.0, rng=rng)
        assert inst.space.supports_local_testing
        good = inst.space.good_ids[0]
        assert inst.space.passes_local_test(int(good))

    def test_at_least_one_good(self, rng):
        inst = planted_instance(n=4, m=1000, beta=1e-9, alpha=1.0, rng=rng)
        assert inst.space.good_mask.sum() == 1

    def test_rejects_bad_beta(self, rng):
        with pytest.raises(ConfigurationError):
            planted_instance(n=4, m=8, beta=0.0, alpha=1.0, rng=rng)

    def test_good_placement_varies_with_seed(self):
        a = planted_instance(
            n=4, m=64, beta=1 / 64, alpha=1.0, rng=np.random.default_rng(1)
        )
        b = planted_instance(
            n=4, m=64, beta=1 / 64, alpha=1.0, rng=np.random.default_rng(2)
        )
        assert a.space.good_ids[0] != b.space.good_ids[0]


class TestValued:
    def test_good_set_is_top_beta(self, rng):
        inst = valued_instance(n=10, m=40, beta=0.25, alpha=0.5, rng=rng)
        values = inst.space.values
        good_values = values[inst.space.good_mask]
        bad_values = values[~inst.space.good_mask]
        assert good_values.min() >= bad_values.max()

    def test_no_local_testing(self, rng):
        inst = valued_instance(n=10, m=40, beta=0.25, alpha=0.5, rng=rng)
        assert not inst.space.supports_local_testing

    def test_good_count(self, rng):
        inst = valued_instance(n=10, m=40, beta=0.25, alpha=0.5, rng=rng)
        assert inst.space.good_mask.sum() == 10


class TestCostClass:
    def test_costs_are_powers_of_two(self, rng):
        inst = cost_class_instance(
            n=16, class_sizes=[4, 4, 4], good_class=1, alpha=0.5, rng=rng
        )
        assert np.array_equal(
            np.unique(inst.space.costs), [1.0, 2.0, 4.0]
        )

    def test_good_in_requested_class(self, rng):
        inst = cost_class_instance(
            n=16, class_sizes=[4, 4, 4], good_class=2, alpha=0.5, rng=rng
        )
        good = int(inst.space.good_ids[0])
        assert inst.space.cost_class_of(good) == 2
        assert inst.space.cheapest_good_cost == 4.0

    def test_multiple_goods(self, rng):
        inst = cost_class_instance(
            n=16,
            class_sizes=[8, 8],
            good_class=0,
            alpha=0.5,
            rng=rng,
            goods_in_class=3,
        )
        assert inst.space.good_mask.sum() == 3

    def test_rejects_bad_class_index(self, rng):
        with pytest.raises(ConfigurationError):
            cost_class_instance(
                n=4, class_sizes=[4], good_class=1, alpha=0.5, rng=rng
            )

    def test_rejects_overfull_goods(self, rng):
        with pytest.raises(ConfigurationError):
            cost_class_instance(
                n=4,
                class_sizes=[2],
                good_class=0,
                alpha=0.5,
                rng=rng,
                goods_in_class=3,
            )

    def test_rejects_empty_spec(self, rng):
        with pytest.raises(ConfigurationError):
            cost_class_instance(
                n=4, class_sizes=[], good_class=0, alpha=0.5, rng=rng
            )


class TestExplicit:
    def test_wraps_arrays(self):
        inst = explicit_instance(
            values=np.array([1.0, 0.0]),
            good_mask=np.array([True, False]),
            honest_mask=np.array([True, True, False]),
            good_threshold=0.5,
        )
        assert inst.n == 3
        assert inst.m == 2
        assert inst.space.unit_costs
