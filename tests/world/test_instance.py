"""Tests for Instance and role assignment."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.world.instance import Instance, roles_from_alpha
from repro.world.objects import ObjectSpace


def space():
    return ObjectSpace(
        np.array([1.0, 0.0]), np.ones(2), np.array([True, False]), 0.5
    )


class TestInstance:
    def test_counts_and_fractions(self):
        inst = Instance(space(), np.array([True, True, False, False]))
        assert inst.n == 4
        assert inst.alpha == 0.5
        assert inst.n_honest == 2
        assert inst.n_dishonest == 2

    def test_ids_partition_players(self):
        inst = Instance(space(), np.array([True, False, True]))
        assert np.array_equal(inst.honest_ids, [0, 2])
        assert np.array_equal(inst.dishonest_ids, [1])

    def test_beta_delegates_to_space(self):
        inst = Instance(space(), np.array([True]))
        assert inst.beta == 0.5

    def test_rejects_all_dishonest(self):
        with pytest.raises(ConfigurationError):
            Instance(space(), np.array([False, False]))

    def test_rejects_empty_mask(self):
        with pytest.raises(ConfigurationError):
            Instance(space(), np.array([], dtype=bool))

    def test_describe_mentions_parameters(self):
        inst = Instance(space(), np.array([True, False]))
        text = inst.describe()
        assert "alpha=0.5" in text
        assert "n=2" in text


class TestRolesFromAlpha:
    def test_count_rounds(self, rng):
        mask = roles_from_alpha(10, 0.75, rng=rng)
        assert mask.sum() == 8  # round(7.5)

    def test_at_least_one_honest(self, rng):
        mask = roles_from_alpha(10, 0.01, rng=rng)
        assert mask.sum() == 1

    def test_alpha_one_all_honest(self, rng):
        assert roles_from_alpha(5, 1.0, rng=rng).all()

    def test_unshuffled_prefix(self):
        mask = roles_from_alpha(6, 0.5, shuffle=False)
        assert np.array_equal(mask, [1, 1, 1, 0, 0, 0])

    def test_shuffle_requires_rng(self):
        with pytest.raises(ConfigurationError):
            roles_from_alpha(6, 0.5, shuffle=True)

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ConfigurationError):
            roles_from_alpha(6, 0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            roles_from_alpha(6, 1.5, rng=rng)

    def test_rejects_bad_n(self, rng):
        with pytest.raises(ConfigurationError):
            roles_from_alpha(0, 0.5, rng=rng)
