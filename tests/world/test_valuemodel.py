"""Tests for per-player observation models."""

import numpy as np
import pytest

from repro.world.objects import ObjectSpace
from repro.world.valuemodel import (
    NoisyValueModel,
    SpoofedValueModel,
    TrueValueModel,
    constant_spoof_table,
)


@pytest.fixture
def space():
    return ObjectSpace(
        np.array([1.0, 0.0, 0.0, 1.0]),
        np.ones(4),
        np.array([True, False, False, True]),
        good_threshold=0.5,
    )


class TestTrueModel:
    def test_observe_single(self, space):
        model = TrueValueModel(space)
        assert model.observe(0, 0) == 1.0
        assert model.observe(5, 1) == 0.0

    def test_observe_many_vectorized(self, space):
        model = TrueValueModel(space)
        out = model.observe_many(np.array([0, 1]), np.array([0, 1]))
        assert np.array_equal(out, [1.0, 0.0])


class TestSpoofedModel:
    def test_spoofed_player_sees_table(self, space):
        table = constant_spoof_table(space, np.array([1]))
        model = SpoofedValueModel(space, {2: table})
        assert model.observe(2, 1) == 1.0
        assert model.observe(2, 0) == 0.0

    def test_unspoofed_player_sees_truth(self, space):
        model = SpoofedValueModel(space, {2: constant_spoof_table(space, [1])})
        assert model.observe(0, 1) == 0.0
        assert model.observe(0, 0) == 1.0

    def test_observe_many_mixes_models(self, space):
        table = constant_spoof_table(space, np.array([1]))
        model = SpoofedValueModel(space, {2: table})
        out = model.observe_many(np.array([0, 2]), np.array([1, 1]))
        assert np.array_equal(out, [0.0, 1.0])

    def test_rejects_bad_table_shape(self, space):
        with pytest.raises(ValueError):
            SpoofedValueModel(space, {0: np.zeros(3)})


class TestNoisyModel:
    def test_zero_rate_is_truth(self, space, rng):
        model = NoisyValueModel(space, rng, error_rate=0.0, lure_value=1.0)
        objs = np.array([0, 1, 2, 3])
        out = model.observe_many(np.zeros(4, dtype=int), objs)
        assert np.array_equal(out, space.values[objs])

    def test_good_objects_never_lured(self, space, rng):
        model = NoisyValueModel(space, rng, error_rate=0.99, lure_value=7.0)
        for _ in range(50):
            assert model.observe(0, 0) == 1.0

    def test_bad_objects_sometimes_lured(self, space, rng):
        model = NoisyValueModel(space, rng, error_rate=0.5, lure_value=7.0)
        out = [model.observe(0, 1) for _ in range(200)]
        assert 7.0 in out
        assert 0.0 in out

    def test_rejects_bad_rate(self, space, rng):
        with pytest.raises(ValueError):
            NoisyValueModel(space, rng, error_rate=1.0, lure_value=1.0)

    def test_observe_many_rate_approximate(self, space, rng):
        model = NoisyValueModel(space, rng, error_rate=0.3, lure_value=9.0)
        objs = np.full(4000, 1)
        out = model.observe_many(np.zeros(4000, dtype=int), objs)
        rate = float((out == 9.0).mean())
        assert 0.2 < rate < 0.4


class TestSpoofTableHelper:
    def test_high_low_values(self, space):
        table = constant_spoof_table(space, [0, 2], high=5.0, low=1.0)
        assert table[0] == 5.0
        assert table[2] == 5.0
        assert table[1] == 1.0
