"""Tests for ObjectSpace."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.world.objects import ObjectSpace


def make_space(values=None, costs=None, good=None, threshold=0.5):
    if values is None:
        values = np.array([1.0, 0.0, 0.0, 1.0])
    if costs is None:
        costs = np.ones_like(values)
    if good is None:
        good = np.asarray(values) >= 0.5
    return ObjectSpace(values, costs, good, good_threshold=threshold)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            make_space(values=np.array([]), good=np.array([], dtype=bool))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            ObjectSpace(
                np.ones(3), np.ones(4), np.ones(3, dtype=bool), 0.5
            )

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError):
            make_space(values=np.array([-1.0, 1.0]))

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            make_space(costs=np.array([1.0, -1.0, 1.0, 1.0]))

    def test_rejects_no_good_objects(self):
        with pytest.raises(ConfigurationError):
            make_space(
                values=np.zeros(4), good=np.zeros(4, dtype=bool)
            )

    def test_rejects_inconsistent_threshold(self):
        with pytest.raises(ConfigurationError):
            ObjectSpace(
                np.array([1.0, 0.0]),
                np.ones(2),
                np.array([True, True]),  # claims both good
                good_threshold=0.5,
            )

    def test_threshold_none_skips_consistency(self):
        space = ObjectSpace(
            np.array([0.9, 0.1]),
            np.ones(2),
            np.array([True, False]),
            good_threshold=None,
        )
        assert not space.supports_local_testing


class TestProperties:
    def test_m_and_beta(self):
        space = make_space()
        assert space.m == 4
        assert space.beta == 0.5

    def test_good_ids_sorted(self):
        space = make_space()
        assert np.array_equal(space.good_ids, [0, 3])

    def test_unit_costs_flag(self):
        assert make_space().unit_costs
        assert not make_space(costs=np.array([1.0, 2.0, 1.0, 1.0])).unit_costs

    def test_cheapest_good_cost(self):
        space = make_space(costs=np.array([8.0, 1.0, 1.0, 2.0]))
        assert space.cheapest_good_cost == 2.0

    def test_is_good_ground_truth(self):
        space = make_space()
        assert space.is_good(0)
        assert not space.is_good(1)

    def test_local_test_matches_threshold(self):
        space = make_space()
        assert space.passes_local_test(3)
        assert not space.passes_local_test(2)

    def test_local_test_without_threshold_raises(self):
        space = ObjectSpace(
            np.array([0.9, 0.1]),
            np.ones(2),
            np.array([True, False]),
            good_threshold=None,
        )
        with pytest.raises(ConfigurationError):
            space.passes_local_test(0)


class TestCostClasses:
    def space(self):
        return make_space(costs=np.array([1.0, 2.0, 3.5, 4.0]))

    def test_class_of(self):
        space = self.space()
        assert space.cost_class_of(0) == 0
        assert space.cost_class_of(1) == 1
        assert space.cost_class_of(2) == 1
        assert space.cost_class_of(3) == 2

    def test_class_members(self):
        space = self.space()
        assert np.array_equal(space.cost_class_members(1), [1, 2])

    def test_n_cost_classes(self):
        assert self.space().n_cost_classes() == 3

    def test_sub_unit_cost_rejected(self):
        space = make_space(costs=np.array([0.5, 1.0, 1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            space.cost_class_of(0)
        with pytest.raises(ConfigurationError):
            space.n_cost_classes()


class TestTopBeta:
    def test_top_beta_mask_counts(self):
        space = ObjectSpace(
            np.array([0.9, 0.5, 0.7, 0.1]),
            np.ones(4),
            np.array([True, False, True, False]),
            good_threshold=None,
        )
        mask = space.top_beta_mask(0.5)
        assert mask.sum() == 2
        assert mask[0] and mask[2]

    def test_top_beta_at_least_one(self):
        space = make_space()
        assert space.top_beta_mask(1e-9).sum() == 1

    def test_top_beta_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_space().top_beta_mask(0.0)
