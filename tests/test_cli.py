"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "A4" in out
        assert "distill" in out
        assert "split-vote" in out


class TestExperiment:
    def test_runs_smoke_experiment(self, capsys):
        code = main(["experiment", "E1", "--scale", "smoke", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E1" in out
        assert "PASS" in out

    def test_writes_out_file(self, tmp_path, capsys):
        path = tmp_path / "e1.txt"
        main([
            "experiment", "E1", "--scale", "smoke", "--out", str(path)
        ])
        capsys.readouterr()
        assert "E1" in path.read_text()

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_quick_cell(self, capsys):
        code = main([
            "run", "--n", "64", "--alpha", "0.75", "--trials", "4",
            "--adversary", "flood",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean individual rounds" in out
        assert "success rate" in out

    def test_no_adversary(self, capsys):
        code = main([
            "run", "--n", "64", "--trials", "4", "--adversary", "none"
        ])
        assert code == 0
        capsys.readouterr()

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--strategy", "nope"])


class TestGauntlet:
    def test_all_adversaries_reported(self, capsys):
        code = main([
            "gauntlet", "--n", "64", "--alpha", "0.5", "--trials", "3"
        ])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("silent", "flood", "split-vote", "mimic"):
            assert name in out


class TestBounds:
    def test_prints_theory_card(self, capsys):
        assert main(["bounds", "--n", "256", "--alpha", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "theory card" in out
        assert "Thm 4" in out

    def test_alpha_one_renders_inf_delta(self, capsys):
        assert main(["bounds", "--alpha", "1.0"]) == 0
        assert "inf" in capsys.readouterr().out


class TestShow:
    def test_renders_dashboard(self, capsys):
        code = main(["show", "--n", "64", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "satisfaction curve" in out
        assert "billboard timeline" in out

    def test_no_adversary(self, capsys):
        code = main(["show", "--n", "64", "--adversary", "none"])
        assert code == 0
        capsys.readouterr()


class TestReport:
    def test_report_to_stdout(self, capsys):
        code = main(["report", "--ids", "E1", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# Reproduction report" in out
        assert "## E1" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main([
            "report", "--ids", "E1", "--scale", "smoke",
            "--out", str(path),
        ])
        capsys.readouterr()
        assert code == 0
        assert "## E1" in path.read_text()


class TestObsFlag:
    def test_run_writes_observation_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main([
            "run", "--n", "64", "--trials", "4", "--adversary", "none",
            "--obs-out", str(path),
        ])
        capsys.readouterr()
        assert code == 0
        from repro.obs import load_observations

        data = load_observations(str(path))
        assert data.manifest is not None
        assert data.counters["trial.completed"] == 4
        assert "runner.run_trials" in data.timers

    def test_unwritable_obs_out_is_clean_error(self, capsys):
        code = main([
            "run", "--n", "64", "--trials", "2", "--adversary", "none",
            "--obs-out", "/no/such/dir/run.jsonl",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err

    def test_obs_flag_leaves_results_unchanged(self, tmp_path, capsys):
        plain = main([
            "run", "--n", "64", "--trials", "4", "--adversary", "none",
            "--seed", "5",
        ])
        first = capsys.readouterr().out
        observed = main([
            "run", "--n", "64", "--trials", "4", "--adversary", "none",
            "--seed", "5", "--obs-out", str(tmp_path / "o.jsonl"),
        ])
        second = capsys.readouterr().out
        assert plain == observed == 0
        assert first == second


class TestObsCommand:
    def _observation_file(self, tmp_path, capsys, seed="3"):
        path = tmp_path / f"obs-{seed}.jsonl"
        assert main([
            "run", "--n", "64", "--trials", "4", "--adversary", "none",
            "--seed", seed, "--obs-out", str(path),
        ]) == 0
        capsys.readouterr()
        return str(path)

    def test_summary_text(self, tmp_path, capsys):
        path = self._observation_file(tmp_path, capsys)
        assert main(["obs", "summary", path]) == 0
        out = capsys.readouterr().out
        assert "config_hash" in out
        assert "phase engine:" in out
        assert "engine.rounds" in out

    def test_summary_json(self, tmp_path, capsys):
        import json

        path = self._observation_file(tmp_path, capsys)
        assert main(["obs", "summary", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["n_trials"] == 4
        assert "engine" in payload["phases"]

    def test_export_normalizes_jsonl(self, tmp_path, capsys):
        import json

        path = self._observation_file(tmp_path, capsys)
        assert main(["obs", "export", path]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        kinds = [json.loads(line)["type"] for line in lines]
        assert kinds[0] == "manifest"
        assert "counter" in kinds

    def test_diff_same_file_exits_zero(self, tmp_path, capsys):
        path = self._observation_file(tmp_path, capsys)
        assert main(["obs", "diff", path, path]) == 0
        assert "match" in capsys.readouterr().out

    def test_diff_different_runs_exits_one(self, tmp_path, capsys):
        path_a = self._observation_file(tmp_path, capsys, seed="3")
        path_b = self._observation_file(tmp_path, capsys, seed="4")
        assert main(["obs", "diff", path_a, path_b]) == 1
        assert "seed_entropy" in capsys.readouterr().out

    def test_diff_across_backends_exits_zero_with_note(self, tmp_path, capsys):
        """Same seed on different executor backends: identical results,
        identical identity — the backend difference (manifest field and
        exec.* counters alike) is a note, not a verdict."""
        path_serial = tmp_path / "serial.jsonl"
        path_socket = tmp_path / "socket.jsonl"
        base = [
            "run", "--n", "64", "--trials", "4", "--adversary", "none",
            "--seed", "3",
        ]
        assert main(
            base + ["--executor", "serial", "--obs-out", str(path_serial)]
        ) == 0
        assert main(
            base + ["--executor", "socket", "--obs-out", str(path_socket)]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "diff", str(path_serial), str(path_socket)]) == 0
        out = capsys.readouterr().out
        assert "match" in out
        assert "note: manifest.executor" in out
        assert "note: counter exec.workers" in out

    def test_missing_file_is_clean_error(self, capsys):
        assert main(["obs", "summary", "/no/such/file.jsonl"]) == 2
        assert "error" in capsys.readouterr().err
