"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out
        assert "A4" in out
        assert "distill" in out
        assert "split-vote" in out


class TestExperiment:
    def test_runs_smoke_experiment(self, capsys):
        code = main(["experiment", "E1", "--scale", "smoke", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E1" in out
        assert "PASS" in out

    def test_writes_out_file(self, tmp_path, capsys):
        path = tmp_path / "e1.txt"
        main([
            "experiment", "E1", "--scale", "smoke", "--out", str(path)
        ])
        capsys.readouterr()
        assert "E1" in path.read_text()

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_quick_cell(self, capsys):
        code = main([
            "run", "--n", "64", "--alpha", "0.75", "--trials", "4",
            "--adversary", "flood",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean individual rounds" in out
        assert "success rate" in out

    def test_no_adversary(self, capsys):
        code = main([
            "run", "--n", "64", "--trials", "4", "--adversary", "none"
        ])
        assert code == 0
        capsys.readouterr()

    def test_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["run", "--strategy", "nope"])


class TestGauntlet:
    def test_all_adversaries_reported(self, capsys):
        code = main([
            "gauntlet", "--n", "64", "--alpha", "0.5", "--trials", "3"
        ])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("silent", "flood", "split-vote", "mimic"):
            assert name in out


class TestBounds:
    def test_prints_theory_card(self, capsys):
        assert main(["bounds", "--n", "256", "--alpha", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "theory card" in out
        assert "Thm 4" in out

    def test_alpha_one_renders_inf_delta(self, capsys):
        assert main(["bounds", "--alpha", "1.0"]) == 0
        assert "inf" in capsys.readouterr().out


class TestShow:
    def test_renders_dashboard(self, capsys):
        code = main(["show", "--n", "64", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "satisfaction curve" in out
        assert "billboard timeline" in out

    def test_no_adversary(self, capsys):
        code = main(["show", "--n", "64", "--adversary", "none"])
        assert code == 0
        capsys.readouterr()


class TestReport:
    def test_report_to_stdout(self, capsys):
        code = main(["report", "--ids", "E1", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# Reproduction report" in out
        assert "## E1" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main([
            "report", "--ids", "E1", "--scale", "smoke",
            "--out", str(path),
        ])
        capsys.readouterr()
        assert code == 0
        assert "## E1" in path.read_text()
