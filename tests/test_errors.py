"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AdversaryViolationError,
    BillboardError,
    BudgetExceededError,
    ConfigurationError,
    InvalidPostError,
    ReproError,
    SimulationError,
    TamperError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            ConfigurationError,
            BillboardError,
            TamperError,
            InvalidPostError,
            SimulationError,
            BudgetExceededError,
            AdversaryViolationError,
        ):
            assert issubclass(exc, ReproError)

    def test_billboard_family(self):
        assert issubclass(TamperError, BillboardError)
        assert issubclass(InvalidPostError, BillboardError)

    def test_simulation_family(self):
        assert issubclass(BudgetExceededError, SimulationError)
        assert issubclass(AdversaryViolationError, SimulationError)

    def test_catching_the_base_works(self):
        with pytest.raises(ReproError):
            raise TamperError("rewrite attempt")

    def test_library_errors_are_not_builtin_ones(self):
        """Catching ReproError must not swallow programming errors."""
        assert not issubclass(ReproError, (ValueError, TypeError))
