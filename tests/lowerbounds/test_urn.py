"""Tests for the Theorem 1 urn machinery."""

import pytest

from repro.errors import ConfigurationError
from repro.lowerbounds.urn import (
    expected_draws_until_good,
    simulate_urn_rounds,
    thm1_individual_lower_bound,
)


class TestExactExpectation:
    def test_known_values(self):
        # all balls good -> first draw wins
        assert expected_draws_until_good(10, 10) == pytest.approx(11 / 11)
        # one good among m: (m+1)/2
        assert expected_draws_until_good(9, 1) == pytest.approx(5.0)

    def test_monotone_in_goods(self):
        values = [expected_draws_until_good(100, g) for g in (1, 10, 50)]
        assert values[0] > values[1] > values[2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_draws_until_good(10, 0)
        with pytest.raises(ConfigurationError):
            expected_draws_until_good(10, 11)


class TestSimulation:
    def test_matches_exact_expectation(self, rng):
        m, g = 64, 4
        rounds = simulate_urn_rounds(m, g, probes_per_round=1, rng=rng,
                                     trials=4000)
        expected = expected_draws_until_good(m, g)
        assert rounds.mean() == pytest.approx(expected, rel=0.1)

    def test_parallelism_divides_rounds(self, rng):
        m, g = 256, 4
        serial = simulate_urn_rounds(m, g, 1, rng, trials=2000).mean()
        parallel = simulate_urn_rounds(m, g, 16, rng, trials=2000).mean()
        assert parallel < serial / 8

    def test_rounds_at_least_one(self, rng):
        rounds = simulate_urn_rounds(8, 8, 100, rng, trials=50)
        assert (rounds >= 1).all()

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_urn_rounds(8, 0, 1, rng)
        with pytest.raises(ConfigurationError):
            simulate_urn_rounds(8, 1, 0, rng)


class TestBound:
    def test_shape_in_alpha_beta_n(self):
        base = thm1_individual_lower_bound(64, 64, 0.5, 1 / 8)
        assert thm1_individual_lower_bound(128, 128, 0.5, 1 / 8) < base
        assert thm1_individual_lower_bound(64, 64, 0.25, 1 / 8) > base
        assert thm1_individual_lower_bound(64, 64, 0.5, 1 / 16) > base

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            thm1_individual_lower_bound(64, 64, 0.0, 0.5)
