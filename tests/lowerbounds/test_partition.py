"""Tests for the Theorem 2 partition construction."""

import numpy as np
import pytest

from repro.baselines.trivial import TrivialStrategy
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.lowerbounds.partition import (
    PartitionConstruction,
    evaluate_partition_bound,
)


@pytest.fixture
def construction():
    # n = m = 48, alpha = beta = 1/4 -> 4 groups of 12, 4 classes of 12, B=4
    return PartitionConstruction(n=48, m=48, alpha=0.25, beta=0.25)


class TestConstruction:
    def test_b_is_min(self, construction):
        assert construction.B == 4

    def test_asymmetric_b(self):
        c = PartitionConstruction(n=48, m=48, alpha=0.25, beta=1 / 12)
        assert c.B == 4
        c = PartitionConstruction(n=48, m=48, alpha=1 / 12, beta=0.25)
        assert c.B == 4

    def test_groups_are_disjoint_and_cover(self, construction):
        seen = set()
        for k in range(1, construction.n_groups + 1):
            members = set(construction.group_members(k).tolist())
            assert not (members & seen)
            seen |= members
        assert 0 not in seen  # player 0 stands apart

    def test_classes_partition_objects(self, construction):
        seen = set()
        for k in range(1, construction.n_classes + 1):
            members = set(construction.class_members(k).tolist())
            assert not (members & seen)
            seen |= members
        assert seen == set(range(48))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionConstruction(n=4, m=48, alpha=0.1, beta=0.25)

    def test_index_bounds(self, construction):
        with pytest.raises(ConfigurationError):
            construction.group_members(0)
        with pytest.raises(ConfigurationError):
            construction.class_members(5)
        with pytest.raises(ConfigurationError):
            construction.build_instance(5)


class TestSpoofTables:
    def test_only_first_b_groups_report(self):
        c = PartitionConstruction(n=48, m=48, alpha=0.25, beta=0.5)
        tables = c.spoof_tables()  # B = 2 -> only groups 1, 2 report
        reporting = set(tables)
        expected = set(c.group_members(1)) | set(c.group_members(2))
        assert reporting == {int(p) for p in expected}

    def test_tables_mark_their_class(self, construction):
        tables = construction.spoof_tables()
        for k in range(1, construction.B + 1):
            for player in construction.group_members(k):
                table = tables[int(player)]
                marked = np.flatnonzero(table == 1.0)
                assert np.array_equal(
                    marked, construction.class_members(k)
                )

    def test_tables_are_instance_independent(self, construction):
        """The proof's key property: reports do not depend on k."""
        t1 = construction.spoof_tables()
        t2 = construction.spoof_tables()
        for player in t1:
            assert np.array_equal(t1[player], t2[player])


class TestInstances:
    def test_instance_k_has_class_k_good(self, construction):
        inst = construction.build_instance(3)
        good = np.flatnonzero(inst.space.good_mask)
        assert np.array_equal(good, construction.class_members(3))

    def test_honest_set_is_group_k_plus_zero(self, construction):
        inst = construction.build_instance(2)
        honest = set(np.flatnonzero(inst.honest_mask).tolist())
        assert honest == {0} | set(
            int(p) for p in construction.group_members(2)
        )

    def test_symmetry_of_honest_reports(self, construction):
        """In instance k the honest group's truthful reports coincide
        with its scripted table — honesty is indistinguishable."""
        inst = construction.build_instance(1)
        tables = construction.spoof_tables()
        for player in construction.group_members(1):
            assert np.array_equal(
                tables[int(player)], inst.space.values
            )


class TestEvaluation:
    def test_bound_binds_on_trivial(self, construction):
        out = evaluate_partition_bound(
            TrivialStrategy, construction, trials=12, seed=1
        )
        assert out["mean_probes_player0"] >= 0.7 * out["bound_floor"]

    def test_bound_binds_on_distill(self, construction):
        out = evaluate_partition_bound(
            DistillStrategy, construction, trials=12, seed=2
        )
        assert out["mean_probes_player0"] >= 0.7 * out["bound_floor"]
        assert out["B"] == 4.0
