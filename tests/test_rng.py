"""Tests for randomness plumbing."""

import numpy as np

from repro.rng import (
    RngFactory,
    choice_or_none,
    make_generator,
    make_seed_sequence,
)


class TestSeeding:
    def test_same_seed_same_stream(self):
        a = make_generator(42).random(5)
        b = make_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_sequence_seed_accepted(self):
        gen = make_generator([1, 2, 3])
        assert 0 <= gen.random() < 1

    def test_seed_sequence_passthrough(self):
        seq = np.random.SeedSequence(5)
        assert make_seed_sequence(seq) is seq


class TestFactory:
    def test_spawn_order_determines_streams(self):
        f1 = RngFactory.from_seed(7)
        f2 = RngFactory.from_seed(7)
        assert np.array_equal(
            f1.spawn_generator().random(4), f2.spawn_generator().random(4)
        )

    def test_spawned_streams_differ(self):
        factory = RngFactory.from_seed(7)
        a = factory.spawn_generator().random(4)
        b = factory.spawn_generator().random(4)
        assert not np.array_equal(a, b)

    def test_child_factories_independent(self):
        factory = RngFactory.from_seed(3)
        kids = list(factory.trial_factories(3))
        streams = [k.spawn_generator().random(4) for k in kids]
        assert not np.array_equal(streams[0], streams[1])
        assert not np.array_equal(streams[1], streams[2])

    def test_trial_factories_reproducible(self):
        def streams(seed):
            factory = RngFactory.from_seed(seed)
            return [
                k.spawn_generator().random(3)
                for k in factory.trial_factories(2)
            ]

        a, b = streams(11), streams(11)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestChoiceOrNone:
    def test_empty_pool(self, rng):
        assert choice_or_none(rng, np.array([], dtype=np.int64)) is None

    def test_single_element(self, rng):
        assert choice_or_none(rng, np.array([7])) == 7

    def test_uniformity_rough(self, rng):
        pool = np.array([0, 1])
        picks = [choice_or_none(rng, pool) for _ in range(400)]
        ones = sum(picks)
        assert 120 < ones < 280
