"""End-to-end scenario tests across the public API."""

import numpy as np

import repro
from repro import (
    AlphaDoublingStrategy,
    DistillHPStrategy,
    DistillStrategy,
    EngineConfig,
    MultiVoteDistill,
    NoLocalTestingDistill,
    SplitVoteAdversary,
    SynchronousEngine,
    VoteMode,
    cost_class_instance,
    planted_instance,
    run_multicost,
    run_trials,
    valued_instance,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_scenario(self):
        rng = np.random.default_rng(0)
        instance = planted_instance(
            n=256, m=256, beta=1 / 16, alpha=0.75, rng=rng
        )
        engine = SynchronousEngine(
            instance,
            DistillStrategy(),
            adversary=SplitVoteAdversary(),
            rng=np.random.default_rng(1),
            adversary_rng=np.random.default_rng(2),
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied


class TestScenarios:
    def test_every_variant_solves_the_same_world(self):
        """All local-testing variants find the good objects on one world
        family, under attack."""
        for strategy_factory in (
            DistillStrategy,
            DistillHPStrategy,
            AlphaDoublingStrategy,
        ):
            res = run_trials(
                lambda rng: planted_instance(
                    n=96, m=96, beta=1 / 8, alpha=0.5, rng=rng
                ),
                strategy_factory,
                make_adversary=SplitVoteAdversary,
                n_trials=4,
                seed=13,
            )
            assert res.success_rate() == 1.0, strategy_factory

    def test_marketplace_multicost_scenario(self):
        rng = np.random.default_rng(5)
        instance = cost_class_instance(
            n=128,
            class_sizes=[32, 32, 32],
            good_class=1,
            alpha=0.75,
            rng=rng,
        )
        outcome = run_multicost(instance, rng=np.random.default_rng(6))
        assert outcome.metrics.all_honest_satisfied
        assert outcome.q0 == 2.0

    def test_recommendation_scenario_without_local_testing(self):
        rng = np.random.default_rng(7)
        instance = valued_instance(
            n=128, m=128, beta=1 / 8, alpha=0.6, rng=rng
        )
        engine = SynchronousEngine(
            instance,
            NoLocalTestingDistill(),
            rng=np.random.default_rng(8),
            config=EngineConfig(vote_mode=VoteMode.MUTABLE),
        )
        metrics = engine.run()
        assert metrics.satisfied_fraction >= 0.95

    def test_multivote_scenario(self):
        rng = np.random.default_rng(9)
        instance = planted_instance(
            n=96, m=96, beta=1 / 8, alpha=0.7, rng=rng
        )
        engine = SynchronousEngine(
            instance,
            MultiVoteDistill(f=2, error_rate=0.05),
            adversary=SplitVoteAdversary(votes_per_identity=2),
            rng=np.random.default_rng(10),
            adversary_rng=np.random.default_rng(11),
            config=EngineConfig(
                vote_mode=VoteMode.MULTI, max_votes_per_player=2
            ),
        )
        assert engine.run().all_honest_satisfied
