"""Every example script runs end-to-end at small scale."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"
)

CASES = {
    "quickstart.py": ["--n", "64", "--seed", "1"],
    "marketplace_pricing.py": [
        "--n", "64", "--classes", "3", "--class-size", "16",
        "--good-class", "1", "--seed", "1",
    ],
    "recommendation_system.py": ["--n", "64", "--seed", "1"],
    "adversary_gauntlet.py": ["--n", "64", "--trials", "2", "--seed", "1"],
    "scaling_study.py": [
        "--sizes", "32", "64", "--trials", "2", "--seed", "1",
    ],
    "async_vs_sync.py": ["--n", "64", "--seed", "1"],
    "slander_study.py": ["--n", "64", "--trials", "2", "--seed", "1"],
    "paper_tour.py": ["--only", "E1", "--seed", "1"],
}


def run_example(name, args):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_example_runs(name):
    result = run_example(name, CASES[name])
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), f"{name} printed nothing"


def test_examples_directory_is_fully_covered():
    """Every example script has a smoke case above."""
    scripts = {
        f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
    }
    assert scripts == set(CASES)


def test_quickstart_reports_success():
    result = run_example("quickstart.py", CASES["quickstart.py"])
    assert "found a good object: True" in result.stdout
