"""Property-based whole-run invariants (hypothesis).

Each property runs a complete DISTILL simulation with hypothesis-chosen
world parameters and adversary, then audits the billboard and metrics
against the model's rules.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.registry import make_adversary
from repro.core.distill import DistillStrategy
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import planted_instance

world_params = st.tuples(
    st.sampled_from([16, 32, 64]),          # n (= m)
    st.sampled_from([1, 2, 8]),             # good objects
    st.floats(min_value=0.15, max_value=1.0),  # alpha
    st.sampled_from(["silent", "flood", "split-vote", "mimic"]),
    st.integers(min_value=0, max_value=10 ** 6),  # seed
)


def run_world(n, n_good, alpha, adversary_name, seed):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=n, m=n, beta=n_good / n, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    engine = SynchronousEngine(
        inst,
        DistillStrategy(),
        adversary=make_adversary(adversary_name),
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(max_rounds=100_000),
    )
    return inst, engine, engine.run()


@given(world_params)
@settings(max_examples=25, deadline=None)
def test_run_terminates_and_everyone_finds_good(params):
    _inst, _engine, metrics = run_world(*params)
    assert metrics.all_honest_satisfied


@given(world_params)
@settings(max_examples=25, deadline=None)
def test_dishonest_vote_budget(params):
    inst, engine, _metrics = run_world(*params)
    ledger = engine.board.ledger
    assert ledger.votes_cast_by(inst.dishonest_ids) <= inst.n_dishonest


@given(world_params)
@settings(max_examples=25, deadline=None)
def test_honest_votes_truthful_and_single(params):
    inst, engine, _metrics = run_world(*params)
    for player in inst.honest_ids:
        votes = engine.board.ledger.votes_of(int(player))
        assert len(votes) <= 1
        for obj in votes:
            assert inst.space.good_mask[obj]


@given(world_params)
@settings(max_examples=25, deadline=None)
def test_unit_cost_paid_equals_probes(params):
    inst, _engine, metrics = run_world(*params)
    assert np.array_equal(metrics.paid, metrics.probes.astype(float))


@given(world_params)
@settings(max_examples=25, deadline=None)
def test_satisfaction_is_permanent_and_consistent(params):
    inst, _engine, metrics = run_world(*params)
    honest = inst.honest_mask
    sat = metrics.satisfied_round[honest]
    halted = metrics.halted_round[honest]
    # with local testing, players halt exactly when satisfied
    assert np.array_equal(sat, halted)
    assert (sat < metrics.rounds).all()


@given(world_params)
@settings(max_examples=15, deadline=None)
def test_board_round_stamps_monotonic(params):
    _inst, engine, _metrics = run_world(*params)
    rounds = [p.round_no for p in engine.board]
    assert rounds == sorted(rounds)
