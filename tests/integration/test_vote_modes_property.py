"""Whole-run properties under the MULTI and MUTABLE vote modes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.votes import VoteMode
from repro.core.multivote import MultiVoteDistill
from repro.core.no_local_testing import NoLocalTestingDistill
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import planted_instance, valued_instance

multi_params = st.tuples(
    st.integers(min_value=1, max_value=4),                   # f
    st.sampled_from([0.0, 0.05, 0.15]),                      # error rate
    st.floats(min_value=0.3, max_value=0.9),                 # alpha
    st.integers(min_value=0, max_value=10 ** 6),             # seed
)


def run_multi(f, error_rate, alpha, seed):
    if error_rate > 0 and f < 2:
        f = 2
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=48, m=48, beta=1 / 8, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    engine = SynchronousEngine(
        inst,
        MultiVoteDistill(f=f, error_rate=error_rate),
        adversary=SplitVoteAdversary(votes_per_identity=f),
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(
            vote_mode=VoteMode.MULTI,
            max_votes_per_player=f,
            max_rounds=100_000,
        ),
    )
    return inst, engine, engine.run()


@given(multi_params)
@settings(max_examples=20, deadline=None)
def test_multi_mode_budget_is_f_per_player(params):
    f, error_rate, alpha, seed = params
    f = max(f, 2) if error_rate > 0 else f
    inst, engine, _metrics = run_multi(f, error_rate, alpha, seed)
    ledger = engine.board.ledger
    for player in range(inst.n):
        assert len(ledger.votes_of(player)) <= f


@given(multi_params)
@settings(max_examples=20, deadline=None)
def test_multi_mode_everyone_succeeds(params):
    _inst, _engine, metrics = run_multi(*params)
    assert metrics.all_honest_satisfied


@given(multi_params)
@settings(max_examples=20, deadline=None)
def test_multi_mode_satisfied_players_hold_a_good_vote(params):
    inst, engine, metrics = run_multi(*params)
    ledger = engine.board.ledger
    for player in inst.honest_ids:
        if metrics.satisfied_round[player] >= 0:
            targets = ledger.votes_of(int(player))
            assert any(inst.space.good_mask[obj] for obj in targets)


mutable_params = st.tuples(
    st.floats(min_value=0.3, max_value=0.9),   # alpha
    st.sampled_from([1 / 16, 1 / 8]),          # beta
    st.integers(min_value=0, max_value=10 ** 6),
)


def run_mutable(alpha, beta, seed):
    world_ss, honest_ss = np.random.SeedSequence(seed).spawn(2)
    inst = valued_instance(
        n=48, m=48, beta=beta, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    engine = SynchronousEngine(
        inst,
        NoLocalTestingDistill(),
        rng=np.random.default_rng(honest_ss),
        config=EngineConfig(
            vote_mode=VoteMode.MUTABLE, max_rounds=100_000
        ),
    )
    return inst, engine, engine.run()


@given(mutable_params)
@settings(max_examples=20, deadline=None)
def test_mutable_votes_only_improve(params):
    inst, engine, _metrics = run_mutable(*params)
    for player in inst.honest_ids:
        values = [
            p.reported_value
            for p in engine.board.posts(player=int(player))
            if p.is_vote
        ]
        assert values == sorted(values)


@given(mutable_params)
@settings(max_examples=20, deadline=None)
def test_mutable_run_length_is_prescribed(params):
    _inst, engine, metrics = run_mutable(*params)
    assert metrics.rounds == engine.strategy.prescribed_rounds


@given(mutable_params)
@settings(max_examples=20, deadline=None)
def test_mutable_final_votes_match_ledger(params):
    inst, engine, _metrics = run_mutable(*params)
    ledger = engine.board.ledger
    current = ledger.current_vote_array()
    for player in inst.honest_ids:
        posts = [
            p for p in engine.board.posts(player=int(player)) if p.is_vote
        ]
        assert posts, "every player posts at least its first probe"
        assert current[player] == posts[-1].object_id
