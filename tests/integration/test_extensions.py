"""Unit tests for the Section 6 open-problem extensions."""

import numpy as np
import pytest

from repro.billboard.post import PostKind
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.extensions.no_advice import NoAdviceDistill
from repro.extensions.ownership import (
    SelfPromotionAdversary,
    ownership_instance,
)
from repro.extensions.pricing import PricedEngine
from repro.extensions.slander import (
    SlanderAdversary,
    SlanderingDistill,
    discredited_objects,
)
from repro.billboard.board import Billboard
from repro.billboard.views import BillboardView
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import planted_instance


class TestDiscreditedObjects:
    def make_view(self, reports):
        board = Billboard(8, 8)
        for r, (player, obj, value) in enumerate(reports):
            board.append(r, player, obj, value, PostKind.REPORT)
        return BillboardView(board)

    def test_threshold_counts_distinct_reporters(self):
        view = self.make_view(
            [(0, 3, 0.0), (1, 3, 0.0), (0, 3, 0.0), (2, 5, 0.0)]
        )
        assert np.array_equal(discredited_objects(view, 2, 0.5), [3])

    def test_positive_reports_do_not_discredit(self):
        view = self.make_view([(0, 3, 0.9), (1, 3, 0.9)])
        assert discredited_objects(view, 2, 0.5).size == 0

    def test_threshold_one(self):
        view = self.make_view([(0, 3, 0.0)])
        assert np.array_equal(discredited_objects(view, 1, 0.5), [3])


class TestSlander:
    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            SlanderingDistill(slander_threshold=0)

    def test_smear_suppresses_slander_reader(self):
        inst = planted_instance(
            n=96, m=96, beta=1 / 96, alpha=0.6,
            rng=np.random.default_rng(3),
        )
        engine = SynchronousEngine(
            inst,
            SlanderingDistill(slander_threshold=3),
            adversary=SlanderAdversary(),
            rng=np.random.default_rng(4),
            adversary_rng=np.random.default_rng(5),
            config=EngineConfig(
                record_reports=True, max_rounds=800, strict=False
            ),
        )
        metrics = engine.run()
        assert metrics.satisfied_fraction < 0.5

    def test_plain_distill_immune_to_smear(self):
        inst = planted_instance(
            n=96, m=96, beta=1 / 96, alpha=0.6,
            rng=np.random.default_rng(3),
        )
        engine = SynchronousEngine(
            inst,
            DistillStrategy(),
            adversary=SlanderAdversary(),
            rng=np.random.default_rng(4),
            adversary_rng=np.random.default_rng(5),
            config=EngineConfig(record_reports=True, max_rounds=100_000),
        )
        assert engine.run().all_honest_satisfied


class TestOwnership:
    def test_instance_couples_goodness_to_honesty(self, rng):
        inst = ownership_instance(64, 0.5, 0.5, rng)
        assert inst.m == inst.n
        dishonest_goods = inst.space.good_mask & ~inst.honest_mask
        assert not dishonest_goods.any()

    def test_at_least_one_good(self, rng):
        inst = ownership_instance(16, 0.2, 1e-9, rng)
        assert inst.space.good_mask.sum() >= 1

    def test_p_good_validation(self, rng):
        with pytest.raises(ConfigurationError):
            ownership_instance(16, 0.5, 0.0, rng)

    def test_self_promotion_votes_own_objects(self, rng):
        inst = ownership_instance(32, 0.5, 0.5, rng)
        adv = SelfPromotionAdversary()
        adv.reset(inst, np.random.default_rng(1))
        actions = adv.act(0, BillboardView(Billboard(32, 32)))
        assert all(a.player == a.object_id for a in actions)
        assert len(actions) == inst.n_dishonest

    def test_self_promotion_needs_coupling(self, rng):
        inst = planted_instance(n=8, m=16, beta=0.25, alpha=0.5, rng=rng)
        adv = SelfPromotionAdversary()
        with pytest.raises(ConfigurationError):
            adv.reset(inst, np.random.default_rng(1))

    def test_distill_wins_the_coupled_world(self, rng):
        inst = ownership_instance(128, 0.6, 0.5, np.random.default_rng(7))
        engine = SynchronousEngine(
            inst,
            DistillStrategy(),
            adversary=SelfPromotionAdversary(),
            rng=np.random.default_rng(8),
            adversary_rng=np.random.default_rng(9),
        )
        assert engine.run().all_honest_satisfied


class TestPricing:
    def run_priced(self, premium, seed=11):
        world_ss, honest_ss = np.random.SeedSequence(seed).spawn(2)
        inst = planted_instance(
            n=128, m=128, beta=1 / 128, alpha=0.8,
            rng=np.random.default_rng(world_ss),
        )
        engine = PricedEngine(
            inst,
            DistillStrategy(),
            rng=np.random.default_rng(honest_ss),
            premium=premium,
        )
        return engine.run()

    def test_zero_premium_equals_probe_count(self):
        metrics = self.run_priced(0.0)
        assert np.array_equal(
            metrics.paid, metrics.probes.astype(float)
        )

    def test_premium_raises_payments(self):
        cheap = self.run_priced(0.0)
        dear = self.run_priced(1.0)
        assert dear.mean_individual_paid > cheap.mean_individual_paid

    def test_premium_validation(self):
        inst = planted_instance(
            n=8, m=8, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        with pytest.raises(ConfigurationError):
            PricedEngine(inst, DistillStrategy(), premium=-0.1)

    def test_time_complexity_unaffected(self):
        a = self.run_priced(0.0, seed=21)
        b = self.run_priced(5.0, seed=21)
        assert a.rounds == b.rounds  # identical coin streams, same world


class TestNoAdvice:
    def test_still_succeeds(self):
        inst = planted_instance(
            n=128, m=128, beta=1 / 16, alpha=0.6,
            rng=np.random.default_rng(31),
        )
        engine = SynchronousEngine(
            inst,
            NoAdviceDistill(),
            rng=np.random.default_rng(32),
            config=EngineConfig(max_rounds=500_000),
        )
        assert engine.run().all_honest_satisfied

    def test_never_probes_by_advice(self):
        """All probes come from the tracker's pool, never from votes of
        players outside it."""
        inst = planted_instance(
            n=64, m=64, beta=1 / 8, alpha=1.0,
            rng=np.random.default_rng(41),
        )
        engine = SynchronousEngine(
            inst, NoAdviceDistill(), rng=np.random.default_rng(42)
        )
        metrics = engine.run()
        assert metrics.all_honest_satisfied
