"""Tests for the idealized full-cooperation baseline."""

import numpy as np

from repro.baselines.full_cooperation import FullCooperationStrategy
from repro.lowerbounds.urn import thm1_individual_lower_bound
from repro.sim.engine import SynchronousEngine
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def run_once(n=32, m=64, beta=1 / 16, alpha=1.0, seed=3):
    world_ss, honest_ss = np.random.SeedSequence(seed).spawn(2)
    inst = planted_instance(
        n=n, m=m, beta=beta, alpha=alpha, rng=np.random.default_rng(world_ss)
    )
    engine = SynchronousEngine(
        inst,
        FullCooperationStrategy(),
        rng=np.random.default_rng(honest_ss),
    )
    return inst, engine, engine.run()


class TestNoDuplicateWork:
    def test_probes_are_distinct_until_success(self):
        inst, engine, metrics = run_once()
        # reconstruct probes: total probes <= m + n (sweep + follow round)
        total = int(metrics.probes.sum())
        assert total <= inst.m + inst.n

    def test_everyone_satisfied(self):
        _inst, _engine, metrics = run_once()
        assert metrics.all_honest_satisfied

    def test_followers_pay_one_extra_round(self):
        _inst, _engine, metrics = run_once()
        sat = metrics.satisfied_round[metrics.honest_mask]
        assert sat.max() - sat.min() <= 1


class TestMatchesTheorem1:
    def test_tracks_exact_bound(self):
        n, m, alpha, beta = 64, 64, 0.5, 1 / 16
        res = run_trials(
            lambda rng: planted_instance(
                n=n, m=m, beta=beta, alpha=alpha, rng=rng
            ),
            FullCooperationStrategy,
            n_trials=32,
            seed=17,
        )
        bound = thm1_individual_lower_bound(n, m, alpha, beta)
        measured = res.mean("mean_individual_rounds")
        assert bound <= measured <= bound + 2.5

    def test_never_beats_the_lower_bound(self):
        """The bound is a true lower bound: even perfect cooperation
        cannot dip below it (modulo the integer-rounds floor of 1)."""
        for n in (16, 64):
            res = run_trials(
                lambda rng, n=n: planted_instance(
                    n=n, m=n, beta=1 / 8, alpha=1.0, rng=rng
                ),
                FullCooperationStrategy,
                n_trials=16,
                seed=19,
            )
            bound = thm1_individual_lower_bound(n, n, 1.0, 1 / 8)
            assert res.mean("mean_individual_rounds") >= min(1.0, bound)
