"""Tests for the trivial baseline."""

import numpy as np
import pytest

from repro.baselines.trivial import TrivialStrategy
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance, valued_instance
from repro.sim.engine import SynchronousEngine


class TestTrivial:
    def test_mean_cost_near_one_over_beta(self):
        beta = 1 / 8
        res = run_trials(
            lambda rng: planted_instance(
                n=64, m=64, beta=beta, alpha=1.0, rng=rng
            ),
            TrivialStrategy,
            n_trials=24,
            seed=5,
        )
        mean = res.mean("mean_individual_probes")
        # geometric mean 8; generous band for 24 trials x 64 players
        assert 6.0 < mean < 10.0

    def test_ignores_billboard(self):
        """Identical probe stream regardless of what is on the board —
        demonstrated by the strategy never reading votes: cost does not
        improve when other players have already found the good object."""
        res = run_trials(
            lambda rng: planted_instance(
                n=64, m=64, beta=1 / 16, alpha=1.0, rng=rng
            ),
            TrivialStrategy,
            n_trials=16,
            seed=7,
        )
        # late finishers pay full geometric cost: p99 well above the mean
        key = "max_individual_rounds"
        assert res.mean(key) > 2 * res.mean("mean_individual_rounds") / 2

    def test_requires_local_testing(self):
        inst = valued_instance(
            n=8, m=8, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            SynchronousEngine(inst, TrivialStrategy()).run()
