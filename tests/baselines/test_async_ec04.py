"""Tests for the prior-algorithm baseline (EC'04 under round robin)."""

import pytest

from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.trivial import TrivialStrategy
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


def needle_factory(n):
    """m = n with a single good object — the collaboration regime."""
    return lambda rng: planted_instance(
        n=n, m=n, beta=1.0 / n, alpha=0.9, rng=rng
    )


class TestConstruction:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            AsyncEC04Strategy(explore_probability=0.0)
        with pytest.raises(ValueError):
            AsyncEC04Strategy(explore_probability=1.5)


class TestBehaviour:
    def test_terminates(self):
        res = run_trials(
            needle_factory(128), AsyncEC04Strategy, n_trials=8, seed=3
        )
        assert res.success_rate() == 1.0

    def test_collaboration_beats_trivial_on_needle(self):
        n = 128
        asynch = run_trials(
            needle_factory(n), AsyncEC04Strategy, n_trials=12, seed=9
        ).mean("mean_individual_rounds")
        trivial = run_trials(
            needle_factory(n), TrivialStrategy, n_trials=12, seed=9
        ).mean("mean_individual_rounds")
        assert asynch < trivial / 3

    def test_cost_grows_with_n_on_needle(self):
        small = run_trials(
            needle_factory(64), AsyncEC04Strategy, n_trials=16, seed=11
        ).mean("mean_individual_rounds")
        large = run_trials(
            needle_factory(1024), AsyncEC04Strategy, n_trials=16, seed=11
        ).mean("mean_individual_rounds")
        assert large > small

    def test_pure_exploration_matches_trivial_shape(self):
        """explore_probability=1 degenerates to the trivial baseline."""
        res = run_trials(
            lambda rng: planted_instance(
                n=64, m=64, beta=1 / 8, alpha=1.0, rng=rng
            ),
            lambda: AsyncEC04Strategy(explore_probability=1.0),
            n_trials=16,
            seed=13,
        )
        mean = res.mean("mean_individual_probes")
        assert 6.0 < mean < 10.0
