"""Tests for ASCII table / series rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.tables import Table, format_series


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["name", "value"])
        table.add_row(name="a", value=1)
        table.add_row(name="long-name", value=123.456)
        lines = table.render().splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_formats_applied(self):
        table = Table(["x"], formats={"x": ".2f"})
        table.add_row(x=1.23456)
        assert "1.23" in table.render()

    def test_missing_cell_renders_dash(self):
        table = Table(["a", "b"])
        table.add_row(a=1)
        assert "-" in table.render().splitlines()[-1]

    def test_unknown_column_rejected(self):
        table = Table(["a"])
        with pytest.raises(ConfigurationError):
            table.add_row(b=1)

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table([])

    def test_default_float_format(self):
        table = Table(["x"])
        table.add_row(x=0.123456789)
        assert "0.1235" in table.render()


class TestSeries:
    def test_renders_all_series(self):
        out = format_series(
            "n", [64, 128], {"distill": [2.0, 3.0], "trivial": [16.0, 16.0]}
        )
        assert "distill" in out
        assert "trivial" in out
        assert "n=64" in out
        assert "n=128" in out

    def test_bars_scale_monotonically(self):
        out = format_series("n", [1], {"a": [1.0], "b": [100.0]})
        bar_a = [l for l in out.splitlines() if l.strip().startswith("a")][0]
        bar_b = [l for l in out.splitlines() if l.strip().startswith("b")][0]
        assert bar_b.count("#") > bar_a.count("#")

    def test_no_positive_data(self):
        assert "(no positive data)" in format_series("n", [1], {"a": [0.0]})


class TestSeriesEdgeCases:
    def test_linear_scale(self):
        out = format_series(
            "x", [1, 2], {"a": [1.0, 2.0]}, log_scale=False
        )
        assert "x=1" in out

    def test_constant_series(self):
        # vmax == vmin: bars must still render without dividing by zero
        out = format_series("x", [1, 2], {"a": [3.0, 3.0]})
        assert out.count("#") >= 2

    def test_zero_values_render_empty_bar(self):
        out = format_series("x", [1], {"a": [0.0], "b": [5.0]})
        line_a = [l for l in out.splitlines() if l.strip().startswith("a")][0]
        assert "#" not in line_a


class TestMarkdownRendering:
    def test_empty_table_has_header_and_rule(self):
        md = Table(["a", "b"]).render_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert len(md.splitlines()) == 2

    def test_cells_formatted(self):
        table = Table(["x"], formats={"x": ".1f"})
        table.add_row(x=2.345)
        assert "| 2.3 |" in table.render_markdown()
