"""Unit tests for the experiment definitions' internal helpers."""


from repro.experiments.common import measure, planted_factory
from repro.experiments.defs.e04_epsilon_constant import (
    _instance_with_dishonest,
)
from repro.experiments.defs.e12_three_phase import _run_cell
from repro.experiments.defs.e13_async_model import (
    _async_trials,
    _sync_trials,
)
from repro.adversaries.flood import FloodAdversary
from repro.baselines.trivial import TrivialStrategy
from repro.sim.async_engine import PerStepAdapter
from repro.sim.schedules import RoundRobinSchedule
from repro.baselines.async_ec04 import AsyncEC04Strategy


class TestCommon:
    def test_planted_factory_builds_requested_world(self, rng):
        inst = planted_factory(32, 64, 0.25, 0.5)(rng)
        assert inst.n == 32
        assert inst.m == 64
        assert inst.space.good_mask.sum() == 16

    def test_measure_runs_trials(self):
        res = measure(
            planted_factory(16, 16, 0.25, 1.0),
            TrivialStrategy,
            trials=3,
            seed=1,
        )
        assert res.n_trials == 3


class TestE04Helper:
    def test_exact_dishonest_count(self, rng):
        inst = _instance_with_dishonest(64, 1 / 8, 10, rng)
        assert inst.n_dishonest == 10
        assert inst.n == 64

    def test_zero_dishonest(self, rng):
        inst = _instance_with_dishonest(64, 1 / 8, 0, rng)
        assert inst.alpha == 1.0

    def test_good_fraction_preserved(self, rng):
        inst = _instance_with_dishonest(64, 1 / 8, 5, rng)
        assert inst.space.good_mask.sum() == 8


class TestE12Helper:
    def test_cell_reports_all_statistics(self):
        cell = _run_cell(
            n=64,
            adversary_factory=FloodAdversary,
            trials=3,
            seed=5,
        )
        assert set(cell) == {
            "c2_size",
            "c3_size",
            "good_in_c2",
            "good_in_c3",
            "satisfied_frac",
        }
        assert 0.0 <= cell["good_in_c2"] <= 1.0


class TestE13Helpers:
    def test_async_trials_aggregates(self):
        out = _async_trials(
            lambda: PerStepAdapter(AsyncEC04Strategy()),
            RoundRobinSchedule,
            n=32,
            beta=1 / 8,
            trials=2,
            seed=3,
            victim=0,
        )
        assert out["probes"] > 0
        assert out["steps"] > 0
        assert out["victim_probes"] is not None

    def test_sync_trials_aggregates(self):
        out = _sync_trials(AsyncEC04Strategy, n=32, beta=1 / 8, trials=2,
                           seed=3)
        assert out["probes"] > 0
        assert out["rounds"] > 0
