"""Tests for experiment result records."""

from repro.experiments.config import ExperimentResult, Scale


def make_result(checks=None):
    return ExperimentResult(
        experiment_id="E0",
        title="demo",
        claim="a claim",
        columns=["x", "y"],
        rows=[{"x": 1, "y": 2.0}, {"x": 2, "y": 4.0}],
        checks=checks or {},
        notes=["a note"],
    )


class TestExperimentResult:
    def test_render_includes_all_parts(self):
        result = make_result(checks={"shape holds": True})
        text = result.render()
        assert "E0: demo" in text
        assert "a claim" in text
        assert "[PASS] shape holds" in text
        assert "note: a note" in text

    def test_failed_check_renders_fail(self):
        result = make_result(checks={"broken": False})
        assert "[FAIL] broken" in result.render()

    def test_all_checks_pass(self):
        assert make_result(checks={"a": True, "b": True}).all_checks_pass
        assert not make_result(checks={"a": True, "b": False}).all_checks_pass

    def test_empty_checks_pass_vacuously(self):
        assert make_result().all_checks_pass

    def test_table_filters_to_columns(self):
        result = make_result()
        result.rows[0]["hidden"] = 99
        text = result.table().render()
        assert "hidden" not in text

    def test_scale_enum_values(self):
        assert Scale("smoke") is Scale.SMOKE
        assert Scale("full") is Scale.FULL
