"""Tests for result serialization and the markdown report generator."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.config import ExperimentResult
from repro.experiments.report import (
    generate_report,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)


@pytest.fixture(scope="module")
def e1_result():
    return run_experiment("E1", scale="smoke", seed=2)


class TestSerialization:
    def test_round_trip_preserves_everything(self, e1_result):
        clone = result_from_dict(result_to_dict(e1_result))
        assert clone.experiment_id == e1_result.experiment_id
        assert clone.rows == e1_result.rows
        assert clone.checks == e1_result.checks
        assert list(clone.columns) == list(e1_result.columns)

    def test_json_round_trip(self, e1_result):
        clone = result_from_json(result_to_json(e1_result))
        assert clone.rows == e1_result.rows

    def test_json_is_valid_and_sorted(self, e1_result):
        payload = json.loads(result_to_json(e1_result))
        assert payload["experiment_id"] == "E1"

    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            result_from_dict({"experiment_id": "E1"})

    def test_deserialized_result_renders(self, e1_result):
        clone = result_from_json(result_to_json(e1_result))
        assert clone.render()


class TestMarkdownReport:
    def test_report_from_precomputed_results(self, e1_result):
        report = generate_report(results=[e1_result])
        assert "# Reproduction report" in report
        assert "## E1 —" in report
        assert "| n |" in report or "| n " in report
        assert "✅" in report

    def test_report_counts_passes(self, e1_result):
        report = generate_report(results=[e1_result])
        assert "1/1 experiments pass" in report

    def test_failed_checks_rendered_as_cross(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="t",
            claim="c",
            columns=["a"],
            rows=[{"a": 1}],
            checks={"broken": False},
        )
        report = generate_report(results=[result])
        assert "❌ broken" in report
        assert "0/1 experiments pass" in report

    def test_report_runs_requested_ids(self):
        report = generate_report(
            experiment_ids=["E1"], scale="smoke", seed=3
        )
        assert "## E1" in report

    def test_markdown_table_shape(self, e1_result):
        md = e1_result.table().render_markdown()
        lines = md.splitlines()
        assert lines[0].startswith("| ")
        assert set(lines[1]) <= {"|", "-"}
        assert len(lines) == 2 + len(e1_result.rows)
