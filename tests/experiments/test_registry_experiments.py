"""End-to-end smoke runs of every registered experiment.

These are the integration tests of the whole reproduction: each of the
paper's twelve claims is measured at smoke scale and its shape checks
must pass. FULL-scale results are recorded by the benches and in
EXPERIMENTS.md.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)
from repro.experiments.config import Scale


class TestRegistry:
    def test_all_experiments_registered(self):
        # E1..E12 cover the paper's claims; E13 validates the model's
        # synchronous abstraction; E15 the fault-injection robustness
        # story; A1..A4 explore the Section 6 open problems and the
        # Lemma 6 ablation (DESIGN.md extensions)
        expected = [f"E{i}" for i in range(1, 16)] + [
            f"A{i}" for i in range(1, 7)
        ]
        assert available_experiments() == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("E99", scale="smoke")

    def test_scale_accepts_string(self):
        result = run_experiment("E1", scale="smoke", seed=0)
        assert result.experiment_id == "E1"

    def test_lowercase_id_accepted(self):
        result = run_experiment("e1", scale=Scale.SMOKE, seed=0)
        assert result.experiment_id == "E1"


@pytest.mark.parametrize("experiment_id", available_experiments())
def test_experiment_smoke_checks_pass(experiment_id):
    result = run_experiment(experiment_id, scale=Scale.SMOKE, seed=1)
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{experiment_id} failed: {failed}"
    assert result.rows, f"{experiment_id} produced no rows"
    assert result.render()  # renders without error


@pytest.mark.parametrize("experiment_id", available_experiments())
def test_experiment_is_seed_deterministic(experiment_id):
    a = run_experiment(experiment_id, scale=Scale.SMOKE, seed=7)
    b = run_experiment(experiment_id, scale=Scale.SMOKE, seed=7)
    assert a.rows == b.rows
