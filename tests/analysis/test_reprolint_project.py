"""Fixture tests for the cross-file rule families (RPL011–RPL014).

Each test builds a miniature project in ``tmp_path`` and runs the full
two-phase :func:`lint_project` over it from that directory, so the same
code paths CI exercises — summary extraction, model build, checker,
suppression, select filter — are the ones under test. The gate-has-teeth
class at the bottom proves the two seeded regressions the rules were
built for (a counter-name typo, a dropped ``on_player_restart`` twin
hook) actually fail the CLI gate with exit code 1.
"""

import textwrap

from repro.lint import (
    compare_to_baseline,
    lint_project,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main


def run_lint(tmp_path, monkeypatch, files, select=None):
    """Write ``files`` under tmp_path, chdir there, lint ``pkg/``."""
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    monkeypatch.chdir(tmp_path)
    return lint_project(["pkg"], select=select, cache_path=None)


class TestStreamFlow:
    """RPL011: SeedSequence.spawn plumbing."""

    def test_unpack_count_mismatch(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed):
                    world_ss, honest_ss = np.random.SeedSequence(seed).spawn(3)
                    return world_ss, honest_ss
                """
            },
            select=["RPL011"],
        )
        assert [v.code for v in violations] == ["RPL011"]
        assert "spawn(3) unpacked into 2 names" in violations[0].message

    def test_index_past_spawn_count(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed):
                    streams = np.random.SeedSequence(seed).spawn(2)
                    return streams[2]
                """
            },
            select=["RPL011"],
        )
        assert [v.code for v in violations] == ["RPL011"]
        assert "out of range" in violations[0].message

    def test_spare_stream_collision(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed):
                    streams = np.random.SeedSequence(seed).spawn(3)
                    fault_rng = np.random.default_rng(streams[2])
                    extra_rng = np.random.default_rng(streams[2])
                    return fault_rng, extra_rng
                """
            },
            select=["RPL011"],
        )
        assert [v.code for v in violations] == ["RPL011"]
        assert "spare-stream collision" in violations[0].message

    def test_child_feeding_two_consumers(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed, make_world, make_engine):
                    world_ss, honest_ss = np.random.SeedSequence(seed).spawn(2)
                    inst = make_world(world_ss)
                    engine = make_engine(world_ss)
                    return inst, engine, honest_ss
                """
            },
            select=["RPL011"],
        )
        assert [v.code for v in violations] == ["RPL011"]
        assert "correlates both components" in violations[0].message

    def test_clean_spawn_discipline_passes(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed, make_world, make_engine):
                    world_ss, honest_ss = np.random.SeedSequence(seed).spawn(2)
                    inst = make_world(world_ss)
                    engine = make_engine(inst, honest_ss)
                    return engine
                """
            },
            select=["RPL011"],
        )
        assert violations == []

    def test_noqa_with_reason_suppresses(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed):
                    a, b = np.random.SeedSequence(seed).spawn(3)  # repro: noqa=RPL011(third stream reserved for PR 12)
                    return a, b
                """
            },
            select=["RPL011"],
        )
        assert violations == []

    def test_baseline_round_trip(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/run.py": """\
                import numpy as np

                def run(seed):
                    a, b = np.random.SeedSequence(seed).spawn(3)
                    return a, b
                """
            },
            select=["RPL011"],
        )
        assert len(violations) == 1
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), violations)
        drift = compare_to_baseline(
            violations, load_baseline(str(baseline_file))
        )
        assert drift.clean
        assert drift.suppressed == 1


KNOB_CONFIG = """\
import os

JOBS_ENV_VAR = "REPRO_FIX_JOBS"


def default_jobs():
    return int(os.environ.get(JOBS_ENV_VAR, "1"))
"""

KNOB_CLI = """\
import argparse


def build_parser():
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--jobs", type=int, help="worker count (overrides REPRO_FIX_JOBS)"
    )
    return parser
"""

KNOB_DOC = "Set `REPRO_FIX_JOBS` to pick the default worker count.\n"


class TestKnobTrio:
    """RPL012: env var + CLI flag + resolver + docs, or else."""

    def test_complete_trio_passes(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/config.py": KNOB_CONFIG,
                "pkg/cli.py": KNOB_CLI,
                "docs/configuration.md": KNOB_DOC,
            },
            select=["RPL012"],
        )
        assert violations == []

    def test_missing_legs_are_named(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {"pkg/config.py": KNOB_CONFIG},
            select=["RPL012"],
        )
        assert [v.code for v in violations] == ["RPL012"]
        message = violations[0].message
        assert "REPRO_FIX_JOBS" in message
        assert "CLI flag" in message
        assert "docs/ mention" in message
        assert "resolve" not in message  # the reader leg IS present

    def test_flag_without_resolver_flagged(self, tmp_path, monkeypatch):
        config = KNOB_CONFIG.replace("def default_jobs", "def read_jobs")
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/config.py": config,
                "pkg/cli.py": KNOB_CLI,
                "docs/configuration.md": KNOB_DOC,
            },
            select=["RPL012"],
        )
        assert [v.code for v in violations] == ["RPL012"]
        assert "default_*/resolve_* reader" in violations[0].message

    def test_bare_env_var_needs_docs(self, tmp_path, monkeypatch):
        worker = """\
        import os


        def read_token():
            return os.environ.get("REPRO_FIX_TOKEN", "")
        """
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {"pkg/worker.py": worker},
            select=["RPL012"],
        )
        assert [v.code for v in violations] == ["RPL012"]
        assert "documented nowhere" in violations[0].message

        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/worker.py": worker,
                "docs/ops.md": "Workers read `REPRO_FIX_TOKEN`.\n",
            },
            select=["RPL012"],
        )
        assert violations == []


REGISTRY = """\
DECLARED_COUNTERS = frozenset({
    "exec.worker_lost",
    "faults.dropped_posts",
})

DECLARED_TIMERS = frozenset({
    "runner.run_trials",
})

DYNAMIC_COUNTER_PREFIXES = ("faults.",)
"""

COUNTER_SITES = """\
def on_worker_lost(obs):
    obs.counter("exec.worker_lost")


def on_fault(obs, kind):
    obs.counter(f"faults.{kind}")


def run_trials(obs):
    with obs.timer("runner.run_trials"):
        pass
"""

OBS_DOC = """\
| counter | meaning |
| --- | --- |
| `exec.worker_lost` | worker lease expired |
| `faults.dropped_posts` | posts dropped by fault injection |
| `runner.run_trials` | wall time of a trial batch |
"""


class TestCounterRegistry:
    """RPL013: call sites <-> declared registry <-> doc catalogue."""

    def test_round_trip_passes(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/names.py": REGISTRY,
                "pkg/sites.py": COUNTER_SITES,
                "docs/observability.md": OBS_DOC,
            },
            select=["RPL013"],
        )
        assert violations == []

    def test_undeclared_call_site(self, tmp_path, monkeypatch):
        sites = COUNTER_SITES + (
            "\n\ndef oops(obs):\n"
            '    obs.counter("exec.worker_losst")\n'
        )
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/names.py": REGISTRY,
                "pkg/sites.py": sites,
                "docs/observability.md": OBS_DOC,
            },
            select=["RPL013"],
        )
        assert [v.code for v in violations] == ["RPL013"]
        assert "exec.worker_losst" in violations[0].message
        assert "not declared" in violations[0].message

    def test_stale_declaration(self, tmp_path, monkeypatch):
        registry = REGISTRY.replace(
            '"exec.worker_lost",',
            '"exec.worker_lost",\n    "exec.retired_counter",',
        )
        doc = OBS_DOC + "| `exec.retired_counter` | gone |\n"
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/names.py": registry,
                "pkg/sites.py": COUNTER_SITES,
                "docs/observability.md": doc,
            },
            select=["RPL013"],
        )
        assert [v.code for v in violations] == ["RPL013"]
        assert "incremented nowhere" in violations[0].message

    def test_documented_but_not_declared(self, tmp_path, monkeypatch):
        doc = OBS_DOC + "| `exec.ghost` | never existed |\n"
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/names.py": REGISTRY,
                "pkg/sites.py": COUNTER_SITES,
                "docs/observability.md": doc,
            },
            select=["RPL013"],
        )
        assert [v.code for v in violations] == ["RPL013"]
        assert violations[0].path == "docs/observability.md"
        assert "exec.ghost" in violations[0].message

    def test_dynamic_site_outside_prefixes(self, tmp_path, monkeypatch):
        sites = COUNTER_SITES + (
            "\n\ndef rogue(obs, kind):\n"
            '    obs.counter(f"mystery.{kind}")\n'
        )
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/names.py": REGISTRY,
                "pkg/sites.py": sites,
                "docs/observability.md": OBS_DOC,
            },
            select=["RPL013"],
        )
        assert [v.code for v in violations] == ["RPL013"]
        assert "DYNAMIC_COUNTER_PREFIXES" in violations[0].message

    def test_noqa_with_reason_suppresses(self, tmp_path, monkeypatch):
        sites = COUNTER_SITES + (
            "\n\ndef legacy(obs):\n"
            '    obs.counter("exec.legacy_name")  '
            "# repro: noqa=RPL013(emitted for dashboards pinned upstream)\n"
        )
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/names.py": REGISTRY,
                "pkg/sites.py": sites,
                "docs/observability.md": OBS_DOC,
            },
            select=["RPL013"],
        )
        assert violations == []


PARITY_BASE = """\
class Strategy:
    def reset(self, instance, rng):
        pass

    def on_player_restart(self, player):
        pass


class BatchedStrategy:
    def reset_lanes(self, instances, rngs):
        pass
"""

PARITY_SCALAR = """\
from pkg.base import Strategy


class CarefulStrategy(Strategy):
    def choose_probes(self, round_no, view):
        return []

    def on_player_restart(self, player):
        self.fresh = True

    def make_batched(self, n_lanes):
        from pkg.batched import BatchedCareful

        return BatchedCareful(n_lanes)
"""

PARITY_TWIN_FULL = """\
from pkg.base import BatchedStrategy


class BatchedCareful(BatchedStrategy):
    def choose_probes_batch(self, round_no, views):
        return []

    def on_player_restart(self, lane, player):
        pass
"""


class TestBatchedParity:
    """RPL014: make_batched twins must cover the scalar hook surface."""

    def test_full_surface_passes(self, tmp_path, monkeypatch):
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/base.py": PARITY_BASE,
                "pkg/scalar.py": PARITY_SCALAR,
                "pkg/batched.py": PARITY_TWIN_FULL,
            },
            select=["RPL014"],
        )
        assert violations == []

    def test_dropped_hook_is_flagged(self, tmp_path, monkeypatch):
        twin = PARITY_TWIN_FULL.replace(
            "    def on_player_restart(self, lane, player):\n        pass\n",
            "",
        )
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/base.py": PARITY_BASE,
                "pkg/scalar.py": PARITY_SCALAR,
                "pkg/batched.py": twin,
            },
            select=["RPL014"],
        )
        assert [v.code for v in violations] == ["RPL014"]
        assert "on_player_restart" in violations[0].message
        assert violations[0].path == "pkg/batched.py"

    def test_unresolvable_twin_is_flagged(self, tmp_path, monkeypatch):
        scalar = PARITY_SCALAR.replace("BatchedCareful", "BatchedGhost")
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/base.py": PARITY_BASE,
                "pkg/scalar.py": scalar,
                "pkg/batched.py": PARITY_TWIN_FULL,
            },
            select=["RPL014"],
        )
        assert [v.code for v in violations] == ["RPL014"]
        assert "BatchedGhost" in violations[0].message
        assert "not a class this project defines" in violations[0].message

    def test_ancestor_provided_hook_counts(self, tmp_path, monkeypatch):
        # the PerLane* pattern: a forwarding adapter between the root and
        # the twin provides the hooks, so the twin itself stays empty
        adapter = """\
        from pkg.base import BatchedStrategy


        class PerLaneStrategy(BatchedStrategy):
            def choose_probes_batch(self, round_no, views):
                return []

            def on_player_restart(self, lane, player):
                pass


        class BatchedCareful(PerLaneStrategy):
            pass
        """
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/base.py": PARITY_BASE,
                "pkg/scalar.py": PARITY_SCALAR,
                "pkg/batched.py": textwrap.dedent(adapter),
            },
            select=["RPL014"],
        )
        assert violations == []

    def test_protocol_default_creates_no_contract(self, tmp_path, monkeypatch):
        # a scalar that never overrides on_player_restart itself relies
        # on the Strategy default; the twin owes nothing for that hook
        scalar = PARITY_SCALAR.replace(
            "    def on_player_restart(self, player):\n"
            "        self.fresh = True\n\n",
            "",
        )
        twin = PARITY_TWIN_FULL.replace(
            "    def on_player_restart(self, lane, player):\n        pass\n",
            "",
        )
        violations = run_lint(
            tmp_path,
            monkeypatch,
            {
                "pkg/base.py": PARITY_BASE,
                "pkg/scalar.py": scalar,
                "pkg/batched.py": twin,
            },
            select=["RPL014"],
        )
        assert violations == []


class TestGateHasTeethProjectRules:
    """The two seeded regressions must fail the CLI gate, exit code 1."""

    def write(self, tmp_path, files):
        for rel, content in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(content))

    def test_seeded_counter_typo_fails_gate(
        self, tmp_path, monkeypatch, capsys
    ):
        sites = COUNTER_SITES.replace(
            '"exec.worker_lost"', '"exec.worker_losst"'
        )
        self.write(
            tmp_path,
            {
                "pkg/names.py": REGISTRY,
                "pkg/sites.py": sites,
                "docs/observability.md": OBS_DOC,
            },
        )
        monkeypatch.chdir(tmp_path)
        code = main(["pkg", "--no-baseline", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPL013" in out
        assert "exec.worker_losst" in out

    def test_dropped_restart_hook_fails_gate(
        self, tmp_path, monkeypatch, capsys
    ):
        twin = PARITY_TWIN_FULL.replace(
            "    def on_player_restart(self, lane, player):\n        pass\n",
            "",
        )
        self.write(
            tmp_path,
            {
                "pkg/base.py": PARITY_BASE,
                "pkg/scalar.py": PARITY_SCALAR,
                "pkg/batched.py": twin,
            },
        )
        monkeypatch.chdir(tmp_path)
        code = main(["pkg", "--no-baseline", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPL014" in out
        assert "on_player_restart" in out
