"""Tests for scaling-law fits."""

import numpy as np
import pytest

from repro.analysis.fitting import fit_power_law, fit_scale_factor, r_squared
from repro.errors import ConfigurationError


class TestPowerLaw:
    def test_recovers_exact_law(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x ** 1.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r2 == pytest.approx(1.0)

    def test_noise_degrades_r2(self, rng):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
        y = x * np.exp(rng.normal(scale=0.5, size=6))
        fit = fit_power_law(x, y)
        assert fit.r2 < 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0], [0.0, 1.0])

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [1.0])


class TestScaleFactor:
    def test_recovers_constant(self):
        predicted = np.array([1.0, 2.0, 3.0])
        assert fit_scale_factor(2.5 * predicted, predicted) == pytest.approx(
            2.5
        )

    def test_least_squares_through_origin(self):
        measured = np.array([1.0, 5.0])
        predicted = np.array([1.0, 2.0])
        # c = (1*1 + 5*2)/(1+4) = 11/5
        assert fit_scale_factor(measured, predicted) == pytest.approx(2.2)

    def test_rejects_all_zero_prediction(self):
        with pytest.raises(ConfigurationError):
            fit_scale_factor([1.0], [0.0])

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            fit_scale_factor([1.0, 2.0], [1.0])


class TestR2:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_prediction_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_constant_target_edge_case(self):
        y = np.full(3, 2.0)
        assert r_squared(y, y) == 1.0
        assert r_squared(y, y + 1.0) == 0.0
