"""Tests for concentration-bound helpers."""

import math

import pytest

from repro.analysis.concentration import (
    chernoff_below_half_mean,
    chernoff_lower_tail,
    markov_tail,
)
from repro.errors import ConfigurationError


class TestChernoff:
    def test_half_mean_form(self):
        assert chernoff_below_half_mean(16.0) == pytest.approx(
            math.exp(-2.0)
        )

    def test_matches_general_form_at_half(self):
        # both use exp(-delta^2 E / 2) at delta = 1/2 -> exp(-E/8)
        e = 10.0
        assert chernoff_lower_tail(e, 0.5) == pytest.approx(
            chernoff_below_half_mean(e)
        )

    def test_bound_actually_bounds_binomial(self, rng):
        """Empirical check: P[Bin(n,p) < np/2] <= exp(-np/8)."""
        n, p = 200, 0.2
        samples = rng.binomial(n, p, size=20000)
        empirical = float((samples < n * p / 2).mean())
        assert empirical <= chernoff_below_half_mean(n * p) + 0.01

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chernoff_below_half_mean(-1.0)
        with pytest.raises(ConfigurationError):
            chernoff_lower_tail(1.0, 0.0)


class TestMarkov:
    def test_basic(self):
        assert markov_tail(2.0, 10.0) == pytest.approx(0.2)

    def test_capped_at_one(self):
        assert markov_tail(20.0, 10.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            markov_tail(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            markov_tail(-1.0, 1.0)
