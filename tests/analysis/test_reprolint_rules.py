"""Per-rule fixtures for reprolint.

Every rule gets at least one true-positive snippet (the hazard is
flagged) and one false-positive guard (the idiomatic spelling of the
same job passes). Paths are chosen per-case because several rules are
package-sensitive: RPL005/RPL006 only fire inside the determinism-
critical engine packages.
"""

import pytest

from repro.lint import RULES, lint_source
from repro.lint.engine import LintError
from repro.lint.rules import CRITICAL_PACKAGES, is_critical_path

#: a module path inside a determinism-critical package
SIM = "src/repro/sim/example.py"
#: a module path outside them
TOOL = "src/repro/analysis/example.py"


def codes(source, path=TOOL):
    return [v.code for v in lint_source(source, path)]


class TestRPL001NumpyGlobalRng:
    def test_module_level_call_is_flagged(self):
        source = "import numpy as np\nx = np.random.rand(4)\n"
        assert codes(source) == ["RPL001"]

    def test_seed_call_is_flagged(self):
        source = "import numpy as np\nnp.random.seed(0)\n"
        assert codes(source) == ["RPL001"]

    def test_legacy_from_import_is_flagged(self):
        source = "from numpy.random import randint\n"
        assert codes(source) == ["RPL001"]

    def test_generator_api_passes(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.random(4)\n"
        )
        assert codes(source) == []

    def test_numpy_alias_is_resolved(self):
        source = "import numpy\nnumpy.random.shuffle([1, 2])\n"
        assert codes(source) == ["RPL001"]


class TestRPL002StdlibRng:
    def test_import_random_is_flagged(self):
        assert codes("import random\n") == ["RPL002"]

    def test_from_secrets_is_flagged(self):
        assert codes("from secrets import token_bytes\n") == ["RPL002"]

    def test_similarly_named_module_passes(self):
        # the rule matches module roots, not substrings
        assert codes("import randomized_svd_helpers\n") == []
        assert codes("from mypkg.random_walks import walk\n") == []


class TestRPL003UnseededGenerator:
    def test_unseeded_default_rng_is_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(source) == ["RPL003"]

    def test_none_seed_is_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert codes(source) == ["RPL003"]

    def test_unseeded_seed_sequence_is_flagged(self):
        source = "import numpy as np\nss = np.random.SeedSequence()\n"
        assert codes(source) == ["RPL003"]

    def test_unseeded_repro_helper_is_flagged(self):
        source = (
            "from repro.rng import make_generator\n"
            "rng = make_generator()\n"
        )
        assert codes(source) == ["RPL003"]

    def test_seeded_construction_passes(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "ss = np.random.SeedSequence([1, 2])\n"
        )
        assert codes(source) == []

    def test_forwarded_seed_variable_passes(self):
        # passing a seed *variable* is fine; only literal None/empty is
        # unseeded construction
        source = (
            "import numpy as np\n"
            "def build(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert codes(source) == []


class TestRPL004SeedArithmetic:
    def test_seed_plus_one_is_flagged(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(seed + 1)\n"
        )
        assert codes(source) == ["RPL004"]

    def test_attribute_seed_arithmetic_is_flagged(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(args.seed + 2)\n"
        )
        assert codes(source) == ["RPL004"]

    def test_scaled_seed_is_flagged(self):
        source = (
            "import numpy as np\n"
            "ss = np.random.SeedSequence(1000 * seed + trial)\n"
        )
        assert codes(source) == ["RPL004"]

    def test_seed_keyword_of_any_call_is_flagged(self):
        source = "results = run_trials(make, seed=base_seed + 3)\n"
        assert codes(source) == ["RPL004"]

    def test_spawn_derivation_passes(self):
        source = (
            "import numpy as np\n"
            "a, b = np.random.SeedSequence(seed).spawn(2)\n"
            "rng = np.random.default_rng(a)\n"
        )
        assert codes(source) == []

    def test_tuple_seed_composition_passes(self):
        # entropy composition via a tuple is spawn-equivalent, not
        # arithmetic: SeedSequence hashes each component independently
        source = "results = run_trials(make, seed=(args.seed, index))\n"
        assert codes(source) == []

    def test_arithmetic_away_from_seeds_passes(self):
        source = "total = count + 1\n"
        assert codes(source) == []


class TestRPL005WallClock:
    def test_time_time_in_sim_is_flagged(self):
        source = "import time\nstamp = time.time()\n"
        assert codes(source, SIM) == ["RPL005"]

    def test_datetime_now_in_sim_is_flagged(self):
        source = (
            "from datetime import datetime\n"
            "stamp = datetime.now()\n"
        )
        assert codes(source, SIM) == ["RPL005"]

    def test_os_urandom_in_sim_is_flagged(self):
        source = "import os\nblob = os.urandom(8)\n"
        assert codes(source, SIM) == ["RPL005"]

    def test_time_sleep_passes(self):
        # pacing (retry backoff) never feeds engine state
        source = "import time\ntime.sleep(0.1)\n"
        assert codes(source, SIM) == []

    def test_wall_clock_outside_critical_packages_passes(self):
        source = "import time\nstamp = time.time()\n"
        assert codes(source, TOOL) == []


class TestRPL006UnorderedIteration:
    def test_set_call_iteration_in_sim_is_flagged(self):
        source = "for player in set(players):\n    handle(player)\n"
        assert codes(source, SIM) == ["RPL006"]

    def test_set_literal_iteration_in_sim_is_flagged(self):
        source = "for kind in {'vote', 'report'}:\n    handle(kind)\n"
        assert codes(source, SIM) == ["RPL006"]

    def test_comprehension_over_set_is_flagged(self):
        source = "out = [f(x) for x in set(items)]\n"
        assert codes(source, SIM) == ["RPL006"]

    def test_sorted_set_passes(self):
        source = "for player in sorted(set(players)):\n    handle(player)\n"
        assert codes(source, SIM) == []

    def test_membership_test_passes(self):
        # building/consulting a set is fine; only *iteration* order is a
        # hazard
        source = (
            "seen = set(players)\n"
            "if 3 in seen:\n"
            "    handle(3)\n"
        )
        assert codes(source, SIM) == []

    def test_outside_critical_packages_passes(self):
        source = "for player in set(players):\n    handle(player)\n"
        assert codes(source, TOOL) == []


class TestRPL007MutableDefault:
    def test_list_default_is_flagged(self):
        assert codes("def f(items=[]):\n    return items\n") == ["RPL007"]

    def test_dict_call_default_is_flagged(self):
        assert codes("def f(table=dict()):\n    return table\n") == [
            "RPL007"
        ]

    def test_kwonly_mutable_default_is_flagged(self):
        assert codes("def f(*, items=[]):\n    return items\n") == [
            "RPL007"
        ]

    def test_none_default_passes(self):
        source = (
            "def f(items=None):\n"
            "    return [] if items is None else items\n"
        )
        assert codes(source) == []

    def test_immutable_defaults_pass(self):
        assert codes("def f(k=3, name='x', pair=(1, 2)):\n    pass\n") == []


class TestRPL008BatchedScalarRng:
    def test_self_rng_in_batched_subclass_is_flagged(self):
        source = (
            "from repro.strategies.batched import BatchedStrategy\n"
            "class BatchedThing(BatchedStrategy):\n"
            "    def choose_probes_batch(self, round_no, lanes, a, v):\n"
            "        return [self.rng.integers(4) for _ in lanes]\n"
        )
        assert codes(source) == ["RPL008"]

    def test_batched_name_without_base_is_flagged(self):
        source = (
            "class BatchedCustom:\n"
            "    def step(self):\n"
            "        return self.rng.random()\n"
        )
        assert codes(source) == ["RPL008"]

    def test_per_lane_streams_pass(self):
        source = (
            "from repro.strategies.batched import BatchedStrategy\n"
            "class BatchedThing(BatchedStrategy):\n"
            "    def reset_lanes(self, contexts, rngs):\n"
            "        self._rngs = list(rngs)\n"
            "    def choose_probes_batch(self, round_no, lanes, a, v):\n"
            "        return [self._rngs[k].integers(4) for k in lanes]\n"
        )
        assert codes(source) == []

    def test_scalar_class_self_rng_passes(self):
        # scalar strategies own exactly one stream; self.rng is correct
        source = (
            "class Thing:\n"
            "    def act(self):\n"
            "        return self.rng.random()\n"
        )
        assert codes(source) == []

    def test_per_lane_adapter_passes(self):
        # PerLane* adapters wrap one scalar instance per lane; the
        # scalar instances' self.rng is that lane's pinned stream
        source = (
            "from repro.adversaries.batched import PerLaneAdversary\n"
            "class BatchedPerLaneCustom(PerLaneAdversary):\n"
            "    def tweak(self):\n"
            "        return self.rng\n"
        )
        assert codes(source) == []


class TestRPL009Suppressions:
    def test_reasoned_suppression_silences_the_violation(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: noqa=RPL003(interactive default)\n"
        )
        assert codes(source) == []

    def test_suppression_without_reason_is_flagged(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: noqa=RPL003\n"
        )
        # the bare directive does not suppress, and is itself flagged
        assert sorted(codes(source)) == ["RPL003", "RPL009"]

    def test_empty_reason_is_flagged(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: noqa=RPL003()\n"
        )
        assert sorted(codes(source)) == ["RPL003", "RPL009"]

    def test_unknown_code_is_flagged(self):
        source = "x = 1  # repro: noqa=RPL999(made up)\n"
        assert codes(source) == ["RPL009"]

    def test_suppression_only_covers_its_own_code(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(seed + 1)  "
            "# repro: noqa=RPL003(wrong code for this hazard)\n"
        )
        assert codes(source) == ["RPL004"]

    def test_multiple_codes_on_one_line(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  "
            "# repro: noqa=RPL003(default), RPL001(not numpy-legacy)\n"
        )
        assert codes(source) == []


class TestRPL010DensePlayerAllocation:
    #: a module path inside the billboard package (the rule's scope)
    BILLBOARD = "src/repro/billboard/example.py"

    def test_player_sized_zeros_is_flagged(self):
        source = "import numpy as np\nx = np.zeros(n, dtype=np.int64)\n"
        assert codes(source, path=self.BILLBOARD) == ["RPL010"]

    def test_attribute_player_count_is_flagged(self):
        source = (
            "import numpy as np\n"
            "x = np.full(self.n_players, -1, dtype=np.int64)\n"
        )
        assert codes(source, path=self.BILLBOARD) == ["RPL010"]

    def test_shape_keyword_is_flagged(self):
        source = "import numpy as np\nx = np.empty(shape=(n_players,))\n"
        assert codes(source, path=self.BILLBOARD) == ["RPL010"]

    def test_object_sized_allocation_passes(self):
        source = (
            "import numpy as np\n"
            "x = np.zeros(self.n_objects, dtype=np.int64)\n"
        )
        assert codes(source, path=self.BILLBOARD) == []

    def test_outside_billboard_passes(self):
        source = "import numpy as np\nx = np.zeros(n, dtype=np.int64)\n"
        assert codes(source, path=SIM) == []

    def test_reasoned_suppression_silences(self):
        source = (
            "import numpy as np\n"
            "x = np.full(self.n_players, -1)  "
            "# repro: noqa=RPL010(on-demand query result)\n"
        )
        assert codes(source, path=self.BILLBOARD) == []


class TestInfrastructure:
    def test_every_rule_has_fixture_coverage(self):
        # this module keeps one test class per per-file rule code; the
        # cross-file families are covered (positive + negative + noqa +
        # baseline) in test_reprolint_project.py
        per_file = {
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
            "RPL006", "RPL007", "RPL008", "RPL009", "RPL010",
        }
        cross_file = {"RPL011", "RPL012", "RPL013", "RPL014"}
        assert per_file | cross_file == set(RULES)
        from repro.lint.rules import PROJECT_RULES

        assert cross_file == set(PROJECT_RULES)

    def test_rules_carry_code_summary_and_hint(self):
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.summary
            assert rule.hint

    def test_critical_path_detection(self):
        assert is_critical_path("src/repro/sim/engine.py")
        assert is_critical_path("src/repro/billboard/votes.py")
        assert not is_critical_path("src/repro/analysis/stats.py")
        assert not is_critical_path("tests/test_cli.py")
        # a *file* named like a package is not inside the package
        assert not is_critical_path("sim")
        assert set(CRITICAL_PACKAGES) == {
            "sim", "billboard", "adversaries", "strategies", "faults",
        }

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n", "bad.py")

    def test_violations_are_position_sorted(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        violations = lint_source(source, TOOL)
        assert [v.code for v in violations] == ["RPL002", "RPL003"]
        assert violations[0].line < violations[1].line

    def test_select_restricts_rules(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        only = lint_source(source, TOOL, select=["RPL003"])
        assert [v.code for v in only] == ["RPL003"]

    def test_select_rejects_unknown_codes(self):
        with pytest.raises(ValueError):
            lint_source("x = 1\n", TOOL, select=["RPL777"])
