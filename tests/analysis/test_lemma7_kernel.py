"""Tests for the Lemma 7 worst-case kernel."""

import pytest

from repro.analysis.bounds import lemma7_iteration_bound, log2n
from repro.analysis.lemma7_kernel import (
    initial_candidate_count,
    worst_case_iterations,
)
from repro.errors import ConfigurationError


class TestInitialCandidates:
    def test_budget_arithmetic(self):
        # budget (1-a)n = 512, half = 256, need = ceil(8/4) = 2 -> 128 + good
        assert initial_candidate_count(1024, 0.5, 8.0) == 129

    def test_high_alpha_few_candidates(self):
        assert initial_candidate_count(1024, 0.999, 8.0) == 1


class TestKernel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            worst_case_iterations(1024, 1.0)
        with pytest.raises(ConfigurationError):
            worst_case_iterations(1, 0.5)

    def test_terminates_at_good_only(self):
        trace = worst_case_iterations(4096, 0.5)
        assert trace.candidate_sizes[-1] == 1

    def test_candidate_sizes_non_increasing(self):
        trace = worst_case_iterations(2 ** 16, 0.2)
        sizes = trace.candidate_sizes
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_budget_never_exceeded(self):
        for alpha in (0.9, 0.5, 0.1):
            trace = worst_case_iterations(2 ** 14, alpha)
            assert trace.budget_spent <= (1 - alpha) * 2 ** 14

    def test_iterations_respect_lemma7(self):
        for e in (8, 12, 16, 20, 24):
            for alpha in (0.9, 0.5, 0.2, 0.05):
                trace = worst_case_iterations(2 ** e, alpha)
                bound = lemma7_iteration_bound(2 ** e, alpha)
                assert trace.iterations <= 2.5 * bound, (e, alpha)

    def test_growth_is_sublogarithmic(self):
        small = worst_case_iterations(2 ** 10, 0.2).iterations
        large = worst_case_iterations(2 ** 30, 0.2).iterations
        log_ratio = log2n(2 ** 30) / log2n(2 ** 10)
        assert large / small < log_ratio

    def test_more_dishonest_more_iterations(self):
        mild = worst_case_iterations(2 ** 20, 0.9).iterations
        harsh = worst_case_iterations(2 ** 20, 0.05).iterations
        assert harsh >= mild

    def test_explicit_c0_override(self):
        trace = worst_case_iterations(2 ** 12, 0.5, c0=2)
        assert trace.c0 == 2
        assert trace.iterations >= 1
