"""Tests for the theory card."""

import math

import pytest

from repro.analysis.card import theory_card, theory_values
from repro.errors import ConfigurationError


class TestTheoryValues:
    def test_contains_every_claim(self):
        values = theory_values(1024, 1024, 0.5, 1 / 16)
        for fragment in ("Thm 1", "Thm 2", "Thm 4", "Lemma 7", "Thm 11",
                         "Thm 12", "trivial", "prior"):
            assert any(fragment in key for key in values), fragment

    def test_values_are_finite_for_interior_alpha(self):
        values = theory_values(1024, 1024, 0.5, 1 / 16)
        assert all(math.isfinite(v) for v in values.values())

    def test_alpha_one_gives_infinite_delta_only(self):
        values = theory_values(1024, 1024, 1.0, 1 / 16)
        infinite = [k for k, v in values.items() if math.isinf(v)]
        assert infinite == ["delta (Notation 3)"]

    def test_q0_scales_thm12(self):
        base = theory_values(512, 512, 0.5, 1 / 16, q0=1.0)
        scaled = theory_values(512, 512, 0.5, 1 / 16, q0=8.0)
        assert scaled["Thm 12 payment (at q0)"] == pytest.approx(
            8 * base["Thm 12 payment (at q0)"]
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory_values(0, 10, 0.5, 0.5)


class TestTheoryCard:
    def test_renders_parameters_in_header(self):
        card = theory_card(256, 256, 0.75, 0.125)
        assert "n=256" in card
        assert "alpha=0.75" in card

    def test_q0_shown_only_when_nontrivial(self):
        assert "q0=" not in theory_card(64, 64, 0.5, 0.5)
        assert "q0=4" in theory_card(64, 64, 0.5, 0.5, q0=4.0)

    def test_mentions_constant_free_caveat(self):
        assert "constant-free" in theory_card(64, 64, 0.5, 0.5)
