"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, mean_ci, summarize
from repro.errors import ConfigurationError


class TestMeanCI:
    def test_mean_exact(self):
        mean, _half = mean_ci(np.array([1.0, 2.0, 3.0]))
        assert mean == 2.0

    def test_single_sample_zero_width(self):
        mean, half = mean_ci(np.array([5.0]))
        assert (mean, half) == (5.0, 0.0)

    def test_constant_samples_zero_width(self):
        _mean, half = mean_ci(np.full(10, 3.0))
        assert half == 0.0

    def test_width_shrinks_with_samples(self, rng):
        small = mean_ci(rng.normal(size=20))[1]
        large = mean_ci(rng.normal(size=2000))[1]
        assert large < small

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_ci(np.array([]))

    def test_coverage_is_near_nominal(self):
        """~95% of normal-sample CIs should contain the true mean."""
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(300):
            sample = rng.normal(loc=1.5, size=30)
            mean, half = mean_ci(sample)
            hits += abs(mean - 1.5) <= half
        assert 0.88 <= hits / 300 <= 0.99


class TestBootstrap:
    def test_interval_contains_point_estimate(self, rng):
        data = rng.exponential(size=200)
        lo, hi = bootstrap_ci(data, rng)
        assert lo <= data.mean() <= hi

    def test_level_widens_interval(self, rng):
        data = rng.exponential(size=200)
        lo90, hi90 = bootstrap_ci(data, np.random.default_rng(1), level=0.9)
        lo99, hi99 = bootstrap_ci(data, np.random.default_rng(1), level=0.99)
        assert hi99 - lo99 >= hi90 - lo90

    def test_empty_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([]), rng)


class TestSummarize:
    def test_keys(self, rng):
        s = summarize(rng.normal(size=50))
        assert set(s) == {"mean", "ci95", "median", "p90", "p99", "max", "n"}

    def test_quantile_ordering(self, rng):
        s = summarize(rng.normal(size=500))
        assert s["median"] <= s["p90"] <= s["p99"] <= s["max"]

    def test_n_recorded(self):
        assert summarize(np.arange(7.0))["n"] == 7.0


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        from repro.analysis.stats import wilson_interval

        lo, hi = wilson_interval(8, 10)
        assert lo <= 0.8 <= hi

    def test_perfect_rate_has_informative_lower_bound(self):
        from repro.analysis.stats import wilson_interval

        lo, hi = wilson_interval(32, 32)
        assert hi == 1.0
        assert 0.85 < lo < 1.0  # not the useless [1, 1] of the normal CI

    def test_zero_rate_symmetric(self):
        from repro.analysis.stats import wilson_interval

        lo, hi = wilson_interval(0, 32)
        assert lo == 0.0
        assert 0.0 < hi < 0.15

    def test_narrows_with_trials(self):
        from repro.analysis.stats import wilson_interval

        lo_small, _ = wilson_interval(10, 10)
        lo_large, _ = wilson_interval(100, 100)
        assert lo_large > lo_small

    def test_validation(self):
        from repro.analysis.stats import wilson_interval

        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 4)


class TestPairedDifference:
    def test_detects_small_shift_on_shared_noise(self, rng):
        from repro.analysis.stats import paired_difference

        world = rng.normal(scale=10.0, size=50)  # huge shared variance
        a = world + 0.5 + rng.normal(scale=0.1, size=50)
        b = world + rng.normal(scale=0.1, size=50)
        out = paired_difference(a, b)
        assert out["significant"] == 1.0
        assert 0.3 < out["mean_diff"] < 0.7

    def test_no_effect_is_insignificant(self, rng):
        from repro.analysis.stats import paired_difference

        world = rng.normal(scale=10.0, size=50)
        a = world + rng.normal(scale=0.1, size=50)
        b = world + rng.normal(scale=0.1, size=50)
        assert paired_difference(a, b)["significant"] == 0.0

    def test_validation(self):
        from repro.analysis.stats import paired_difference
        import numpy as np

        with pytest.raises(ConfigurationError):
            paired_difference(np.array([1.0]), np.array([1.0, 2.0]))
