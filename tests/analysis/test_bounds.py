"""Tests for the closed-form bound curves."""

import math

import pytest

from repro.analysis.bounds import (
    async_ec04_expected_rounds,
    cor5_bound,
    delta,
    lemma7_iteration_bound,
    log2n,
    thm1_lower,
    thm2_lower,
    thm4_expected_rounds,
    thm11_rounds,
    thm12_payment_bound,
    trivial_expected_probes,
)
from repro.errors import ConfigurationError


class TestDelta:
    def test_matches_notation3(self):
        # Delta = log(1/(1-alpha) + log n)
        assert delta(0.5, 256) == pytest.approx(math.log2(2 + 8))

    def test_alpha_one_is_infinite(self):
        assert math.isinf(delta(1.0, 256))

    def test_grows_with_alpha(self):
        assert delta(0.99, 1024) > delta(0.5, 1024)

    def test_grows_with_n(self):
        assert delta(0.5, 2 ** 20) > delta(0.5, 2 ** 8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            delta(0.0, 16)


class TestTheorem4:
    def test_two_terms(self):
        n, alpha, beta = 1024, 0.5, 1 / 16
        expected = 1 / (alpha * beta * n) + log2n(n) / (
            delta(alpha, n) * alpha
        )
        assert thm4_expected_rounds(n, alpha, beta) == pytest.approx(
            expected
        )

    def test_alpha_one_drops_distill_term(self):
        n, beta = 1024, 1 / 16
        assert thm4_expected_rounds(n, 1.0, beta) == pytest.approx(
            1 / (beta * n)
        )

    def test_decreasing_in_alpha(self):
        assert thm4_expected_rounds(1024, 0.9, 1 / 16) < thm4_expected_rounds(
            1024, 0.2, 1 / 16
        )


class TestOthers:
    def test_cor5_shape(self):
        assert cor5_bound(0.5) == 2.0
        with pytest.raises(ConfigurationError):
            cor5_bound(0.0)

    def test_lemma7_finite_at_alpha_one(self):
        assert lemma7_iteration_bound(1024, 1.0) == 1.0

    def test_lemma7_sublogarithmic(self):
        n = 2 ** 20
        assert lemma7_iteration_bound(n, 0.5) < log2n(n)

    def test_thm1_scaling(self):
        assert thm1_lower(100, 100, 0.5, 0.1) == pytest.approx(
            1 / (0.5 * 0.1 * 100)
        )

    def test_thm2_min_structure(self):
        # 0.5 * min(1/alpha, 1/beta) — symmetric in (alpha, beta)
        assert thm2_lower(0.1, 0.5) == pytest.approx(1.0)
        assert thm2_lower(0.5, 0.1) == pytest.approx(1.0)
        assert thm2_lower(0.1, 0.1) == pytest.approx(5.0)

    def test_thm11_equals_async_form(self):
        assert thm11_rounds(256, 0.5, 0.25) == async_ec04_expected_rounds(
            256, 0.5, 0.25
        )

    def test_thm12_linear_in_q0(self):
        small = thm12_payment_bound(1.0, 512, 512, 0.5)
        large = thm12_payment_bound(16.0, 512, 512, 0.5)
        assert large == pytest.approx(16 * small)

    def test_thm12_rejects_sub_unit_q0(self):
        with pytest.raises(ConfigurationError):
            thm12_payment_bound(0.5, 512, 512, 0.5)

    def test_trivial_geometric(self):
        assert trivial_expected_probes(0.125) == 8.0

    def test_log2n_floor(self):
        assert log2n(1) == 1.0
        assert log2n(2) == 1.0
        assert log2n(1024) == 10.0
