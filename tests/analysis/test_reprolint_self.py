"""The pytest-collected determinism-contract gate.

This is the check CI and local runs share: the repo's own ``src`` and
``tests`` trees must lint clean against the committed baseline. It also
pins the gate's teeth — a seeded violation (the historical
``args.seed + 1`` bug) must fail, and fixing baselined debt without
updating the baseline must fail too (the shrink has to be committed).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import (
    compare_to_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import DEFAULT_BASELINE, main

ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
BASELINE = os.path.join(ROOT, DEFAULT_BASELINE)


def repo_paths():
    return [os.path.join(ROOT, "src"), os.path.join(ROOT, "tests")]


class TestRepoIsClean:
    def test_repo_lints_clean_against_committed_baseline(self):
        cwd = os.getcwd()
        os.chdir(ROOT)
        try:
            drift = compare_to_baseline(
                lint_paths(["src", "tests"]), load_baseline(BASELINE)
            )
        finally:
            os.chdir(cwd)
        assert not drift.new, "new determinism-contract violations:\n" + (
            "\n".join(v.render() for v in drift.new)
        )
        assert not drift.stale, (
            "baselined violations were fixed without regenerating the "
            "baseline (run `python -m repro.lint --write-baseline`):\n"
            + "\n".join(drift.stale)
        )

    def test_baseline_entries_all_still_matched(self):
        # the suppressed count equals the committed debt: nothing silently
        # dropped, nothing double-counted
        cwd = os.getcwd()
        os.chdir(ROOT)
        try:
            baseline = load_baseline(BASELINE)
            drift = compare_to_baseline(
                lint_paths(["src", "tests"]), baseline
            )
        finally:
            os.chdir(cwd)
        assert drift.suppressed == baseline.total

    def test_every_inline_suppression_carries_a_reason(self):
        # RPL009 runs unconditionally, so a clean tree implies every
        # `# repro: noqa` in it has a reason; make that explicit here
        cwd = os.getcwd()
        os.chdir(ROOT)
        try:
            bare = [
                v
                for v in lint_paths(["src", "tests"], select=["RPL009"])
            ]
        finally:
            os.chdir(cwd)
        assert bare == []


class TestGateHasTeeth:
    def test_seeded_violation_fails_the_gate(self, tmp_path):
        # reintroduce the exact bug reprolint caught on day one
        bad = tmp_path / "cli_regression.py"
        bad.write_text(
            "import numpy as np\n"
            "def cmd_show(args):\n"
            "    rng = np.random.default_rng(args.seed + 1)\n"
            "    adversary_rng = np.random.default_rng(args.seed + 2)\n"
            "    return rng, adversary_rng\n"
        )
        violations = lint_paths([str(bad)])
        assert [v.code for v in violations] == ["RPL004", "RPL004"]
        drift = compare_to_baseline(violations, load_baseline(BASELINE))
        assert len(drift.new) == 2

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert main([str(clean), "--no-baseline"]) == 0
        assert main([str(dirty), "--no-baseline"]) == 1
        assert main(["--list-rules"]) == 0
        assert main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_stale_baseline_fails_until_regenerated(self, tmp_path, capsys):
        dirty = tmp_path / "module.py"
        dirty.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), lint_paths([str(dirty)]))

        # baselined: the violation is inventoried, the gate passes
        assert main([str(dirty), "--baseline", str(baseline)]) == 0

        # debt paid but ledger not updated: the gate must fail
        dirty.write_text("import numpy as np\nrng = np.random.default_rng(3)\n")
        assert main([str(dirty), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline" in out

        # regenerating the baseline commits the shrink
        write_baseline(str(baseline), lint_paths([str(dirty)]))
        assert main([str(dirty), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_json_report_shape(self, tmp_path, capsys):
        dirty = tmp_path / "module.py"
        dirty.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        code = main([str(dirty), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "reprolint"
        assert payload["clean"] is False
        assert payload["counts"] == {"RPL003": 1}
        (violation,) = payload["violations"]
        assert violation["code"] == "RPL003"
        assert violation["hint"]
        assert violation["fingerprint"].count("::") == 2

    def test_module_entry_point_runs(self):
        # `python -m repro.lint` is the documented local/CI invocation
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests"],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout


class TestBaselineFileHygiene:
    def test_baseline_is_valid_and_versioned(self):
        with open(BASELINE) as handle:
            data = json.load(handle)
        assert data["version"] == 1
        assert data["entries"], "an empty baseline should simply be deleted"

    def test_baseline_names_only_real_files(self):
        with open(BASELINE) as handle:
            data = json.load(handle)
        for entry in data["entries"]:
            assert os.path.exists(os.path.join(ROOT, entry["path"])), entry

    @pytest.mark.parametrize("field", ["fingerprint", "path", "code", "count"])
    def test_baseline_entries_carry_review_fields(self, field):
        with open(BASELINE) as handle:
            data = json.load(handle)
        for entry in data["entries"]:
            assert field in entry
