"""The pytest-collected determinism-contract gate.

This is the check CI and local runs share: the repo's own ``src`` and
``tests`` trees must lint clean — and since the historical debt was paid
down to zero, clean means *entry-free*, with no committed baseline file
at all. It also pins the gate's teeth — a seeded violation (the
historical ``args.seed + 1`` bug) must fail, and fixing baselined debt
without updating the baseline must fail too (the shrink has to be
committed).
"""

import json
import os
import subprocess
import sys

from repro.lint import (
    compare_to_baseline,
    lint_paths,
    lint_project,
    write_baseline,
)
from repro.lint.baseline import Baseline
from repro.lint.cli import DEFAULT_BASELINE, main

ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
BASELINE = os.path.join(ROOT, DEFAULT_BASELINE)


def repo_paths():
    return [os.path.join(ROOT, "src"), os.path.join(ROOT, "tests")]


class TestRepoIsClean:
    def test_repo_lints_entry_free(self):
        # every historical baseline entry has been paid down; the tree
        # must lint clean with NO baseline at all
        cwd = os.getcwd()
        os.chdir(ROOT)
        try:
            drift = compare_to_baseline(
                lint_paths(["src", "tests"]), Baseline()
            )
        finally:
            os.chdir(cwd)
        assert not drift.new, "new determinism-contract violations:\n" + (
            "\n".join(v.render() for v in drift.new)
        )
        assert drift.suppressed == 0

    def test_repo_clean_under_project_rules(self):
        # the cross-file families (RPL011-RPL014) must hold repo-wide,
        # not just the per-file rules lint_paths covers
        cwd = os.getcwd()
        os.chdir(ROOT)
        try:
            violations = lint_project(["src", "tests"], cache_path=None)
        finally:
            os.chdir(cwd)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_every_inline_suppression_carries_a_reason(self):
        # RPL009 runs unconditionally, so a clean tree implies every
        # `# repro: noqa` in it has a reason; make that explicit here
        cwd = os.getcwd()
        os.chdir(ROOT)
        try:
            bare = [
                v
                for v in lint_paths(["src", "tests"], select=["RPL009"])
            ]
        finally:
            os.chdir(cwd)
        assert bare == []


class TestGateHasTeeth:
    def test_seeded_violation_fails_the_gate(self, tmp_path):
        # reintroduce the exact bug reprolint caught on day one
        bad = tmp_path / "cli_regression.py"
        bad.write_text(
            "import numpy as np\n"
            "def cmd_show(args):\n"
            "    rng = np.random.default_rng(args.seed + 1)\n"
            "    adversary_rng = np.random.default_rng(args.seed + 2)\n"
            "    return rng, adversary_rng\n"
        )
        violations = lint_paths([str(bad)])
        assert [v.code for v in violations] == ["RPL004", "RPL004"]
        drift = compare_to_baseline(violations, Baseline())
        assert len(drift.new) == 2

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert main([str(clean), "--no-baseline"]) == 0
        assert main([str(dirty), "--no-baseline"]) == 1
        assert main(["--list-rules"]) == 0
        assert main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_stale_baseline_fails_until_regenerated(self, tmp_path, capsys):
        dirty = tmp_path / "module.py"
        dirty.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), lint_paths([str(dirty)]))

        # baselined: the violation is inventoried, the gate passes
        assert main([str(dirty), "--baseline", str(baseline)]) == 0

        # debt paid but ledger not updated: the gate must fail
        dirty.write_text("import numpy as np\nrng = np.random.default_rng(3)\n")
        assert main([str(dirty), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline" in out

        # regenerating the baseline commits the shrink
        write_baseline(str(baseline), lint_paths([str(dirty)]))
        assert main([str(dirty), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_json_report_shape(self, tmp_path, capsys):
        dirty = tmp_path / "module.py"
        dirty.write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        code = main([str(dirty), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["tool"] == "reprolint"
        assert payload["clean"] is False
        assert payload["counts"] == {"RPL003": 1}
        (violation,) = payload["violations"]
        assert violation["code"] == "RPL003"
        assert violation["hint"]
        assert violation["fingerprint"].count("::") == 2

    def test_module_entry_point_runs(self):
        # `python -m repro.lint` is the documented local/CI invocation
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "tests"],
            cwd=ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout


class TestBaselineRetired:
    """The committed baseline shrank to zero and was deleted.

    New violations must be *fixed* (or carry a reasoned inline noqa),
    not baselined; reintroducing the file means new debt slipped in.
    """

    def test_no_baseline_file_is_committed(self):
        assert not os.path.exists(BASELINE), (
            "reprolint-baseline.json reappeared — fix the violations "
            "instead of inventorying new debt"
        )

    def test_cli_discovers_absence_gracefully(self, tmp_path, capsys):
        # running from a directory with no baseline file must behave
        # exactly like --no-baseline, not error out
        clean = tmp_path / "clean.py"
        clean.write_text("import numpy as np\n")
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            assert main([str(clean)]) == 0
        finally:
            os.chdir(cwd)
        capsys.readouterr()
