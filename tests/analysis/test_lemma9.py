"""Executable verification of Lemma 9 — including the erratum.

The reproduction found that Lemma 9 *as printed* is false in general
(see the erratum in :mod:`repro.analysis.lemma9`); what the Theorem 4
proof needs is the budget-capped form, which these tests verify
property-based over random trajectories, the proof's extremal
sequences, and worst-case kernel traces.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lemma9 import (
    application_a,
    extremal_sigma,
    f_sigma,
    g_a,
    lemma9_bound,
    lemma9_capped_holds,
    lemma9_holds,
)
from repro.errors import ConfigurationError

ratios = st.lists(st.floats(min_value=0.05, max_value=1.0), max_size=12)


def sequence_from(c0, ratio_list):
    sigma = [c0]
    for r in ratio_list:
        nxt = max(1, int(sigma[-1] * r))
        sigma.append(min(nxt, sigma[-1]))
    return sigma


class TestDefinitions:
    def test_f_of_constant_sequence(self):
        assert f_sigma([4, 4, 4]) == pytest.approx(2.0)

    def test_f_of_singleton_is_zero(self):
        assert f_sigma([7]) == 0.0

    def test_g_a_singleton(self):
        assert g_a([2], 0.25) == pytest.approx(0.5)

    def test_application_a(self):
        import math

        assert application_a(64) == pytest.approx(math.exp(-4.0))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            f_sigma([])
        with pytest.raises(ConfigurationError):
            f_sigma([2, 3])  # increasing
        with pytest.raises(ConfigurationError):
            f_sigma([2, 0])
        with pytest.raises(ConfigurationError):
            g_a([2, 1], 1.0)
        with pytest.raises(ConfigurationError):
            application_a(0)


class TestErratum:
    def test_printed_form_counterexample(self):
        """The counterexample recorded in the erratum: sigma = (4,2,1),
        a = 1/2 violates the inequality as printed."""
        sigma, a = [4, 2, 1], 0.5
        assert f_sigma(sigma) == pytest.approx(1.0)
        assert g_a(sigma, a) > lemma9_bound(sigma, a)
        assert not lemma9_holds(sigma, a)

    def test_printed_form_holds_for_small_a_on_same_sigma(self):
        """At the tiny a the application uses, the same sigma is fine."""
        assert lemma9_holds([4, 2, 1], 0.01)

    def test_capped_form_repairs_the_counterexample(self):
        # the application's cap is 8(1-alpha) <= 8
        assert lemma9_capped_holds([4, 2, 1], 0.5, cap=8.0)


class TestCappedForm:
    """The budget-capped form of the erratum, in the Lemma 10 regime:
    a = e^{-n/16}, c0 <= 4n/k2 (k2 >= 8), f(sigma) <= 8."""

    @given(
        st.sampled_from([16, 64, 256, 1024, 4096]),
        st.integers(min_value=1, max_value=512),
        ratios,
    )
    @settings(max_examples=300, deadline=None)
    def test_holds_on_random_trajectories(self, n, c0_raw, ratio_list):
        k2 = 8
        c0 = min(c0_raw, max(1, int(4 * n / k2)))
        sigma = sequence_from(c0, ratio_list)
        if f_sigma(sigma) > 8.0:
            sigma = sigma[:1]
        assert lemma9_capped_holds(sigma, application_a(n), cap=8.0), sigma

    @given(
        st.sampled_from([64, 256, 1024]),
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=0.0, max_value=7.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_holds_on_extremal_sequences(self, n, c0, budget):
        sigma = extremal_sigma(c0, budget)
        assert f_sigma(sigma) <= budget + 1e-9
        assert lemma9_capped_holds(sigma, application_a(n), cap=8.0), sigma

    def test_tight_at_the_all_ones_chain(self):
        """Equality case: nine 1s have f = 8 and g = 9a = 9·a^{1/c0}."""
        sigma = [1] * 9
        a = application_a(64)
        assert g_a(sigma, a) == pytest.approx(9 * a)
        assert lemma9_capped_holds(sigma, a, cap=8.0)

    def test_holds_on_kernel_traces(self):
        """Candidate trajectories from the Lemma 7 worst-case kernel are
        exactly the shapes the adversary can realize; the capped form
        must cover them all."""
        from repro.analysis.lemma7_kernel import worst_case_iterations

        # n caps at 4096: application_a(n) = e^{-n/16} underflows float64
        # to exactly 0 past n ~ 11000
        for n in (256, 1024, 4096):
            for alpha in (0.9, 0.5, 0.2):
                trace = worst_case_iterations(n, alpha)
                sigma = [c for c in trace.candidate_sizes if c > 0]
                assert lemma9_capped_holds(
                    sigma, application_a(n), cap=8.0
                ), (n, alpha, sigma)


class TestExtremalConstruction:
    def test_integer_budget_all_equal(self):
        assert extremal_sigma(10, 3.0) == [10, 10, 10, 10]

    def test_fractional_budget_tail(self):
        sigma = extremal_sigma(10, 2.5)
        assert sigma == [10, 10, 10, 5]
        assert f_sigma(sigma) == pytest.approx(2.5)

    def test_tiny_c0_drops_unrealizable_tail(self):
        assert extremal_sigma(1, 1.5) == [1, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            extremal_sigma(0, 1.0)
        with pytest.raises(ConfigurationError):
            extremal_sigma(5, -1.0)
