"""Tests for the Theorem 13 no-local-testing variant."""

import numpy as np

from repro.adversaries.flood import FloodAdversary
from repro.billboard.votes import VoteMode
from repro.core.no_local_testing import NoLocalTestingDistill
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import valued_instance


def run_once(n=128, beta=1 / 16, alpha=0.6, seed=3, adversary=None):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = valued_instance(
        n=n, m=n, beta=beta, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    strategy = NoLocalTestingDistill()
    engine = SynchronousEngine(
        inst,
        strategy,
        adversary=adversary,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(vote_mode=VoteMode.MUTABLE),
    )
    return inst, strategy, engine, engine.run()


class TestPrescribedLength:
    def test_runs_exactly_prescribed_rounds(self):
        _inst, strategy, _engine, metrics = run_once()
        assert metrics.rounds == strategy.prescribed_rounds

    def test_nobody_halts_early(self):
        inst, _strategy, _engine, metrics = run_once()
        assert (metrics.halted_round[inst.honest_mask] == -1).all()

    def test_prescribed_rounds_scale_with_log_n(self):
        _i, s_small, _e, _m = run_once(n=64)
        _i, s_large, _e, _m = run_once(n=1024)
        assert s_large.prescribed_rounds > s_small.prescribed_rounds
        assert s_large.prescribed_rounds < 4 * s_small.prescribed_rounds


class TestVotes:
    def test_votes_are_best_so_far(self):
        inst, _strategy, engine, _metrics = run_once(seed=11)
        # per player, the sequence of reported vote values must increase
        for player in inst.honest_ids:
            values = [
                p.reported_value
                for p in engine.board.posts(player=int(player))
                if p.is_vote
            ]
            assert values == sorted(values)
            assert len(values) >= 1  # first probe is always a new best

    def test_current_vote_is_highest_probed(self):
        inst, _strategy, engine, _metrics = run_once(seed=13)
        ledger = engine.board.ledger
        votes = ledger.current_vote_array()
        for player in inst.honest_ids:
            vote_posts = [
                p
                for p in engine.board.posts(player=int(player))
                if p.is_vote
            ]
            best = max(p.reported_value for p in vote_posts)
            assert inst.space.values[votes[player]] == best


class TestSuccess:
    def test_everyone_holds_good_whp(self):
        successes = 0
        for seed in range(5):
            inst, _s, _e, metrics = run_once(seed=(100, seed))
            successes += metrics.all_honest_satisfied
        assert successes >= 4

    def test_works_under_flood(self):
        _inst, _s, _e, metrics = run_once(
            adversary=FloodAdversary(), seed=31
        )
        assert metrics.satisfied_fraction >= 0.95
