"""Tests for the Section 1.2 three-phase illustration."""

import math

import numpy as np
import pytest

from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.flood import FloodAdversary
from repro.core.three_phase import ThreePhaseStrategy
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import planted_instance, valued_instance


def run_once(n=256, seed=5, adversary=None):
    sqrt_n = math.sqrt(n)
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=n, m=n, beta=1.0 / n, alpha=1.0 - sqrt_n / n,
        rng=np.random.default_rng(world_ss),
    )
    strategy = ThreePhaseStrategy()
    engine = SynchronousEngine(
        inst,
        strategy,
        adversary=adversary,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(max_rounds=64, strict=False),
    )
    return inst, engine.run()


class TestStructure:
    def test_three_candidate_sets_logged(self):
        # an adversary keeps |C2| > 1 so the run survives into phase 3
        _inst, metrics = run_once(adversary=FloodAdversary())
        assert len(metrics.strategy_info["candidate_sets"]) == 3

    def test_early_finish_skips_phase_three(self):
        # without an adversary C2 is usually {the good object}: everyone
        # probes it in phase 2 and the engine stops before phase 3
        _inst, metrics = run_once()
        assert len(metrics.strategy_info["candidate_sets"]) <= 3

    def test_c1_is_everything(self):
        inst, metrics = run_once()
        assert metrics.strategy_info["candidate_sizes"][0] == inst.m

    def test_run_length_is_seven_rounds_max(self):
        _inst, metrics = run_once()
        assert metrics.rounds <= 7

    def test_thresholds_match_paper(self):
        _inst, metrics = run_once(n=1024)
        th = metrics.strategy_info["thresholds"]
        assert th[0] == 0.0
        assert th[1] == 1.0
        assert th[2] == pytest.approx(math.sqrt(1024) / 2)

    def test_requires_local_testing(self):
        inst = valued_instance(
            n=16, m=16, beta=0.25, alpha=0.75,
            rng=np.random.default_rng(0),
        )
        engine = SynchronousEngine(inst, ThreePhaseStrategy())
        with pytest.raises(ValueError):
            engine.run()


class TestClaims:
    def test_c2_bounded_under_flood(self):
        hits = 0
        for seed in range(6):
            inst, metrics = run_once(
                seed=(200, seed), adversary=FloodAdversary()
            )
            c2 = metrics.strategy_info["candidate_sizes"][1]
            assert c2 <= math.sqrt(inst.n) + 2
            good = int(inst.space.good_ids[0])
            hits += good in metrics.strategy_info["candidate_sets"][1]
        # P[i0 in C2] >= 1 - 1/e per the paper; 6 trials all missing has
        # probability < (1/e)^... allow 1 miss at most out of caution
        assert hits >= 4

    def test_c3_bounded_under_concentration(self):
        n = 256
        adversary = ConcentrateAdversary(
            n_targets=3, votes_each=math.ceil(math.sqrt(n) / 2)
        )
        _inst, metrics = run_once(n=n, seed=300, adversary=adversary)
        assert metrics.strategy_info["candidate_sizes"][2] <= 3

    def test_most_players_finish(self):
        _inst, metrics = run_once(seed=400, adversary=FloodAdversary())
        # the good object usually survives to C3 and gets swept
        assert metrics.satisfied_fraction >= 0.5
