"""Tests for the staged-strategy machinery."""

import numpy as np
import pytest

from repro.core.distill import DistillStrategy
from repro.core.staged import Stage, StagedStrategy
from repro.errors import ConfigurationError
from repro.sim.engine import SynchronousEngine
from repro.strategies.base import StrategyContext
from repro.world.generators import planted_instance


class TwoStage(StagedStrategy):
    name = "two-stage"

    def build_stages(self, ctx):
        return [
            Stage(DistillStrategy(), budget_rounds=4, label="first"),
            Stage(DistillStrategy(), budget_rounds=100000, label="second"),
        ]


class NoStage(StagedStrategy):
    name = "no-stage"

    def build_stages(self, ctx):
        return []


class TestStageValidation:
    def test_stage_needs_two_rounds(self):
        with pytest.raises(ConfigurationError):
            Stage(DistillStrategy(), budget_rounds=1)

    def test_empty_stage_list_rejected(self):
        inst = planted_instance(
            n=8, m=8, beta=0.25, alpha=1.0, rng=np.random.default_rng(0)
        )
        engine = SynchronousEngine(
            inst, NoStage(), rng=np.random.default_rng(1)
        )
        with pytest.raises(ConfigurationError):
            engine.run()


class TestStageSequencing:
    def run_two_stage(self, beta=1 / 8):
        inst = planted_instance(
            n=16, m=16, beta=beta, alpha=1.0,
            rng=np.random.default_rng(3),
        )
        strategy = TwoStage()
        engine = SynchronousEngine(
            inst, strategy, rng=np.random.default_rng(4)
        )
        return strategy, engine.run()

    def test_run_completes_and_reports_stages(self):
        strategy, metrics = self.run_two_stage()
        assert metrics.all_honest_satisfied
        info = metrics.strategy_info
        assert info["stages_entered"] >= 1
        assert info["stage_labels"][0] == "first"

    def test_second_stage_rebased_to_boundary(self):
        strategy, metrics = self.run_two_stage(beta=1 / 16)
        if metrics.rounds > 4:  # run crossed into stage 2
            inner = strategy._stages[1].strategy
            assert inner.tracker.phase_start >= 4

    def test_finished_after_all_stages(self):
        class Shorty(StagedStrategy):
            name = "shorty"

            def build_stages(self, ctx):
                return [Stage(DistillStrategy(), budget_rounds=2)]

        strategy = Shorty()
        ctx = StrategyContext(8, 8, 1.0, 0.25, good_threshold=0.5)
        strategy.reset(ctx, np.random.default_rng(0))
        assert not strategy.finished(0)
        assert strategy.finished(2)
