"""Tests for the Theorem 12 cost-class algorithm."""

import numpy as np
import pytest

from repro.adversaries.flood import FloodAdversary
from repro.core.multicost import MulticostStrategy, run_multicost
from repro.errors import ConfigurationError
from repro.strategies.base import StrategyContext
from repro.world.generators import cost_class_instance


def make_instance(good_class=1, n=64, sizes=(16, 16, 16), seed=0):
    return cost_class_instance(
        n=n,
        class_sizes=list(sizes),
        good_class=good_class,
        alpha=0.75,
        rng=np.random.default_rng(seed),
    )


class TestStrategyConstruction:
    def test_rejects_empty_class_list(self):
        with pytest.raises(ConfigurationError):
            MulticostStrategy([])

    def test_skips_empty_classes(self):
        strategy = MulticostStrategy(
            [np.array([0, 1]), np.array([], dtype=np.int64), np.array([2])]
        )
        ctx = StrategyContext(16, 3, 0.75, 0.5, good_threshold=0.5)
        stages = strategy.build_stages(ctx)
        assert len(stages) == 2

    def test_all_empty_rejected(self):
        strategy = MulticostStrategy([np.array([], dtype=np.int64)])
        ctx = StrategyContext(16, 1, 0.75, 0.5, good_threshold=0.5)
        with pytest.raises(ConfigurationError):
            strategy.build_stages(ctx)

    def test_stage_universes_are_the_classes(self):
        classes = [np.array([0, 1]), np.array([2, 3])]
        strategy = MulticostStrategy(classes)
        ctx = StrategyContext(16, 4, 0.75, 0.5, good_threshold=0.5)
        stages = strategy.build_stages(ctx)
        assert np.array_equal(stages[0].strategy._universe, [0, 1])
        assert np.array_equal(stages[1].strategy._universe, [2, 3])


class TestRunMulticost:
    def test_everyone_finds_good(self):
        inst = make_instance()
        out = run_multicost(inst, rng=np.random.default_rng(1))
        assert out.metrics.all_honest_satisfied

    def test_q0_detected(self):
        inst = make_instance(good_class=2)
        out = run_multicost(inst, rng=np.random.default_rng(1))
        assert out.q0 == 4.0

    def test_cheap_good_means_cheap_search(self):
        cheap = run_multicost(
            make_instance(good_class=0), rng=np.random.default_rng(2)
        )
        dear = run_multicost(
            make_instance(good_class=2), rng=np.random.default_rng(2)
        )
        assert cheap.mean_payment < dear.mean_payment

    def test_payment_fields_consistent(self):
        out = run_multicost(
            make_instance(), rng=np.random.default_rng(3)
        )
        assert out.max_payment >= out.mean_payment
        assert out.payment_over_bound == pytest.approx(
            out.mean_payment / out.bound_payment
        )

    def test_works_under_flood(self):
        inst = make_instance(good_class=1, seed=5)
        out = run_multicost(
            inst,
            rng=np.random.default_rng(6),
            adversary=FloodAdversary(),
            adversary_rng=np.random.default_rng(7),
        )
        assert out.metrics.all_honest_satisfied

    def test_never_probes_beyond_good_class_plus_budget(self):
        """Cheap-first ordering: with the good object in class 0 the run
        should end well before the expensive classes' budgets."""
        inst = make_instance(good_class=0, sizes=(16, 16, 16))
        out = run_multicost(inst, rng=np.random.default_rng(8))
        # nobody paid for an expensive probe after the class-0 success:
        # max single-object cost is 4, so payments stay modest
        assert out.max_payment < 64
