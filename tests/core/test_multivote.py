"""Tests for the Section 4.1 multi-vote / erroneous-vote extension."""

import numpy as np
import pytest

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.votes import VoteMode
from repro.core.multivote import MultiVoteDistill
from repro.errors import ConfigurationError
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import planted_instance


def run_once(f=3, error_rate=0.1, alpha=0.75, seed=7):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=64, m=64, beta=1 / 8, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    engine = SynchronousEngine(
        inst,
        MultiVoteDistill(f=f, error_rate=error_rate),
        adversary=SplitVoteAdversary(votes_per_identity=f),
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(
            vote_mode=VoteMode.MULTI, max_votes_per_player=f
        ),
    )
    return inst, engine, engine.run()


class TestValidation:
    def test_rejects_f_below_one(self):
        with pytest.raises(ConfigurationError):
            MultiVoteDistill(f=0)

    def test_rejects_bad_error_rate(self):
        with pytest.raises(ConfigurationError):
            MultiVoteDistill(f=2, error_rate=1.0)

    def test_errors_need_spare_vote(self):
        with pytest.raises(ConfigurationError):
            MultiVoteDistill(f=1, error_rate=0.1)


class TestBehaviour:
    def test_run_succeeds_with_errors(self):
        _inst, _engine, metrics = run_once()
        assert metrics.all_honest_satisfied

    def test_erroneous_votes_do_not_halt(self):
        inst, engine, metrics = run_once(error_rate=0.3, seed=13)
        honest = inst.honest_mask
        # every honest player eventually halted on a genuinely good probe
        assert (metrics.satisfied_round[honest] >= 0).all()
        # and some erroneous votes exist on the board (rate 0.3 makes this
        # overwhelmingly likely): a vote for a bad object by an honest player
        bad_honest_votes = [
            p
            for p in engine.board.vote_posts()
            if inst.honest_mask[p.player]
            and not inst.space.good_mask[p.object_id]
        ]
        assert bad_honest_votes

    def test_honest_effective_votes_capped_at_f(self):
        inst, engine, _metrics = run_once(f=2, error_rate=0.4, seed=17)
        ledger = engine.board.ledger
        for player in inst.honest_ids:
            assert len(ledger.votes_of(int(player))) <= 2

    def test_last_genuine_vote_still_effective(self):
        """The f-1 cap on erroneous votes keeps one slot for the real
        find, so every satisfied honest player's good object is among its
        effective votes."""
        inst, engine, metrics = run_once(f=2, error_rate=0.4, seed=19)
        ledger = engine.board.ledger
        for player in inst.honest_ids:
            if metrics.satisfied_round[player] >= 0:
                targets = ledger.votes_of(int(player))
                assert any(
                    inst.space.good_mask[obj] for obj in targets
                ), f"player {player} has no effective good vote"

    def test_zero_error_rate_is_plain_distill_behaviour(self):
        inst, engine, metrics = run_once(f=1, error_rate=0.0, seed=23)
        honest_votes = [
            p
            for p in engine.board.vote_posts()
            if inst.honest_mask[p.player]
        ]
        assert all(
            inst.space.good_mask[p.object_id] for p in honest_votes
        )
