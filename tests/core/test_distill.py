"""Behavioural tests for Algorithm DISTILL."""

import numpy as np
import pytest

from repro.adversaries.flood import FloodAdversary
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.post import PostKind
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.sim.engine import SynchronousEngine
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance, valued_instance


def engine_for(n=64, m=64, beta=1 / 8, alpha=0.75, adversary=None,
               world_seed=5, seed=6, **engine_kwargs):
    inst = planted_instance(
        n=n, m=m, beta=beta, alpha=alpha,
        rng=np.random.default_rng(world_seed),
    )
    honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(2)
    return inst, SynchronousEngine(
        inst,
        DistillStrategy(),
        adversary=adversary,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        **engine_kwargs,
    )


class TestTermination:
    def test_terminates_with_silent_adversary(self):
        _inst, engine = engine_for(adversary=SilentAdversary())
        metrics = engine.run()
        assert metrics.all_honest_satisfied

    def test_terminates_with_flood_adversary(self):
        _inst, engine = engine_for(adversary=FloodAdversary(), alpha=0.3)
        metrics = engine.run()
        assert metrics.all_honest_satisfied

    def test_terminates_with_split_vote_adversary(self):
        _inst, engine = engine_for(adversary=SplitVoteAdversary(), alpha=0.3)
        metrics = engine.run()
        assert metrics.all_honest_satisfied

    def test_single_good_object_found(self):
        _inst, engine = engine_for(beta=1 / 64, alpha=0.5,
                                   adversary=SplitVoteAdversary())
        metrics = engine.run()
        assert metrics.all_honest_satisfied

    def test_alpha_one_world(self):
        _inst, engine = engine_for(alpha=1.0)
        assert engine.run().all_honest_satisfied

    def test_tiny_world(self):
        inst = planted_instance(
            n=2, m=2, beta=0.5, alpha=1.0, rng=np.random.default_rng(0)
        )
        engine = SynchronousEngine(
            inst, DistillStrategy(), rng=np.random.default_rng(1)
        )
        assert engine.run().all_honest_satisfied

    def test_m_much_larger_than_n(self):
        inst = planted_instance(
            n=16, m=1024, beta=1 / 64, alpha=0.75,
            rng=np.random.default_rng(2),
        )
        engine = SynchronousEngine(
            inst, DistillStrategy(), rng=np.random.default_rng(3)
        )
        assert engine.run().all_honest_satisfied


class TestProtocolInvariants:
    def test_honest_players_vote_at_most_once(self):
        inst, engine = engine_for()
        engine.run()
        for player in inst.honest_ids:
            posts = engine.board.posts(
                kind=PostKind.VOTE, player=int(player)
            )
            assert len(posts) <= 1

    def test_honest_votes_are_good_objects(self):
        inst, engine = engine_for(adversary=FloodAdversary())
        engine.run()
        for post in engine.board.vote_posts():
            if inst.honest_mask[post.player]:
                assert inst.space.good_mask[post.object_id]

    def test_players_halt_after_voting(self):
        inst, engine = engine_for()
        metrics = engine.run()
        honest = inst.honest_mask
        assert np.array_equal(
            metrics.halted_round[honest], metrics.satisfied_round[honest]
        )

    def test_probes_stop_at_halt(self):
        inst, engine = engine_for()
        metrics = engine.run()
        honest = inst.honest_mask
        # a player satisfied in round r probed at most r+1 times
        assert (
            metrics.probes[honest] <= metrics.satisfied_round[honest] + 1
        ).all()

    def test_info_reports_attempts(self):
        _inst, engine = engine_for()
        metrics = engine.run()
        info = metrics.strategy_info
        assert info["algorithm"] == "distill"
        assert info["attempt_count"] >= 1
        assert info["total_iterations"] >= 0

    def test_candidate_sizes_non_increasing_within_attempt(self):
        _inst, engine = engine_for(adversary=SplitVoteAdversary(), alpha=0.4)
        metrics = engine.run()
        for attempt in metrics.strategy_info["attempts"]:
            sizes = attempt["c_sizes"]
            # skip the C0 entry; iteration entries must be non-increasing
            assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestConfiguration:
    def test_requires_local_testing(self):
        inst = valued_instance(
            n=16, m=16, beta=0.25, alpha=0.75,
            rng=np.random.default_rng(0),
        )
        engine = SynchronousEngine(inst, DistillStrategy())
        with pytest.raises(ValueError):
            engine.run()

    def test_custom_parameters_change_schedule(self):
        _inst, e1 = engine_for(seed=9)
        _inst, e2 = engine_for(seed=9)
        e2.strategy = DistillStrategy(DistillParameters(k1=1.0, k2=4.0))
        m1, m2 = e1.run(), e2.run()
        assert m1.strategy_info["k2"] != m2.strategy_info["k2"]


class TestStatisticalBehaviour:
    def test_near_constant_cost_when_mostly_honest(self):
        """Corollary 5's regime: cost stays small as n doubles."""
        costs = []
        for n in (64, 256):
            res = run_trials(
                lambda rng, n=n: planted_instance(
                    n=n, m=n, beta=1 / 16, alpha=0.95, rng=rng
                ),
                DistillStrategy,
                make_adversary=SplitVoteAdversary,
                n_trials=12,
                seed=21,
            )
            costs.append(res.mean("mean_individual_probes"))
        assert costs[1] <= 3.0 * costs[0]

    def test_adversary_costs_more_than_silence(self):
        def run_with(adv_factory, seed):
            return run_trials(
                lambda rng: planted_instance(
                    n=128, m=128, beta=1 / 16, alpha=0.4, rng=rng
                ),
                DistillStrategy,
                make_adversary=adv_factory,
                n_trials=12,
                seed=seed,
            ).mean("mean_individual_rounds")

        silent = run_with(SilentAdversary, 31)
        flooded = run_with(FloodAdversary, 31)
        assert flooded > silent
