"""Tests for the Section 5.1 guessing-alpha wrapper."""


from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.alpha_doubling import AlphaDoublingStrategy
from repro.sim.runner import run_trials
from repro.strategies.base import StrategyContext
from repro.world.generators import planted_instance


class TestStagePlan:
    def plan(self, n=256, beta=1 / 16):
        strategy = AlphaDoublingStrategy()
        ctx = StrategyContext(
            n=n, m=n, alpha=0.37, beta=beta, good_threshold=0.5
        )
        return strategy.build_stages(ctx)

    def test_guesses_halve(self):
        stages = self.plan()
        assert stages[0].strategy._alpha_override == 1.0
        assert stages[1].strategy._alpha_override == 0.5
        assert stages[2].strategy._alpha_override == 0.25

    def test_covers_down_to_one_over_n(self):
        stages = self.plan(n=256)
        last_guess = stages[-1].strategy._alpha_override
        assert last_guess <= 1 / 256

    def test_budgets_grow_geometrically_in_tail(self):
        stages = self.plan()
        budgets = [s.budget_rounds for s in stages]
        # the attempt-length floor can flatten early stages; the tail of
        # the schedule must grow roughly x2 per stage
        tail = budgets[-4:]
        assert all(1.5 <= b / a for a, b in zip(tail, tail[1:]))

    def test_budget_covers_one_attempt(self):
        from repro.core.distill_hp import hp_parameters

        stages = self.plan()
        for i, stage in enumerate(stages):
            guess = 2.0 ** (-i)
            params = hp_parameters(256, alpha=guess)
            attempt = params.attempt_rounds_estimate(256, 0.37, 1 / 16)
            assert stage.budget_rounds >= attempt


class TestBehaviour:
    def test_succeeds_without_knowing_alpha(self):
        for alpha in (0.8, 0.25):
            res = run_trials(
                lambda rng, alpha=alpha: planted_instance(
                    n=128, m=128, beta=1 / 16, alpha=alpha, rng=rng
                ),
                AlphaDoublingStrategy,
                make_adversary=SplitVoteAdversary,
                n_trials=8,
                seed=5,
            )
            assert res.success_rate() == 1.0, f"alpha={alpha}"

    def test_wrapper_never_reads_true_alpha(self):
        """The wrapper's stage plan is identical whatever the instance's
        true alpha is (it only depends on n and beta)."""
        strategy = AlphaDoublingStrategy()
        plans = []
        for alpha in (0.9, 0.1):
            ctx = StrategyContext(
                n=128, m=128, alpha=alpha, beta=1 / 16, good_threshold=0.5
            )
            stages = strategy.build_stages(ctx)
            plans.append(
                [
                    (s.strategy._alpha_override, s.budget_rounds)
                    for s in stages
                ]
            )
        assert plans[0] == plans[1]
