"""Tests for the DISTILL phase machine against hand-computed schedules."""

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhase, DistillPhaseTracker
from repro.strategies.base import StrategyContext


def make_tracker(n=8, m=8, alpha=0.5, beta=0.25, k1=4.0, k2=8.0, **kwargs):
    ctx = StrategyContext(n=n, m=m, alpha=alpha, beta=beta, good_threshold=0.5)
    params = DistillParameters(k1=k1, k2=k2)
    return DistillPhaseTracker(ctx, params, **kwargs), Billboard(n, m)


class TestSchedule:
    def test_initial_phase_is_step11(self):
        tracker, _board = make_tracker()
        assert tracker.phase is DistillPhase.STEP11
        # k1/(alpha*beta*n) = 4/(0.5*0.25*8) = 4 invocations = 8 rounds
        assert tracker.phase_len == 8
        assert np.array_equal(tracker.pool, np.arange(8))

    def test_no_transition_before_phase_end(self):
        tracker, board = make_tracker()
        view = BillboardView(board, before_round=7)
        tracker.advance(7, view)
        assert tracker.phase is DistillPhase.STEP11

    def test_transition_to_step13_collects_s(self):
        tracker, board = make_tracker()
        board.append(3, 0, 5, 1.0, PostKind.VOTE)
        board.append(5, 1, 2, 1.0, PostKind.VOTE)
        tracker.advance(8, BillboardView(board, before_round=8))
        assert tracker.phase is DistillPhase.STEP13
        assert np.array_equal(tracker.pool, [2, 5])
        # k2/alpha = 16 invocations = 32 rounds
        assert tracker.phase_len == 32
        assert tracker.phase_start == 8

    def test_c0_threshold_filters(self):
        tracker, board = make_tracker()
        tracker.advance(8, BillboardView(board, before_round=8))
        # During step 1.3 (rounds 8..39): object 5 gets 2 votes (>= k2/4),
        # object 2 gets 1 (dropped).
        board.append(10, 0, 5, 1.0, PostKind.VOTE)
        board.append(11, 1, 5, 1.0, PostKind.VOTE)
        board.append(12, 2, 2, 1.0, PostKind.VOTE)
        tracker.advance(40, BillboardView(board, before_round=40))
        assert tracker.phase is DistillPhase.ITERATION
        assert np.array_equal(tracker.candidates, [5])
        # iteration length: 2*ceil(1/alpha) = 4 rounds
        assert tracker.phase_len == 4

    def test_empty_c0_restarts_attempt(self):
        tracker, board = make_tracker()
        tracker.advance(8, BillboardView(board, before_round=8))
        tracker.advance(40, BillboardView(board, before_round=40))
        assert tracker.phase is DistillPhase.STEP11
        assert tracker.phase_start == 40
        assert tracker.diagnostics()["attempt_count"] == 2

    def test_advice_parity_follows_phase_start(self):
        tracker, _board = make_tracker()
        assert not tracker.is_advice_round(0)
        assert tracker.is_advice_round(1)
        tracker.phase_start = 5
        assert not tracker.is_advice_round(5)
        assert tracker.is_advice_round(6)


class TestIterations:
    def prepared(self):
        """Tracker inside Step 2 with candidates {3, 5} at round 40."""
        tracker, board = make_tracker()
        board.append(0, 0, 5, 1.0, PostKind.VOTE)
        board.append(0, 1, 3, 1.0, PostKind.VOTE)
        tracker.advance(8, BillboardView(board, before_round=8))
        for r, player in ((9, 2), (10, 3)):
            board.append(r, player, 5, 1.0, PostKind.VOTE)
        for r, player in ((11, 4), (12, 5)):
            board.append(r, player, 3, 1.0, PostKind.VOTE)
        tracker.advance(40, BillboardView(board, before_round=40))
        assert np.array_equal(tracker.candidates, [3, 5])
        return tracker, board

    def test_survival_needs_strictly_more_than_threshold(self):
        tracker, board = self.prepared()
        # threshold = n/(4*c) = 8/8 = 1: one vote is NOT enough, two are.
        board.append(41, 6, 5, 1.0, PostKind.VOTE)
        board.append(42, 7, 5, 1.0, PostKind.VOTE)
        board.append(42, 6, 3, 1.0, PostKind.VOTE)  # ignored: 2nd vote of 6
        tracker.advance(44, BillboardView(board, before_round=44))
        assert np.array_equal(tracker.candidates, [5])
        assert tracker.iteration == 1

    def test_candidates_are_nested(self):
        tracker, board = self.prepared()
        before = set(tracker.candidates.tolist())
        board.append(41, 6, 5, 1.0, PostKind.VOTE)
        board.append(42, 7, 5, 1.0, PostKind.VOTE)
        tracker.advance(44, BillboardView(board, before_round=44))
        assert set(tracker.candidates.tolist()) <= before

    def test_no_votes_empties_and_restarts(self):
        tracker, board = self.prepared()
        tracker.advance(44, BillboardView(board, before_round=44))
        assert tracker.phase is DistillPhase.STEP11
        diag = tracker.diagnostics()
        assert diag["attempt_count"] == 2
        assert diag["attempts"][0]["iterations"] == 1


class TestUniverse:
    def test_universe_restricts_pool_and_candidates(self):
        universe = np.array([0, 1, 2])
        tracker, board = make_tracker(universe=universe)
        assert np.array_equal(tracker.pool, universe)
        # Votes for out-of-universe objects must not enter S or C0.
        board.append(0, 0, 5, 1.0, PostKind.VOTE)
        board.append(1, 1, 1, 1.0, PostKind.VOTE)
        tracker.advance(8, BillboardView(board, before_round=8))
        assert np.array_equal(tracker.pool, [1])
        for r, p in ((9, 2), (10, 3)):
            board.append(r, p, 6, 1.0, PostKind.VOTE)  # outside universe
        for r, p in ((11, 4), (12, 5)):
            board.append(r, p, 2, 1.0, PostKind.VOTE)
        tracker.advance(40, BillboardView(board, before_round=40))
        assert np.array_equal(tracker.candidates, [2])

    def test_start_round_offsets_clock(self):
        tracker, _board = make_tracker(start_round=100)
        assert tracker.phase_start == 100
        assert tracker.phase_end == 108


class TestDiagnostics:
    def test_diagnostics_track_sizes(self):
        tracker, board = make_tracker()
        board.append(0, 0, 5, 1.0, PostKind.VOTE)
        tracker.advance(8, BillboardView(board, before_round=8))
        diag = tracker.diagnostics()
        assert diag["attempts"][0]["s_size"] == 1
        assert diag["total_iterations"] == 0
