"""Tests for DISTILL parameter arithmetic."""

import pytest

from repro.core.parameters import DistillParameters, invocation_count
from repro.errors import ConfigurationError


class TestInvocationCount:
    def test_fractional_rounds_up(self):
        assert invocation_count(0.3) == 1
        assert invocation_count(1.2) == 2

    def test_exact_integers_preserved(self):
        assert invocation_count(3.0) == 3

    def test_minimum_one(self):
        assert invocation_count(0.0001) == 1

    def test_float_noise_does_not_bump(self):
        # 0.1*3/0.1 style arithmetic must not produce ceil(3.0000000004)=4
        assert invocation_count(3.0 + 5e-13) == 3

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ConfigurationError):
            invocation_count(float("inf"))
        with pytest.raises(ConfigurationError):
            invocation_count(float("nan"))


class TestValidation:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ConfigurationError):
            DistillParameters(k1=0)
        with pytest.raises(ConfigurationError):
            DistillParameters(k2=-1)

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DistillParameters(alpha=0.0)
        with pytest.raises(ConfigurationError):
            DistillParameters(beta=1.5)


class TestResolution:
    def test_defaults_use_context(self):
        params = DistillParameters()
        assert params.resolved_alpha(0.7) == 0.7
        assert params.resolved_beta(0.2) == 0.2

    def test_overrides_win(self):
        params = DistillParameters(alpha=0.25, beta=0.125)
        assert params.resolved_alpha(0.7) == 0.25
        assert params.resolved_beta(0.2) == 0.125


class TestPhaseLengths:
    def test_step11_formula(self):
        params = DistillParameters(k1=4.0)
        # k1/(alpha*beta*n) = 4/(0.5*0.25*8) = 4
        assert params.step11_invocations(8, 0.5, 0.25) == 4

    def test_step13_formula(self):
        params = DistillParameters(k2=8.0)
        assert params.step13_invocations(0.5) == 16

    def test_iteration_formula(self):
        params = DistillParameters()
        assert params.iteration_invocations(0.3) == 4
        assert params.iteration_invocations(1.0) == 1

    def test_c0_threshold(self):
        assert DistillParameters(k2=8.0).c0_vote_threshold == 2.0

    def test_iteration_threshold(self):
        assert DistillParameters.iteration_vote_threshold(100, 5) == 5.0

    def test_iteration_threshold_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            DistillParameters.iteration_vote_threshold(100, 0)

    def test_attempt_estimate_counts_all_phases(self):
        params = DistillParameters(k1=4.0, k2=8.0)
        est = params.attempt_rounds_estimate(
            8, 0.5, 0.25, expected_iterations=2
        )
        # step11: 2*4=8, step13: 2*16=32, iterations: 2 * 2*2=8
        assert est == 8 + 32 + 8
