"""Statistical checks of Lemma 6 and Lemma 8 on real runs.

Lemma 6: once at least αn/2 honest players are satisfied, each remaining
player finds a good object within ``4/α`` expected additional rounds
(advice probes hit a good vote with probability ≥ α/2 every second
round).

Lemma 8: Step 1 of ATTEMPT puts a good object into C0 with probability
at least ``1 − (e^{−k1/2} + e^{−k2/16})``, given enough unsatisfied
honest players.

Both are measured by replaying finished runs' billboards (the tracker is
deterministic given the board, see the lockstep tests).
"""

import numpy as np

from repro.adversaries.flood import FloodAdversary
from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy
from repro.core.tracker import DistillPhase, DistillPhaseTracker
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.strategies.base import StrategyContext
from repro.world.generators import planted_instance


def run_world(seed, n=128, alpha=0.5, beta=1 / 16, adversary=True):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=n, m=n, beta=beta, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    strategy = DistillStrategy()
    engine = SynchronousEngine(
        inst,
        strategy,
        adversary=FloodAdversary() if adversary else None,
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
        config=EngineConfig(max_rounds=200_000),
    )
    metrics = engine.run()
    return inst, engine, strategy, metrics


class TestLemma6:
    def test_tail_after_majority_is_short(self):
        """Rounds from 'αn/2 honest satisfied' to 'everyone satisfied'
        stay within a small multiple of 4/α on average."""
        alpha = 0.5
        tails = []
        for seed in range(12):
            inst, _engine, _strategy, metrics = run_world(
                1000 + 3 * seed, alpha=alpha
            )
            sat = np.sort(
                metrics.satisfied_round[inst.honest_mask]
            )
            majority_round = sat[int(np.ceil(sat.size / 2)) - 1]
            last_round = sat[-1]
            tails.append(last_round - majority_round)
        # Lemma 6 expectation: 4/alpha = 8 rounds per player; the *last*
        # of ~32 stragglers is a max of geometrics, log-factor more.
        assert np.mean(tails) <= 6 * (4 / alpha)

    def test_advice_is_what_finishes_stragglers(self):
        """In the post-majority phase, most finishers finish on advice
        (odd) rounds — the Lemma 6 mechanism at work, visible in traces."""
        finishing_parity = []
        for seed in range(6):
            inst, engine, strategy, metrics = run_world(
                2000 + 3 * seed, alpha=0.5, beta=1 / 128
            )
            sat = np.sort(metrics.satisfied_round[inst.honest_mask])
            majority_round = sat[int(np.ceil(sat.size / 2)) - 1]
            late = metrics.satisfied_round[inst.honest_mask]
            late = late[late > majority_round]
            tracker = strategy.tracker
            # parity relative to the tracker's final phase start is a
            # proxy; instead check directly: advice rounds are odd
            # offsets within phases, and phases have even length, so
            # advice rounds alternate globally within each phase. We
            # simply require that late finishers are not all on explore
            # parity.
            finishing_parity.extend((late % 2).tolist())
        assert len(set(finishing_parity)) >= 1  # smoke: data collected
        # at beta = 1/128 the explore pool is mostly bad late in the run,
        # so a clear majority of stragglers finish via advice probes
        # (empirically > 60%); parity alone is a coarse proxy, so we
        # assert a weak version to stay robust across seeds.
        advice_fraction = float(np.mean(finishing_parity))
        assert advice_fraction >= 0.4


class TestLemma8:
    def replay_c0_contains_good(self, inst, engine, strategy):
        """Replay the board; report (attempts, attempts whose C0 held a
        good object)."""
        ctx = StrategyContext(
            n=inst.n, m=inst.m, alpha=inst.alpha, beta=inst.beta,
            good_threshold=0.5,
        )
        tracker = DistillPhaseTracker(ctx, strategy.params)
        good = set(inst.space.good_ids.tolist())
        total, hits = 0, 0
        last_round = engine.board.last_round + 2
        seen_iteration_entry = False
        for round_no in range(last_round + 1):
            prev_phase = tracker.phase
            tracker.advance(
                round_no, BillboardView(engine.board, before_round=round_no)
            )
            if (
                tracker.phase is DistillPhase.ITERATION
                and prev_phase is DistillPhase.STEP13
            ):
                total += 1
                if set(tracker.candidates.tolist()) & good:
                    hits += 1
                seen_iteration_entry = True
        return total, hits, seen_iteration_entry

    def test_c0_contains_good_with_high_probability(self):
        """Across many runs, whenever an ATTEMPT completes Step 1, its
        C0 contains a good object almost always (Lemma 8's bound at the
        default constants k1=4, k2=8 is >= 1 - e^-2 - e^-0.5 ~ 0.26;
        measured is far higher because the bound is loose)."""
        total, hits = 0, 0
        for seed in range(16):
            inst, engine, strategy, metrics = run_world(
                3000 + 3 * seed, alpha=0.4, beta=1 / 64, n=128
            )
            t, h, _ = self.replay_c0_contains_good(inst, engine, strategy)
            total += t
            hits += h
        if total == 0:
            # runs ended during step 1.3 in every seed; nothing to check
            return
        assert hits / total >= 0.6, (hits, total)
