"""The cohort-equals-agents property (DESIGN.md, decision 1).

The cohort implementation computes phase boundaries once; the paper's
players each compute them independently from the billboard. These tests
replay a finished run's billboard through a *fresh* tracker — simulating
an independent player doing its own bookkeeping — and assert it derives
exactly the candidate-set history the cohort acted on.
"""

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhaseTracker
from repro.sim.engine import SynchronousEngine
from repro.strategies.base import StrategyContext
from repro.world.generators import planted_instance


def run_once(alpha=0.5, seed=11):
    world_ss, honest_ss, adversary_ss = np.random.SeedSequence(seed).spawn(3)
    inst = planted_instance(
        n=64, m=64, beta=1 / 8, alpha=alpha,
        rng=np.random.default_rng(world_ss),
    )
    strategy = DistillStrategy(DistillParameters())
    engine = SynchronousEngine(
        inst,
        strategy,
        adversary=SplitVoteAdversary(),
        rng=np.random.default_rng(honest_ss),
        adversary_rng=np.random.default_rng(adversary_ss),
    )
    metrics = engine.run()
    return inst, engine, strategy, metrics


class TestLockstep:
    def test_independent_replay_reproduces_phase_history(self):
        inst, engine, strategy, metrics = run_once()
        ctx = StrategyContext(
            n=inst.n,
            m=inst.m,
            alpha=inst.alpha,
            beta=inst.beta,
            good_threshold=0.5,
        )
        replayer = DistillPhaseTracker(ctx, strategy.params)
        history = []
        for round_no in range(metrics.rounds + 1):
            view = BillboardView(engine.board, before_round=round_no)
            replayer.advance(round_no, view)
            history.append(
                (replayer.phase, replayer.phase_start,
                 tuple(replayer.candidates.tolist()))
            )
        # The cohort's final state matches the independent replay.
        cohort = strategy.tracker
        assert replayer.phase is cohort.phase
        assert replayer.phase_start == cohort.phase_start
        assert np.array_equal(replayer.candidates, cohort.candidates)
        assert replayer.diagnostics() == cohort.diagnostics()
        # And the replayed history is internally consistent: phase starts
        # never decrease.
        starts = [h[1] for h in history]
        assert all(a <= b for a, b in zip(starts, starts[1:]))

    def test_replay_is_deterministic_across_players(self):
        """Two independent 'players' derive identical candidate sets."""
        inst, engine, strategy, metrics = run_once(alpha=0.3, seed=23)
        ctx = StrategyContext(
            n=inst.n, m=inst.m, alpha=inst.alpha, beta=inst.beta,
            good_threshold=0.5,
        )

        def replay():
            tracker = DistillPhaseTracker(ctx, strategy.params)
            states = []
            for round_no in range(metrics.rounds + 1):
                tracker.advance(
                    round_no, BillboardView(engine.board, before_round=round_no)
                )
                states.append(
                    (tracker.phase.value, tuple(tracker.pool.tolist()))
                )
            return states

        assert replay() == replay()
