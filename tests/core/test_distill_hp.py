"""Tests for DISTILL^HP (Theorem 11 recipe)."""

import numpy as np
import pytest

from repro.adversaries.flood import FloodAdversary
from repro.core.distill_hp import DistillHPStrategy, hp_parameters
from repro.sim.engine import SynchronousEngine
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance


class TestRecipe:
    def test_constants_scale_with_log_n(self):
        small = hp_parameters(2 ** 6)
        large = hp_parameters(2 ** 12)
        assert large.k1 == pytest.approx(2 * small.k1)
        assert large.k2 == pytest.approx(2 * small.k2)

    def test_floors_protect_tiny_n(self):
        params = hp_parameters(2)
        assert params.k1 >= 2.0
        assert params.k2 >= 8.0

    def test_scale_multiplies(self):
        assert hp_parameters(256, scale=3.0).k1 == pytest.approx(24.0)

    def test_overrides_carried(self):
        params = hp_parameters(256, alpha=0.25, beta=0.1)
        assert params.alpha == 0.25
        assert params.beta == 0.1


class TestStrategy:
    def test_params_resolved_at_reset(self):
        inst = planted_instance(
            n=256, m=256, beta=1 / 16, alpha=0.5,
            rng=np.random.default_rng(0),
        )
        strategy = DistillHPStrategy()
        engine = SynchronousEngine(
            inst, strategy, rng=np.random.default_rng(1)
        )
        metrics = engine.run()
        assert metrics.strategy_info["k1"] == pytest.approx(8.0)
        assert metrics.strategy_info["k2"] == pytest.approx(16.0)

    def test_terminates_under_flood(self):
        res = run_trials(
            lambda rng: planted_instance(
                n=128, m=128, beta=1 / 16, alpha=0.4, rng=rng
            ),
            DistillHPStrategy,
            make_adversary=FloodAdversary,
            n_trials=10,
            seed=2,
        )
        assert res.success_rate() == 1.0

    def test_last_player_tail_is_tight(self):
        """HP constants make the max termination round concentrate:
        the worst trial is within a small factor of the median trial."""
        res = run_trials(
            lambda rng: planted_instance(
                n=256, m=256, beta=1 / 16, alpha=0.6, rng=rng
            ),
            DistillHPStrategy,
            make_adversary=FloodAdversary,
            n_trials=16,
            seed=3,
        )
        worst = res.quantile("max_individual_rounds", 1.0)
        median = res.quantile("max_individual_rounds", 0.5)
        assert worst <= 4.0 * median
