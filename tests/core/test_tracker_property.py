"""Property-based tests of the DISTILL phase machine.

Hypothesis drives random vote streams (arbitrary players, objects,
timings — i.e. arbitrary Byzantine posting patterns) through the tracker
and asserts its structural invariants: phase clocks never run backwards,
candidate sets are nested within Step 2, restarts reset cleanly, and the
machine is a pure function of the board prefix.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhase, DistillPhaseTracker
from repro.strategies.base import StrategyContext

N, M = 16, 16

vote_streams = st.lists(
    st.tuples(
        st.integers(0, 40),      # round offset
        st.integers(0, N - 1),   # player
        st.integers(0, M - 1),   # object
    ),
    max_size=50,
)


def build_board(stream):
    board = Billboard(N, M)
    for round_no, player, obj in sorted(stream, key=lambda t: t[0]):
        board.append(round_no, player, obj, 1.0, PostKind.VOTE)
    return board


def ctx():
    return StrategyContext(
        n=N, m=M, alpha=0.5, beta=0.25, good_threshold=0.5
    )


def drive(board, upto=60):
    """Advance a fresh tracker round by round; return state snapshots."""
    tracker = DistillPhaseTracker(ctx(), DistillParameters())
    states = []
    for round_no in range(upto):
        tracker.advance(
            round_no, BillboardView(board, before_round=round_no)
        )
        states.append(
            (
                round_no,
                tracker.phase,
                tracker.phase_start,
                tuple(tracker.candidates.tolist()),
                tuple(tracker.pool.tolist()),
            )
        )
    return tracker, states


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_phase_start_never_decreases(stream):
    _tracker, states = drive(build_board(stream))
    starts = [s[2] for s in states]
    assert all(a <= b for a, b in zip(starts, starts[1:]))


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_candidates_nested_within_iterations(stream):
    _tracker, states = drive(build_board(stream))
    previous = None
    for _round_no, phase, start, candidates, _pool in states:
        if phase is DistillPhase.ITERATION:
            if previous is not None and previous[0] == start:
                pass  # same window, same candidates
            elif previous is not None:
                # new iteration window: candidates must be a subset of
                # the previous window's candidates
                assert set(candidates) <= set(previous[1]) or not previous[1]
            previous = (start, candidates)
        else:
            previous = None


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_pool_is_always_within_universe(stream):
    _tracker, states = drive(build_board(stream))
    for _round_no, _phase, _start, _candidates, pool in states:
        assert all(0 <= obj < M for obj in pool)


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_step11_pool_is_full_universe(stream):
    _tracker, states = drive(build_board(stream))
    for _round_no, phase, _start, _candidates, pool in states:
        if phase is DistillPhase.STEP11:
            assert pool == tuple(range(M))


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_tracker_is_deterministic_in_the_board(stream):
    board = build_board(stream)
    _t1, s1 = drive(board)
    _t2, s2 = drive(board)
    assert s1 == s2


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_incremental_equals_batch_advance(stream):
    """Advancing round-by-round and jumping straight to the last round
    land in the same state (advance is idempotent over prefixes)."""
    board = build_board(stream)
    stepped, states = drive(board, upto=60)
    jumped = DistillPhaseTracker(ctx(), DistillParameters())
    jumped.advance(59, BillboardView(board, before_round=59))
    assert jumped.phase is stepped.phase
    assert jumped.phase_start == stepped.phase_start
    assert np.array_equal(jumped.candidates, stepped.candidates)


@given(vote_streams)
@settings(max_examples=60, deadline=None)
def test_diagnostics_account_all_iterations(stream):
    tracker, states = drive(build_board(stream))
    diag = tracker.diagnostics()
    assert diag["attempt_count"] >= 1
    assert diag["total_iterations"] == sum(
        a["iterations"] for a in diag["attempts"]
    )
    assert diag["max_iterations_per_attempt"] <= max(
        (a["iterations"] for a in diag["attempts"]), default=0
    ) + 0
