#!/usr/bin/env python
"""Stress DISTILL against every implemented Byzantine strategy.

Theorem 4 holds "for any adaptive Byzantine adversary" — this example
makes that concrete by running the same world against each adversary in
the registry (and the prior algorithm as a reference), printing a
side-by-side cost table.

Run:
    python examples/adversary_gauntlet.py [--n 512] [--alpha 0.4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    AsyncEC04Strategy,
    DistillStrategy,
    available_adversaries,
    make_adversary,
    planted_instance,
    run_trials,
)
from repro.analysis.bounds import thm4_expected_rounds
from repro.experiments.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=512)
    parser.add_argument("--alpha", type=float, default=0.4)
    parser.add_argument("--beta", type=float, default=1 / 16)
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    bound = thm4_expected_rounds(args.n, args.alpha, args.beta)
    print(
        f"n={args.n}, alpha={args.alpha}, beta={args.beta:g}; "
        f"Theorem 4 curve = {bound:.1f} rounds (constant-free)\n"
    )

    table = Table(
        ["adversary", "distill_rounds", "async_rounds", "distill_probes",
         "success"],
        formats={
            "distill_rounds": ".2f",
            "async_rounds": ".2f",
            "distill_probes": ".2f",
            "success": ".2f",
        },
    )
    factory = lambda rng: planted_instance(  # noqa: E731
        n=args.n, m=args.n, beta=args.beta, alpha=args.alpha, rng=rng
    )
    for name in available_adversaries():
        distill = run_trials(
            factory,
            DistillStrategy,
            make_adversary=lambda name=name: make_adversary(name),
            n_trials=args.trials,
            seed=(args.seed, len(name)),
        )
        prior = run_trials(
            factory,
            AsyncEC04Strategy,
            make_adversary=lambda name=name: make_adversary(name),
            n_trials=args.trials,
            seed=(args.seed, len(name), 1),
        )
        table.add_row(
            adversary=name,
            distill_rounds=distill.mean("mean_individual_rounds"),
            async_rounds=prior.mean("mean_individual_rounds"),
            distill_probes=distill.mean("mean_individual_probes"),
            success=distill.success_rate(),
        )
    print(table.render())
    print("\nEvery row succeeds — the bound is adversary-independent; "
          "strategies only move the constant.")


if __name__ == "__main__":
    main()
