#!/usr/bin/env python
"""The grand tour: every claim of the paper, reproduced in one sitting.

Walks the experiment registry in the order the paper presents its
results — lower bounds, the DISTILL headline, the lemmas, the
high-probability variant, the extensions, the open problems — running
each at smoke scale (seconds apiece) and narrating what to look for.

Run:
    python examples/paper_tour.py            # everything (~1 minute)
    python examples/paper_tour.py --only E3 E5 A1
    python examples/paper_tour.py --scale full   # the bench-grade sweep
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import available_experiments, run_experiment

NARRATION = {
    "E1": "First the floor: even perfect cooperation cannot beat the "
          "urn bound of Theorem 1.",
    "E2": "And the symmetry floor: B equally sworn-for object classes "
          "force any algorithm to visit half of them (Theorem 2).",
    "E3": "The headline. One good object among n: trivial probing pays "
          "~n, the prior algorithm grows with log n, DISTILL stays "
          "near-flat when most players are honest (Theorem 4).",
    "E4": "Corollary 5's regime: with n^(1-eps) dishonest players the "
          "cost is O(1/eps) — watch eps*rounds stay in a narrow band.",
    "E5": "Lemma 7, the technical core: the distillation loop is "
          "sub-logarithmic. The kernel runs the adversary's optimal "
          "splitting game to n = 2^28; log n/Delta fits, log n doesn't.",
    "E6": "Theorem 11: with Theta(log n) constants even the LAST player "
          "finishes inside the curve, in every trial.",
    "E7": "Section 5.1: the halving wrapper matches the known-alpha "
          "algorithm without ever being told alpha.",
    "E8": "Theorem 12: cheap price classes first — payment scales "
          "linearly with the cheapest good object's price.",
    "E9": "Theorem 13: no local testing, mutable best-so-far votes, "
          "prescribed run length — everyone still ends up with a top "
          "object.",
    "E10": "Section 4.1: f votes per player changes nothing while "
           "f << 1/(1-alpha); watch the cost bend as f crosses it.",
    "E11": "Theorem 4 is adversary-independent: six Byzantine "
           "strategies, one bound.",
    "E12": "Where it all started: the Section 1.2 three-phase sketch — "
           "|C2| ~ sqrt(n), |C3| <= 3.",
    "E13": "Why synchrony is legitimate: fair async schedules match it, "
           "timestamps simulate it, and unfairness breaks any algorithm.",
    "E14": "The prior work's own headline, verified: total cost "
           "O(n log n), indifferent to a dishonest third.",
    "A1": "Open problem 1: slander. Believing corroborated negative "
          "reports is catastrophic under a smear campaign.",
    "A2": "Open problem 2: couple objects to players — self-promotion "
          "is just a flood; Theorem 4 transfers at the induced beta.",
    "A3": "Open problem 3: demand pricing taxes exactly the convergence "
          "DISTILL engineers.",
    "A4": "Ablating Lemma 6: drop the advice rounds and the stragglers "
          "pay for it in the tail.",
    "A5": "Oblivious vs adaptive adversaries: the premium measures zero "
          "at engine scale — Step 1 is schedule-deterministic.",
    "A6": "And the constants: the proof's k2 = 192 overpays 10x when "
          "Step 1.1 is weak; the defaults sit in a wide, shallow bowl.",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to run"
    )
    parser.add_argument("--scale", choices=["smoke", "full"],
                        default="smoke")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ids = args.only or available_experiments()
    passed = 0
    t_start = time.time()
    for eid in ids:
        print("=" * 72)
        narration = NARRATION.get(eid.upper())
        if narration:
            print(narration)
            print()
        t0 = time.time()
        result = run_experiment(eid, scale=args.scale, seed=args.seed)
        print(result.render())
        print(f"\n[{eid} took {time.time() - t0:.1f}s]")
        passed += result.all_checks_pass
        print()
    print("=" * 72)
    print(
        f"tour complete: {passed}/{len(ids)} experiments pass all shape "
        f"checks ({time.time() - t_start:.0f}s at scale={args.scale})"
    )


if __name__ == "__main__":
    main()
