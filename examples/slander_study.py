#!/usr/bin/env python
""""Is slander useless?" — the paper's first open problem, measured.

DISTILL ignores negative reports by design. This example runs the A1
ablation interactively: a reader that *believes* corroborated slander
against one that doesn't, in honest worlds and under a smear campaign
targeting the single good object.

Run:
    python examples/slander_study.py [--n 256] [--threshold 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DistillStrategy,
    EngineConfig,
    SilentAdversary,
    SlanderAdversary,
    SlanderingDistill,
    planted_instance,
    run_trials,
)
from repro.experiments.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--alpha", type=float, default=0.6)
    parser.add_argument("--threshold", type=int, default=3,
                        help="corroborating reports needed to discredit")
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    beta = 1.0 / args.n  # one good object: the sharp case
    factory = lambda rng: planted_instance(  # noqa: E731
        n=args.n, m=args.n, beta=beta, alpha=args.alpha, rng=rng
    )
    config = EngineConfig(
        record_reports=True, max_rounds=16 * args.n, strict=False
    )

    table = Table(
        ["reader", "world", "rounds", "found_good"],
        formats={"rounds": ".1f", "found_good": ".1%"},
    )
    for reader_name, strategy in (
        ("distill (ignores slander)", DistillStrategy),
        (
            f"slandering (believes {args.threshold} reports)",
            lambda: SlanderingDistill(args.threshold),
        ),
    ):
        for world_name, adversary in (
            ("honest", SilentAdversary),
            ("smear campaign", SlanderAdversary),
        ):
            res = run_trials(
                factory,
                strategy,
                make_adversary=adversary,
                n_trials=args.trials,
                seed=(args.seed, len(reader_name), len(world_name)),
                config=config,
            )
            table.add_row(
                reader=reader_name,
                world=world_name,
                rounds=res.mean("mean_individual_rounds"),
                found_good=res.mean("satisfied_fraction"),
            )
    print(table.render())
    print(
        "\nThe smear campaign denies the good object to any reader that "
        "believes it;\nDISTILL's one-sided design never even notices. "
        "Slander is not useless — it is a weapon, which is why the "
        "algorithm refuses to hold it."
    )


if __name__ == "__main__":
    main()
