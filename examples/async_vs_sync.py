#!/usr/bin/env python
"""Why the paper's synchronous model is legitimate — and necessary.

Section 1.2 in three measurements (experiment E13, interactive):

1. the prior asynchronous algorithm under a fair round-robin schedule
   costs the same as in the synchronous abstraction;
2. DISTILL — a synchronous protocol — runs over a *random* asynchronous
   schedule via the timestamp barrier and matches its synchronous cost;
3. under an unfair (solo-first) schedule, the starved player degenerates
   to solo search: no algorithm can bound individual cost without
   fairness.

Run:
    python examples/async_vs_sync.py [--n 256] [--seed 0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    AsyncEC04Strategy,
    AsynchronousEngine,
    DistillStrategy,
    PerStepAdapter,
    RandomSchedule,
    RoundRobinSchedule,
    SoloFirstSchedule,
    SynchronizedDistillAdapter,
    SynchronousEngine,
    planted_instance,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--beta", type=float, default=1 / 16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    inst = planted_instance(
        n=args.n, m=args.n, beta=args.beta, alpha=1.0,
        rng=np.random.default_rng(args.seed),
    )
    print(f"world: {inst.describe()}\n")

    print("1) abstraction — prior algorithm, async round robin vs sync:")
    sync = SynchronousEngine(
        inst, AsyncEC04Strategy(), rng=np.random.default_rng(1)
    ).run()
    asy = AsynchronousEngine(
        inst,
        PerStepAdapter(AsyncEC04Strategy()),
        schedule=RoundRobinSchedule(),
        rng=np.random.default_rng(2),
    ).run()
    print(f"   sync : {sync.mean_individual_probes:6.2f} probes/player "
          f"in {sync.rounds} rounds")
    print(f"   async: {asy.mean_individual_probes:6.2f} probes/player "
          f"in {asy.steps} steps (~{asy.steps / args.n:.1f} rounds)\n")

    print("2) simulation — DISTILL through the timestamp barrier "
          "(random schedule):")
    dsync = SynchronousEngine(
        inst, DistillStrategy(), rng=np.random.default_rng(3)
    ).run()
    dasync = AsynchronousEngine(
        inst,
        SynchronizedDistillAdapter(),
        schedule=RandomSchedule(),
        rng=np.random.default_rng(4),
        schedule_rng=np.random.default_rng(5),
    ).run()
    print(f"   sync : {dsync.mean_individual_probes:6.2f} probes/player "
          f"in {dsync.rounds} rounds")
    print(f"   async: {dasync.mean_individual_probes:6.2f} probes/player, "
          f"{dasync.strategy_info['max_virtual_round']} virtual rounds, "
          f"{dasync.strategy_info['barrier_waits']} barrier waits\n")

    print("3) necessity — solo-first schedule starves player 0:")
    solo = AsynchronousEngine(
        inst,
        PerStepAdapter(AsyncEC04Strategy()),
        schedule=SoloFirstSchedule(victim=0),
        rng=np.random.default_rng(6),
    ).run()
    print(f"   victim probes : {solo.probes_of(0)} "
          f"(solo search ~ 1/beta = {1 / args.beta:.0f})")
    print(f"   everyone else : "
          f"{solo.probes[inst.honest_mask][1:].mean():.2f} probes/player")
    print("\nFairness is the one assumption collaboration cannot drop.")


if __name__ == "__main__":
    main()
