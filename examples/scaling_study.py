#!/usr/bin/env python
"""The headline scaling figure, in your terminal.

Reproduces the paper's central comparison (bench E3) as an ASCII chart:
needle-in-a-haystack worlds (m = n, one good object), individual cost of
DISTILL vs the prior asynchronous algorithm vs trivial probing as n
grows, at a chosen honesty level.

Run:
    python examples/scaling_study.py [--alpha 0.9] [--trials 12]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    AsyncEC04Strategy,
    DistillStrategy,
    SplitVoteAdversary,
    TrivialStrategy,
    planted_instance,
    run_trials,
)
from repro.analysis.bounds import thm4_expected_rounds, thm11_rounds
from repro.experiments.tables import format_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--alpha", type=float, default=0.9)
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 256, 1024]
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    series = {"distill": [], "async-ec04": [], "trivial": [],
              "thm4 curve": [], "prior curve": []}
    for n in args.sizes:
        beta = 1.0 / n
        factory = lambda rng, n=n, beta=beta: planted_instance(  # noqa: E731
            n=n, m=n, beta=beta, alpha=args.alpha, rng=rng
        )
        for name, strategy in (
            ("distill", DistillStrategy),
            ("async-ec04", AsyncEC04Strategy),
            ("trivial", TrivialStrategy),
        ):
            res = run_trials(
                factory,
                strategy,
                make_adversary=SplitVoteAdversary,
                n_trials=args.trials,
                seed=(args.seed, n, len(name)),
            )
            series[name].append(res.mean("mean_individual_rounds"))
        series["thm4 curve"].append(
            thm4_expected_rounds(n, args.alpha, beta)
        )
        series["prior curve"].append(thm11_rounds(n, args.alpha, beta))
        print(f"measured n={n}...")

    print()
    print(
        format_series("n", [float(n) for n in args.sizes], series, width=48)
    )
    print(
        "\nShape to read off: trivial grows ~linearly (it is 1/beta = n), "
        "the prior algorithm grows with log n, DISTILL stays near-flat "
        f"at alpha={args.alpha}."
    )


if __name__ == "__main__":
    main()
