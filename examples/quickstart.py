#!/usr/bin/env python
"""Quickstart: run Algorithm DISTILL against a Byzantine collusion.

The scenario of the paper's introduction: an eBay-like system where
players share their experience with objects on a public billboard, some
players lie, and everyone honest wants to find a good object cheaply.

Run:
    python examples/quickstart.py [--n 512] [--alpha 0.7] [--seed 0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DistillStrategy,
    SplitVoteAdversary,
    SynchronousEngine,
    planted_instance,
)
from repro.analysis.bounds import thm4_expected_rounds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=512,
                        help="players (= objects)")
    parser.add_argument("--alpha", type=float, default=0.7,
                        help="fraction of honest players")
    parser.add_argument("--beta", type=float, default=1 / 16,
                        help="fraction of good objects")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # One seed, three independent streams — spawned, never derived by
    # seed arithmetic (see docs/static_analysis.md, rule RPL004).
    world_seq, honest_seq, adversary_seq = np.random.SeedSequence(
        args.seed
    ).spawn(3)
    instance = planted_instance(
        n=args.n, m=args.n, beta=args.beta, alpha=args.alpha,
        rng=np.random.default_rng(world_seq),
    )
    print(f"world: {instance.describe()}")
    print(
        f"  {instance.n_honest} honest players vs "
        f"{instance.n_dishonest} Byzantine colluders; "
        f"{int(instance.beta * instance.m)} good objects hidden among "
        f"{instance.m}"
    )

    engine = SynchronousEngine(
        instance,
        DistillStrategy(),
        adversary=SplitVoteAdversary(),  # adaptive threshold-topping attack
        rng=np.random.default_rng(honest_seq),
        adversary_rng=np.random.default_rng(adversary_seq),
    )
    metrics = engine.run()

    print("\nresults")
    print(f"  all honest players found a good object: "
          f"{metrics.all_honest_satisfied}")
    print(f"  rounds until the last honest player finished: "
          f"{metrics.max_individual_rounds}")
    print(f"  mean individual probes (the paper's cost metric): "
          f"{metrics.mean_individual_probes:.2f}")
    print(f"  Theorem 4 reference curve (constant-free): "
          f"{thm4_expected_rounds(args.n, args.alpha, args.beta):.2f}")
    info = metrics.strategy_info
    print(f"  ATTEMPT invocations: {info['attempt_count']}, "
          f"distillation iterations: {info['total_iterations']}")

    votes = engine.board.vote_posts()
    honest_votes = sum(
        1 for p in votes if instance.honest_mask[p.player]
    )
    print(f"  billboard: {len(votes)} votes posted "
          f"({honest_votes} honest, {len(votes) - honest_votes} Byzantine)")


if __name__ == "__main__":
    main()
