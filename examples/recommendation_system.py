#!/usr/bin/env python
"""On-line recommendations without local testing (Theorem 13).

The paper's Section 5.3 scenario: object quality is continuous and
*relative* — nobody can certify "this is good" from one probe; good just
means "among the top β·m values". Votes are therefore mutable
best-so-far recommendations, the run length is prescribed from β, and
with high probability every honest player ends up having experienced a
top-quality object — despite a Byzantine collusion hyping junk.

Run:
    python examples/recommendation_system.py [--n 1024] [--seed 0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    EngineConfig,
    FloodAdversary,
    NoLocalTestingDistill,
    SynchronousEngine,
    VoteMode,
    valued_instance,
)
from repro.analysis.bounds import thm11_rounds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1024,
                        help="users (= items)")
    parser.add_argument("--beta", type=float, default=1 / 16,
                        help="fraction of items that count as good")
    parser.add_argument("--alpha", type=float, default=0.6,
                        help="fraction of honest users")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    world_rng = np.random.default_rng(args.seed)
    instance = valued_instance(
        n=args.n, m=args.n, beta=args.beta, alpha=args.alpha, rng=world_rng
    )
    goods = int(instance.space.good_mask.sum())
    cutoff = float(
        instance.space.values[instance.space.good_mask].min()
    )
    print(f"catalog: {instance.m} items with hidden continuous quality")
    print(f"  'good' = top {goods} items (quality >= {cutoff:.3f}) — "
          "but no user can test this locally")
    print(f"  users: {args.n} ({instance.n_dishonest} hype bots)")

    strategy = NoLocalTestingDistill()
    engine = SynchronousEngine(
        instance,
        strategy,
        adversary=FloodAdversary(),
        rng=np.random.default_rng(args.seed + 1),
        adversary_rng=np.random.default_rng(args.seed + 2),
        config=EngineConfig(vote_mode=VoteMode.MUTABLE),
    )
    metrics = engine.run()

    print("\nresults")
    print(f"  prescribed run length: {strategy.prescribed_rounds} rounds "
          f"(Theorem 13 curve: {thm11_rounds(args.n, args.alpha, args.beta):.0f})")
    print(f"  honest users who experienced a top item: "
          f"{metrics.satisfied_fraction:.1%}")
    print(f"  mean probes per honest user: "
          f"{metrics.mean_individual_probes:.1f}")

    # What does the billboard recommend at the end?
    votes = engine.board.current_vote_array()
    honest_votes = votes[instance.honest_ids]
    honest_votes = honest_votes[honest_votes >= 0]
    recommended_good = float(
        instance.space.good_mask[honest_votes].mean()
    )
    print(f"  honest final recommendations pointing at top items: "
          f"{recommended_good:.1%}")


if __name__ == "__main__":
    main()
