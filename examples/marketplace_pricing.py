#!/usr/bin/env python
"""Marketplace with priced listings — the Theorem 12 scenario.

eBay listings don't cost the same to try: a seller with little positive
reputation makes up for it with a low price (the paper's Section 6
closing remark). This example builds a marketplace whose listings fall
into price classes 1, 2, 4, ..., with the only trustworthy sellers in a
mid-price class, and shows the cost-class algorithm (DISTILL^HP run on
cheap classes first) finding them while paying close to the theoretical
optimum — instead of burning money probing premium listings first.

Run:
    python examples/marketplace_pricing.py [--good-class 3] [--seed 0]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FloodAdversary, cost_class_instance, run_multicost
from repro.analysis.bounds import thm12_payment_bound


def naive_expensive_first_cost(instance, rng) -> float:
    """Strawman: probe uniformly over *all* listings (price-blind).

    Expected payment per probe is the mean listing price; expected
    probes to find a good listing is ~m/goods — the baseline Theorem 12
    is designed to beat.
    """
    mean_price = float(instance.space.costs.mean())
    expected_probes = instance.m / instance.space.good_mask.sum()
    return mean_price * expected_probes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=512, help="buyers")
    parser.add_argument("--classes", type=int, default=6,
                        help="number of price classes (costs 1,2,4,...)")
    parser.add_argument("--class-size", type=int, default=64,
                        help="listings per price class")
    parser.add_argument("--good-class", type=int, default=3,
                        help="price class holding the trustworthy sellers")
    parser.add_argument("--goods", type=int, default=2,
                        help="trustworthy sellers in that class")
    parser.add_argument("--alpha", type=float, default=0.75)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    instance = cost_class_instance(
        n=args.n,
        class_sizes=[args.class_size] * args.classes,
        good_class=args.good_class,
        goods_in_class=args.goods,
        alpha=args.alpha,
        rng=rng,
    )
    q0 = instance.space.cheapest_good_cost
    print(f"marketplace: {instance.m} listings in {args.classes} price "
          f"classes (prices 1..{2 ** (args.classes - 1)})")
    print(f"  trustworthy sellers: {args.goods}, all priced {q0:g}")
    print(f"  buyers: {args.n} ({instance.n_dishonest} shills)")

    outcome = run_multicost(
        instance,
        rng=np.random.default_rng(args.seed + 1),
        adversary=FloodAdversary(),
        adversary_rng=np.random.default_rng(args.seed + 2),
    )

    bound = thm12_payment_bound(q0, instance.m, instance.n, instance.alpha)
    naive = naive_expensive_first_cost(instance, rng)
    print("\nresults")
    print(f"  every honest buyer found a trustworthy seller: "
          f"{outcome.metrics.all_honest_satisfied}")
    print(f"  mean spend per honest buyer:  {outcome.mean_payment:10.1f}")
    print(f"  worst single buyer spend:     {outcome.max_payment:10.1f}")
    print(f"  Theorem 12 reference curve:   {bound:10.1f}")
    print(f"  price-blind uniform probing:  {naive:10.1f}  (strawman)")
    stages = outcome.metrics.strategy_info["stage_labels"]
    print(f"  price classes actually searched: {len(stages)} "
          f"({', '.join(stages)})")


if __name__ == "__main__":
    main()
