"""Command-line interface.

Installed as the ``repro`` console script::

    repro list                                  # experiments & adversaries
    repro experiment E3 --scale smoke           # run one experiment
    repro run --n 512 --alpha 0.7 --adversary split-vote
    repro gauntlet --n 256 --alpha 0.4          # all adversaries at once

Every command prints the same ASCII tables the benches archive, so the
CLI is the quickest way to poke at the reproduction without writing
code.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # type-only: keep fault imports lazy in the CLI
    from repro.faults.plan import FaultPlan

import numpy as np

from repro.adversaries.registry import available_adversaries, make_adversary
from repro.analysis.bounds import thm4_expected_rounds
from repro.core.distill import DistillStrategy
from repro.core.distill_hp import DistillHPStrategy
from repro.core.alpha_doubling import AlphaDoublingStrategy
from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.trivial import TrivialStrategy
from repro.errors import ReproError
from repro.experiments import (
    available_experiments,
    generate_report,
    run_experiment,
)
from repro.experiments.config import (
    resolve_batch_lanes,
    resolve_executor,
    resolve_n_jobs,
    resolve_substrate,
    set_default_batch_lanes,
    set_default_executor,
    set_default_n_jobs,
    set_default_substrate,
)
from repro.experiments.tables import Table
from repro.sim.engine import EngineConfig
from repro.sim.runner import TrialResults, run_trials
from repro.world.generators import planted_instance

STRATEGIES = {
    "distill": DistillStrategy,
    "distill-hp": DistillHPStrategy,
    "alpha-doubling": AlphaDoublingStrategy,
    "async-ec04": AsyncEC04Strategy,
    "trivial": TrivialStrategy,
}


def _add_jobs_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "Monte-Carlo worker processes (-1 = all cores; default: "
            "REPRO_BENCH_JOBS or serial). Never changes results."
        ),
    )


def _add_lanes_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--batch-lanes",
        dest="batch_lanes",
        type=int,
        default=None,
        help=(
            "trials advanced in lockstep per engine batch (default: "
            "REPRO_BATCH_LANES or scalar). Never changes results."
        ),
    )


def _add_executor_flag(command: argparse.ArgumentParser) -> None:
    from repro.exec import EXECUTOR_NAMES

    command.add_argument(
        "--executor",
        choices=list(EXECUTOR_NAMES),
        default=None,
        help=(
            "execution backend for trial sweeps (default: REPRO_EXECUTOR "
            "or the runner's choice: a local pool when --jobs asks for "
            "one, serial otherwise). Never changes results."
        ),
    )


def _add_substrate_flag(command: argparse.ArgumentParser) -> None:
    from repro.billboard.sparse import SUBSTRATE_CHOICES

    command.add_argument(
        "--substrate",
        choices=list(SUBSTRATE_CHOICES),
        default=None,
        help=(
            "billboard storage substrate (default: REPRO_SUBSTRATE or "
            "auto: sparse at large n, dense otherwise). Never changes "
            "results."
        ),
    )


def _add_obs_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--obs-out",
        default=None,
        metavar="PATH",
        help=(
            "write an observation JSONL (run manifest + counters/timers) "
            "here; inspect it with 'repro obs summary'. Never changes "
            "results."
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Adaptive Collaboration in Peer-to-Peer "
            "Systems' (ICDCS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, strategies, adversaries")

    exp = sub.add_parser("experiment", help="run one experiment (E1..A4)")
    exp.add_argument("experiment_id")
    exp.add_argument("--scale", choices=["smoke", "full"], default="smoke")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--out", help="also write the table to this file")
    _add_jobs_flag(exp)
    _add_lanes_flag(exp)
    _add_executor_flag(exp)
    _add_substrate_flag(exp)
    _add_obs_flag(exp)

    run = sub.add_parser("run", help="one Monte-Carlo cell")
    run.add_argument("--n", type=int, default=256)
    run.add_argument("--m", type=int, default=None, help="default: n")
    run.add_argument("--alpha", type=float, default=0.7)
    run.add_argument("--beta", type=float, default=1 / 16)
    run.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="distill"
    )
    run.add_argument(
        "--adversary",
        choices=available_adversaries() + ["none"],
        default="split-vote",
    )
    run.add_argument("--trials", type=int, default=16)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--post-loss",
        type=float,
        default=0.0,
        help="probability each honest billboard post is dropped",
    )
    run.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="per-round crash probability of each active honest player",
    )
    run.add_argument(
        "--churn-restart",
        type=int,
        default=4,
        help=(
            "rounds a crashed player stays down before restarting with "
            "no local memory (only with --churn)"
        ),
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-trial wall-clock cap in seconds",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        help="JSONL checkpoint path (resume an interrupted sweep)",
    )
    _add_jobs_flag(run)
    _add_lanes_flag(run)
    _add_executor_flag(run)
    _add_substrate_flag(run)
    _add_obs_flag(run)

    bounds = sub.add_parser(
        "bounds", help="print the paper's bound curves at one point"
    )
    bounds.add_argument("--n", type=int, default=1024)
    bounds.add_argument("--m", type=int, default=None, help="default: n")
    bounds.add_argument("--alpha", type=float, default=0.7)
    bounds.add_argument("--beta", type=float, default=1 / 16)
    bounds.add_argument("--q0", type=float, default=1.0)

    show = sub.add_parser(
        "show", help="run one world and render the dashboard"
    )
    show.add_argument("--n", type=int, default=256)
    show.add_argument("--alpha", type=float, default=0.6)
    show.add_argument("--beta", type=float, default=1 / 16)
    show.add_argument(
        "--adversary",
        choices=available_adversaries() + ["none"],
        default="flood",
    )
    show.add_argument("--seed", type=int, default=0)

    rep = sub.add_parser(
        "report", help="run experiments and emit one markdown report"
    )
    rep.add_argument(
        "--ids", nargs="*", default=None,
        help="experiment ids (default: all)",
    )
    rep.add_argument("--scale", choices=["smoke", "full"], default="smoke")
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument("--out", help="write the report here (default stdout)")
    _add_jobs_flag(rep)
    _add_lanes_flag(rep)
    _add_executor_flag(rep)
    _add_substrate_flag(rep)
    _add_obs_flag(rep)

    g = sub.add_parser("gauntlet", help="every adversary vs one strategy")
    g.add_argument("--n", type=int, default=256)
    g.add_argument("--alpha", type=float, default=0.4)
    g.add_argument("--beta", type=float, default=1 / 16)
    g.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="distill"
    )
    g.add_argument("--trials", type=int, default=8)
    g.add_argument("--seed", type=int, default=0)
    _add_jobs_flag(g)
    _add_lanes_flag(g)
    _add_executor_flag(g)
    _add_substrate_flag(g)
    _add_obs_flag(g)

    serve = sub.add_parser(
        "serve",
        help="serve a live billboard over TCP (see docs/serving.md)",
    )
    serve.add_argument(
        "--n", type=int, default=256, help="players the board admits"
    )
    serve.add_argument(
        "--m", type=int, default=128, help="objects the board scores"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help=(
            "listening address; keep it loopback unless the network is "
            "trusted (frames are pickles, like the exec fabric)"
        ),
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "listening port (default: REPRO_SERVE_PORT or 0 — an "
            "ephemeral port, printed on startup)"
        ),
    )
    _add_substrate_flag(serve)
    serve.add_argument(
        "--max-inflight",
        dest="max_inflight",
        type=int,
        default=None,
        help=(
            "shed requests beyond this many in processing at once "
            "(default: REPRO_SERVE_MAX_INFLIGHT or 256). Never changes "
            "what an admitted request computes."
        ),
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help=(
            "per-client admission rate in requests/second; 0 disables "
            "rate limiting (default: REPRO_SERVE_RATE or 0). Never "
            "changes what an admitted request computes."
        ),
    )

    o = sub.add_parser(
        "obs",
        help="inspect observation files (see docs/observability.md)",
    )
    osub = o.add_subparsers(dest="obs_command", required=True)
    summary = osub.add_parser(
        "summary", help="per-phase counter/timer breakdown of one file"
    )
    summary.add_argument("path", help="observation JSONL (from --obs-out)")
    summary.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the text table",
    )
    export = osub.add_parser(
        "export",
        help="re-emit a file's records as normalized JSONL on stdout",
    )
    export.add_argument("path", help="observation JSONL (from --obs-out)")
    diff = osub.add_parser(
        "diff",
        help=(
            "compare two observation files (manifest fields and event "
            "counters); exit 1 when they differ"
        ),
    )
    diff.add_argument("path_a", help="first observation JSONL")
    diff.add_argument("path_b", help="second observation JSONL")
    return parser


def cmd_list() -> int:
    print("experiments (repro experiment <id>):")
    for eid in available_experiments():
        print(f"  {eid}")
    print("strategies (--strategy):")
    for name in sorted(STRATEGIES):
        print(f"  {name}")
    print("adversaries (--adversary):")
    for name in available_adversaries():
        print(f"  {name}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.jobs is not None:
        set_default_n_jobs(args.jobs)
    if args.batch_lanes is not None:
        set_default_batch_lanes(args.batch_lanes)
    if args.executor is not None:
        set_default_executor(args.executor)
    if args.substrate is not None:
        set_default_substrate(args.substrate)
    result = run_experiment(args.experiment_id, args.scale, args.seed)
    rendered = result.render()
    print(rendered)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
    return 0 if result.all_checks_pass else 1


def _fault_plan_from(args: argparse.Namespace) -> Optional["FaultPlan"]:
    """Build the ``run`` subcommand's fault plan (None when faultless).

    Uses ``getattr`` defaults because ``gauntlet`` shares
    :func:`_measure_cell` without growing the fault flags.
    """
    post_loss = getattr(args, "post_loss", 0.0)
    churn = getattr(args, "churn", 0.0)
    if post_loss == 0.0 and churn == 0.0:
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan(
        post_loss_rate=post_loss,
        crash_rate=churn,
        restart_after=(
            getattr(args, "churn_restart", 4) if churn > 0.0 else None
        ),
    )


def _measure_cell(args: argparse.Namespace, adversary_name: str) -> TrialResults:
    m = args.m if getattr(args, "m", None) else args.n
    return run_trials(
        make_instance=lambda rng: planted_instance(
            n=args.n, m=m, beta=args.beta, alpha=args.alpha, rng=rng
        ),
        make_strategy=STRATEGIES[args.strategy],
        make_adversary=(
            (lambda: None)
            if adversary_name == "none"
            else (lambda: make_adversary(adversary_name))
        ),
        n_trials=args.trials,
        seed=(args.seed, len(adversary_name)),
        config=EngineConfig(max_rounds=1_000_000),
        n_jobs=resolve_n_jobs(getattr(args, "jobs", None)),
        batch_lanes=resolve_batch_lanes(getattr(args, "batch_lanes", None)),
        executor=resolve_executor(getattr(args, "executor", None)),
        fault_plan=_fault_plan_from(args),
        timeout=getattr(args, "timeout", None),
        checkpoint_path=getattr(args, "checkpoint", None),
        substrate=resolve_substrate(getattr(args, "substrate", None)),
    )


def cmd_run(args: argparse.Namespace) -> int:
    res = _measure_cell(args, args.adversary)
    bound = thm4_expected_rounds(args.n, args.alpha, args.beta)
    faults = ""
    if args.post_loss or args.churn:
        faults = (
            f", post-loss={args.post_loss:g}, churn={args.churn:g}"
            f"/restart={args.churn_restart}"
        )
    print(
        f"{args.strategy} vs {args.adversary} "
        f"(n={args.n}, alpha={args.alpha}, beta={args.beta:g}, "
        f"{args.trials} trials{faults})"
    )
    print(f"  mean individual rounds : {res.describe('mean_individual_rounds')}")
    print(f"  mean individual probes : {res.describe('mean_individual_probes')}")
    print(f"  last-player rounds     : {res.describe('max_individual_rounds')}")
    print(f"  success rate           : {res.success_rate():.3f}")
    print(f"  Theorem 4 curve        : {bound:.2f} (constant-free)")
    return 0 if res.success_rate() == 1.0 else 1


def cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis.card import theory_card

    m = args.m if args.m else args.n
    print(theory_card(args.n, m, args.alpha, args.beta, args.q0))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    from repro.sim.engine import SynchronousEngine
    from repro.viz import render_run
    from repro.world.generators import planted_instance

    # Three *independent* streams from one seed. Arithmetic derivation
    # (seed, seed+1, seed+2) builds correlated PCG64 states; spawning is
    # the repo-wide stream-derivation discipline (reprolint RPL004).
    world_seq, honest_seq, adversary_seq = np.random.SeedSequence(
        args.seed
    ).spawn(3)
    instance = planted_instance(
        n=args.n, m=args.n, beta=args.beta, alpha=args.alpha,
        rng=np.random.default_rng(world_seq),
    )
    engine = SynchronousEngine(
        instance,
        DistillStrategy(),
        adversary=(
            None
            if args.adversary == "none"
            else make_adversary(args.adversary)
        ),
        rng=np.random.default_rng(honest_seq),
        adversary_rng=np.random.default_rng(adversary_seq),
    )
    metrics = engine.run()
    print(render_run(engine, metrics))
    return 0 if metrics.all_honest_satisfied else 1


def cmd_report(args: argparse.Namespace) -> int:
    if args.jobs is not None:
        set_default_n_jobs(args.jobs)
    if args.batch_lanes is not None:
        set_default_batch_lanes(args.batch_lanes)
    if args.executor is not None:
        set_default_executor(args.executor)
    if args.substrate is not None:
        set_default_substrate(args.substrate)
    report = generate_report(
        experiment_ids=args.ids, scale=args.scale, seed=args.seed
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def cmd_gauntlet(args: argparse.Namespace) -> int:
    table = Table(
        ["adversary", "rounds", "probes", "tail", "success"],
        formats={
            "rounds": ".2f",
            "probes": ".2f",
            "tail": ".1f",
            "success": ".2f",
        },
    )
    ok = True
    for name in available_adversaries():
        res = _measure_cell(args, name)
        ok &= res.success_rate() == 1.0
        table.add_row(
            adversary=name,
            rounds=res.mean("mean_individual_rounds"),
            probes=res.mean("mean_individual_probes"),
            tail=res.mean("max_individual_rounds"),
            success=res.success_rate(),
        )
    print(
        f"{args.strategy} gauntlet "
        f"(n={args.n}, alpha={args.alpha}, beta={args.beta:g})"
    )
    print(table.render())
    return 0 if ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        BillboardService,
        ServeConfig,
        resolve_serve_max_inflight,
        resolve_serve_port,
        resolve_serve_rate,
    )

    config = ServeConfig(
        n_players=args.n,
        n_objects=args.m,
        host=args.host,
        port=resolve_serve_port(args.port),
        substrate=args.substrate,
        max_inflight=resolve_serve_max_inflight(args.max_inflight),
        rate=resolve_serve_rate(args.rate),
    )
    try:
        BillboardService(config).run()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro import obs

    if args.obs_command == "summary":
        data = obs.load_observations(args.path)
        if args.json:
            print(json.dumps(obs.summarize(data), indent=2, sort_keys=True))
        else:
            print(obs.render_summary(data))
        return 0
    if args.obs_command == "export":
        data = obs.load_observations(args.path)
        registry = obs.Registry()
        for name, value in data.counters.items():
            registry.counter(name).add(value)
        for name, (count, total) in data.timers.items():
            registry.timer(name).add(total, count=count)
        for line in obs.observation_lines(
            manifest=data.manifest, registry=registry
        ):
            print(line)
        for record in data.traces:
            print(json.dumps({"type": "trace", **record}, sort_keys=True))
        return 0
    if args.obs_command == "diff":
        from repro.obs.export import (
            diff_observations,
            informational_differences,
        )

        data_a = obs.load_observations(args.path_a)
        data_b = obs.load_observations(args.path_b)
        differences = diff_observations(data_a, data_b)
        for line in informational_differences(data_a, data_b):
            print(f"note: {line}")
        if not differences:
            print("observations match (manifest fields and counters)")
            return 0
        for line in differences:
            print(line)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


def _write_cli_observations(path: str, registry: Any) -> None:
    """Persist a command's registry; environmental failures surface as
    :class:`~repro.errors.ConfigurationError` (caught in :func:`main`)."""
    from repro.errors import ConfigurationError
    from repro.obs.export import write_observations

    try:
        write_observations(
            path, manifest=registry.manifest, registry=registry
        )
    except OSError as exc:
        raise ConfigurationError(
            f"cannot write observations to {path!r}: {exc}; check that "
            "the directory exists and is writable"
        ) from None
    print(f"observations written to {path}", file=sys.stderr)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return cmd_list()
    if args.command == "experiment":
        return cmd_experiment(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "bounds":
        return cmd_bounds(args)
    if args.command == "show":
        return cmd_show(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "gauntlet":
        return cmd_gauntlet(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "obs":
        return cmd_obs(args)
    raise AssertionError("unreachable")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_out = getattr(args, "obs_out", None)
    try:
        if obs_out is None:
            return _dispatch(args)
        from repro.obs.registry import observe

        with observe() as registry:
            code = _dispatch(args)
        _write_cli_observations(obs_out, registry)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
