"""The trivial baseline: ignore the billboard entirely.

"The trivial algorithm where each player probes a random object in each
step (disregarding the billboard completely) will terminate in ``O(1/β)``
expected time" (Section 3). It is immune to any adversary — there is
nothing to poison — and it is exactly what DISTILL must beat whenever
``1/α << 1/β``.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.views import BillboardView
from repro.strategies.base import Strategy, StrategyContext


class TrivialStrategy(Strategy):
    """Uniform random probing; votes (for the record) and halts on success."""

    name = "trivial"

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        if not ctx.supports_local_testing:
            raise ValueError("TrivialStrategy requires local testing")

    def make_batched(self, n_lanes: int) -> "BatchedTrivialStrategy":
        """Native trial-lane counterpart (see :mod:`repro.baselines.batched`)."""
        from repro.baselines.batched import BatchedTrivialStrategy

        return BatchedTrivialStrategy()

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        return self.rng.integers(
            self.ctx.m, size=active_players.size
        ).astype(np.int64)
