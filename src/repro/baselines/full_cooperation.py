"""The idealized full-cooperation urn search of the Theorem 1 proof.

Theorem 1's proof imagines the *best possible* honest behaviour: "without
loss of generality we might as well assume that no two honest players ever
try the same bad object (i.e., the algorithm ensures full cooperation,
since the honest players know what reports are trustworthy)". The honest
cohort thus draws balls from an urn without replacement, and as soon as
anyone hits a good object, everyone follows.

This baseline is *not achievable* against a real adversary (players cannot
tell whom to trust); it is the measured witness of the Ω(1/(αβn)) lower
bound — no algorithm can beat its curve (bench E1).

Implementation: the cohort draws one shared random permutation of objects;
in each round the k-th active player probes the next k-th unconsumed
object. Votes by this cohort are trusted (the cohort remembers which votes
are its own, so Byzantine votes are ignored — "the honest players know
what reports are trustworthy"); once a trusted vote exists, remaining
players probe that object and halt.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.billboard.views import BillboardView
from repro.strategies.base import Strategy, StrategyContext


class FullCooperationStrategy(Strategy):
    """Perfect honest coordination: a without-replacement sweep."""

    name = "full-cooperation"

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        if not ctx.supports_local_testing:
            raise ValueError("FullCooperationStrategy requires local testing")
        self._order = rng.permutation(ctx.m).astype(np.int64)
        self._consumed = 0
        self._trusted_good: Optional[int] = None

    def make_batched(self, n_lanes: int) -> "BatchedFullCooperationStrategy":
        """Native trial-lane counterpart (see :mod:`repro.baselines.batched`)."""
        from repro.baselines.batched import BatchedFullCooperationStrategy

        return BatchedFullCooperationStrategy()

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        count = active_players.size
        if self._trusted_good is not None:
            return np.full(count, self._trusted_good, dtype=np.int64)
        take = min(count, self._order.size - self._consumed)
        probes = np.full(count, -1, dtype=np.int64)
        probes[:take] = self._order[self._consumed : self._consumed + take]
        self._consumed += take
        return probes

    def handle_results(
        self,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        vote, halt = super().handle_results(round_no, players, objects, values)
        if vote.any() and self._trusted_good is None:
            # Remember our own first success; the cohort trusts only itself.
            self._trusted_good = int(objects[np.flatnonzero(vote)[0]])
        return vote, halt
