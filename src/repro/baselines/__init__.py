"""Baseline algorithms the paper compares against.

* :class:`~repro.baselines.trivial.TrivialStrategy` — probe a uniformly
  random object each round, ignore the billboard; ``O(1/β)`` expected cost
  (noted after Theorem 2).
* :class:`~repro.baselines.async_ec04.AsyncEC04Strategy` — the prior
  asynchronous algorithm of [Awerbuch et al., EC'04] run under a
  synchronous round-robin schedule; ``O(log n/(αβn) + log n/α)`` expected
  rounds (Section 1.2), i.e. ``Ω(log n)`` individual cost even when almost
  everyone is honest — the gap DISTILL closes.
* :class:`~repro.baselines.full_cooperation.FullCooperationStrategy` — the
  idealized no-repeat urn search of the Theorem 1 proof (honest players
  know whom to trust and never duplicate a probe); its measured cost *is*
  the Ω(1/(αβn)) lower-bound curve.
"""

from repro.baselines.trivial import TrivialStrategy
from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.batched import (
    BatchedFullCooperationStrategy,
    BatchedTrivialStrategy,
)
from repro.baselines.full_cooperation import FullCooperationStrategy

__all__ = [
    "AsyncEC04Strategy",
    "BatchedFullCooperationStrategy",
    "BatchedTrivialStrategy",
    "FullCooperationStrategy",
    "TrivialStrategy",
]
