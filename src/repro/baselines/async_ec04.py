"""The prior asynchronous algorithm [1] under a round-robin schedule.

The paper's point of comparison (Section 1.2): "the asynchronous algorithm
[Awerbuch, Patt-Shamir, Peleg, Tuttle — EC'04], when considered under a
synchronous schedule (say, round robin), halts in expected time
``O(log n/(αβn) + log n/α)``" — so even with almost all players honest its
individual cost is ``Ω(log n)``, whereas DISTILL's is ``O(1)``.

The EC'04 rule balances exploration against exploitation: in each step a
player flips a fair coin and either

* **explores** — probes a uniformly random object, or
* **exploits** — picks a uniformly random player and probes the object
  that player currently recommends (if any).

Satisfied players spread through exploitation at rate ``∝ (satisfied
honest)/n`` per step, giving the logarithmic epidemic-style growth that
produces the ``log n`` terms; a Byzantine voter slows the epidemic by at
most its share of the advice pool.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.views import BillboardView
from repro.strategies.base import Strategy, StrategyContext
from repro.strategies.probe_advice import AdviceAlternator


class AsyncEC04Strategy(Strategy):
    """Explore/exploit with a fair coin per player per round.

    Parameters
    ----------
    explore_probability:
        Chance of an exploration step (the EC'04 rule uses 1/2).
    """

    name = "async-ec04"

    def __init__(self, explore_probability: float = 0.5) -> None:
        if not 0 < explore_probability <= 1:
            raise ValueError(
                f"explore_probability must be in (0, 1], got "
                f"{explore_probability}"
            )
        self.explore_probability = explore_probability

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        if not ctx.supports_local_testing:
            raise ValueError("AsyncEC04Strategy requires local testing")
        self.alternator = AdviceAlternator(ctx.n)

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        count = active_players.size
        explore = self.rng.random(count) < self.explore_probability
        probes = np.empty(count, dtype=np.int64)
        probes[explore] = self.rng.integers(
            self.ctx.m, size=int(explore.sum())
        )
        n_advice = int((~explore).sum())
        if n_advice:
            votes = view.current_vote_array()
            advisors = self.rng.integers(self.ctx.n, size=n_advice)
            probes[~explore] = votes[advisors]
        return probes
