"""Native batched baselines: trivial random probing and full cooperation.

Both baselines carry almost no state, so their lane-indexed counterparts
are direct transcriptions — the per-lane draw sequences are the scalar
implementations' lines executed against each lane's own rng stream, in
lane order, which keeps them bit-identical to the scalar engine.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.billboard.views import BillboardView
from repro.strategies.base import StrategyContext
from repro.strategies.batched import BatchedStrategy


class BatchedTrivialStrategy(BatchedStrategy):
    """Lane-indexed uniform random probing (Section 3's trivial bound)."""

    name = "trivial"

    def reset_lanes(
        self,
        contexts: Sequence[StrategyContext],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        for ctx in contexts:
            if not ctx.supports_local_testing:
                raise ValueError("TrivialStrategy requires local testing")
        self._contexts = list(contexts)
        self._rngs = list(rngs)

    def choose_probes_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        active_players: Sequence[np.ndarray],
        views: Sequence[BillboardView],
    ) -> List[np.ndarray]:
        return [
            self._rngs[k]
            .integers(self._contexts[k].m, size=active.size)
            .astype(np.int64)
            for k, active in zip(lanes, active_players)
        ]

    def handle_results_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        players: Sequence[np.ndarray],
        objects: Sequence[np.ndarray],
        values: Sequence[np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for k, vals in zip(lanes, values):
            good = vals >= self._contexts[k].good_threshold
            out.append((good, good))
        return out


class BatchedFullCooperationStrategy(BatchedStrategy):
    """Lane-indexed without-replacement urn sweep (Theorem 1 witness)."""

    name = "full-cooperation"

    def reset_lanes(
        self,
        contexts: Sequence[StrategyContext],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        for ctx in contexts:
            if not ctx.supports_local_testing:
                raise ValueError("FullCooperationStrategy requires local testing")
        self._contexts = list(contexts)
        self._orders = [
            rng.permutation(ctx.m).astype(np.int64)
            for ctx, rng in zip(contexts, rngs)
        ]
        self._consumed = [0 for _ in contexts]
        self._trusted_good: List[Optional[int]] = [None for _ in contexts]

    def choose_probes_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        active_players: Sequence[np.ndarray],
        views: Sequence[BillboardView],
    ) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for k, active in zip(lanes, active_players):
            count = active.size
            trusted = self._trusted_good[k]
            if trusted is not None:
                out.append(np.full(count, trusted, dtype=np.int64))
                continue
            order = self._orders[k]
            consumed = self._consumed[k]
            take = min(count, order.size - consumed)
            probes = np.full(count, -1, dtype=np.int64)
            probes[:take] = order[consumed : consumed + take]
            self._consumed[k] = consumed + take
            out.append(probes)
        return out

    def handle_results_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        players: Sequence[np.ndarray],
        objects: Sequence[np.ndarray],
        values: Sequence[np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for k, objs, vals in zip(lanes, objects, values):
            good = vals >= self._contexts[k].good_threshold
            if good.any() and self._trusted_good[k] is None:
                self._trusted_good[k] = int(objs[np.flatnonzero(good)[0]])
            out.append((good, good))
        return out
