"""Deterministic fault decisions for one run.

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan`
to one dedicated rng stream — the runner hands it the pinned *fourth*
per-trial stream (reserved as a spare since the parallel-runner PR), so
enabling faults never shifts the world/honest/adversary streams and a
null plan is bit-identical to no fault layer at all.

The injector is a decision oracle plus a delayed-post queue; the engines
own all game state (who is active, what is on the board) and translate
decisions into effects and trace events. All decisions are drawn in a
fixed per-round order (delivery → restarts → crashes → post filtering →
observation noise), so for a given plan and seed the fault realization
is identical run-to-run, serial or parallel, traced or not.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.faults.plan import FaultPlan
from repro.world.valuemodel import PerturbedValueModel, ValueModel

#: a billboard entry as the engines build them: (player, object, value, kind)
PostEntry = TypeVar("PostEntry", bound=tuple)


class FaultInjector:
    """Turn a fault plan into concrete, seed-reproducible decisions.

    Parameters
    ----------
    plan:
        The declarative fault description.
    rng:
        A generator dedicated to fault decisions (the per-trial spare
        stream when driven by the runner). The injector is the stream's
        only consumer.
    """

    def __init__(self, plan: FaultPlan, rng: np.random.Generator) -> None:
        self.plan = plan
        self.rng = rng
        #: delayed posts keyed by delivery round
        self._queue: Dict[int, List[tuple]] = {}
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear per-run state (the engines call this at run start)."""
        self._queue.clear()
        self.counts = {
            "dropped_posts": 0,
            "delayed_posts": 0,
            "crashes": 0,
            "restarts": 0,
        }

    # ------------------------------------------------------------------
    # Lossy billboard
    # ------------------------------------------------------------------
    def filter_posts(
        self, round_no: int, entries: Sequence[tuple]
    ) -> Tuple[List[tuple], List[tuple], List[Tuple[int, tuple]]]:
        """Decide each post's fate: delivered now, dropped, or delayed.

        Returns ``(delivered, dropped, delayed)``; ``delayed`` pairs each
        entry with its delivery round, and the entry is queued internally
        until :meth:`due_posts` releases it. One uniform draw decides
        drop-vs-delay-vs-deliver per entry, so the stream advances by
        exactly ``len(entries)`` draws plus one batch of delay lengths.
        """
        loss = self.plan.post_loss_rate
        delay = self.plan.post_delay_rate
        if not entries or (loss == 0.0 and delay == 0.0):
            return list(entries), [], []
        u = self.rng.random(len(entries))
        delivered: List[tuple] = []
        dropped: List[tuple] = []
        delayed_entries: List[tuple] = []
        for entry, coin in zip(entries, u):
            if coin < loss:
                dropped.append(entry)
            elif coin < loss + delay:
                delayed_entries.append(entry)
            else:
                delivered.append(entry)
        delayed: List[Tuple[int, tuple]] = []
        if delayed_entries:
            lags = self.rng.integers(
                1, self.plan.max_post_delay + 1, size=len(delayed_entries)
            )
            for entry, lag in zip(delayed_entries, lags):
                deliver_at = round_no + int(lag)
                self._queue.setdefault(deliver_at, []).append(entry)
                delayed.append((deliver_at, entry))
        self.counts["dropped_posts"] += len(dropped)
        self.counts["delayed_posts"] += len(delayed)
        return delivered, dropped, delayed

    def filter_post_arrays(
        self,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
        kind: Any,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-native :meth:`filter_posts` for one same-kind post block.

        The batched engine keeps posts as parallel arrays rather than
        entry tuples; this method makes the identical decisions from the
        identical stream position — one ``random(len(block))`` batch,
        then one batch of delay lengths — and queues delayed posts (as
        tuples, in block order) in the same internal queue, so a lane's
        fault realization is bit-for-bit the scalar engine's. Returns
        the ``(players, objects, values)`` delivered this round.
        """
        loss = self.plan.post_loss_rate
        delay = self.plan.post_delay_rate
        size = int(players.shape[0])
        if size == 0 or (loss == 0.0 and delay == 0.0):
            return players, objects, values
        u = self.rng.random(size)
        dropped = u < loss
        delayed = ~dropped & (u < loss + delay)
        delivered = ~dropped & ~delayed
        n_delayed = int(np.count_nonzero(delayed))
        if n_delayed:
            lags = self.rng.integers(
                1, self.plan.max_post_delay + 1, size=n_delayed
            )
            for i, lag in zip(np.flatnonzero(delayed), lags):
                deliver_at = round_no + int(lag)
                self._queue.setdefault(deliver_at, []).append(
                    (
                        int(players[i]),
                        int(objects[i]),
                        float(values[i]),
                        kind,
                    )
                )
        self.counts["dropped_posts"] += int(np.count_nonzero(dropped))
        self.counts["delayed_posts"] += n_delayed
        return players[delivered], objects[delivered], values[delivered]

    def due_posts(self, round_no: int) -> List[tuple]:
        """Release the delayed posts scheduled to land this round."""
        return self._queue.pop(round_no, [])

    @property
    def pending_posts(self) -> int:
        """Delayed posts still in flight (undelivered at run end = lost)."""
        return sum(len(batch) for batch in self._queue.values())

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def crash_coins(self, round_no: int, player_ids: np.ndarray) -> np.ndarray:
        """Which of ``player_ids`` crash this round.

        Draws one coin per candidate (a single vectorized batch), so the
        stream advances by ``player_ids.size`` regardless of outcomes.
        """
        if self.plan.crash_rate == 0.0 or player_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        mask = self.rng.random(player_ids.size) < self.plan.crash_rate
        crashed = player_ids[mask]
        self.counts["crashes"] += int(crashed.size)
        return crashed

    def note_restarts(self, player_ids: np.ndarray) -> None:
        """Book restarts for the fault summary (no randomness involved)."""
        self.counts["restarts"] += int(player_ids.size)

    # ------------------------------------------------------------------
    # Observation noise
    # ------------------------------------------------------------------
    def wrap_value_model(self, inner: ValueModel) -> ValueModel:
        """Wrap ``inner`` with the plan's observation noise (or pass it
        through untouched when the noise rate is zero)."""
        if self.plan.observation_noise_rate == 0.0:
            return inner
        return PerturbedValueModel(
            inner,
            rng=self.rng,
            noise_rate=self.plan.observation_noise_rate,
            noise=self.plan.observation_noise,
        )

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """Fault realization summary (folded into run diagnostics)."""
        return {**self.counts, "undelivered_posts": self.pending_posts}
