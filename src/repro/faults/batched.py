"""Lane-vectorized fault injection for the batched engine.

The batched engine (:mod:`repro.sim.batch_engine`) advances ``K``
independent trials — lanes — in lockstep. :class:`BatchedFaultInjector`
is the lane-indexed counterpart of
:class:`~repro.faults.injector.FaultInjector`: one scalar injector per
lane (or ``None`` for lanes with no faults — a ``None`` or null plan),
each bound to that lane's pinned *fourth* per-trial rng stream.

Equivalence contract, mirroring the batched strategy/adversary layers:
for each lane the fault *decisions* are drawn through the scalar
injector's own code — the same streams, consumed in the scalar engine's
exact per-round order (delivery → restarts → crashes → post filtering →
observation noise) — so a lane's fault realization is bit-identical to
a scalar run of the same trial. What is batched is the *state
application*: crashes and restarts land on the engine's ``(K, n)``
``active``/``down_until``/``halted_round`` arrays as single
fancy-indexed scatters across all lanes, and post filtering stays
array-native end to end
(:meth:`~repro.faults.injector.FaultInjector.filter_post_arrays` into
:meth:`~repro.billboard.lanes.LaneBoard.post_block`).

Because each lane carries its own injector, lanes of one batch may run
*different* fault plans — the substrate for grid lanes, where one round
loop serves many experiment cells of a sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.world.valuemodel import ValueModel

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle
    from repro.billboard.lanes import LaneBillboard
    from repro.strategies.batched import BatchedStrategy


class BatchedFaultInjector:
    """``K`` per-lane fault realizations advanced in lockstep.

    Parameters
    ----------
    injectors:
        One :class:`FaultInjector` per lane, or ``None`` for lanes that
        run fault-free (bit-identical to no fault layer, matching the
        scalar runner's treatment of absent/null plans).
    """

    def __init__(
        self, injectors: Sequence[Optional[FaultInjector]]
    ) -> None:
        if not injectors:
            raise ConfigurationError(
                "BatchedFaultInjector needs at least one lane"
            )
        self._injectors: List[Optional[FaultInjector]] = list(injectors)
        self.n_lanes = len(self._injectors)

    @classmethod
    def from_plans(
        cls,
        plans: Sequence[Optional[FaultPlan]],
        rngs: Sequence[np.random.Generator],
    ) -> "BatchedFaultInjector":
        """Build per-lane injectors from per-lane plans and fault rngs.

        ``None`` and null plans produce fault-free lanes (no injector —
        the lane's spare stream stays untouched, like the scalar path).
        """
        if len(plans) != len(rngs):
            raise ConfigurationError(
                f"got {len(plans)} plans for {len(rngs)} fault streams"
            )
        return cls(
            [
                (
                    FaultInjector(plan, rng)
                    if plan is not None and not plan.is_null()
                    else None
                )
                for plan, rng in zip(plans, rngs)
            ]
        )

    # ------------------------------------------------------------------
    def lane(self, lane: int) -> Optional[FaultInjector]:
        """Lane ``lane``'s scalar injector (``None``: fault-free lane)."""
        return self._injectors[lane]

    def reset(self) -> None:
        """Clear per-run state on every lane (engine calls at run start)."""
        for injector in self._injectors:
            if injector is not None:
                injector.reset()

    # ------------------------------------------------------------------
    # Observation noise
    # ------------------------------------------------------------------
    def wrap_value_models(
        self, models: Sequence[ValueModel]
    ) -> List[ValueModel]:
        """Per-lane :meth:`FaultInjector.wrap_value_model` (noise-free
        lanes pass through untouched)."""
        if len(models) != self.n_lanes:
            raise ConfigurationError(
                f"got {len(models)} value models for {self.n_lanes} lanes"
            )
        return [
            injector.wrap_value_model(model) if injector is not None else model
            for injector, model in zip(self._injectors, models)
        ]

    # ------------------------------------------------------------------
    # Round start: delayed deliveries + restarts
    # ------------------------------------------------------------------
    def round_start(
        self,
        round_no: int,
        alive: np.ndarray,
        active: np.ndarray,
        down_until: np.ndarray,
        boards: "LaneBillboard",
        strategy: "BatchedStrategy",
    ) -> None:
        """Round-start fault effects for every still-alive lane.

        Delayed posts due this round land on their lane boards (entry
        order preserved), then every player whose downtime has elapsed
        rejoins: one ``(K, n)`` masked scatter flips
        ``down_until``/``active``, and the strategy is notified per lane
        in lane order — the scalar engine's
        ``_fault_round_start`` semantics, lane by lane.
        """
        for k in np.flatnonzero(alive):
            injector = self._injectors[int(k)]
            if injector is None:
                continue
            due = injector.due_posts(round_no)
            if due:
                boards.lane(int(k)).post_entries(round_no, due)
        due_mask = down_until == round_no
        due_mask[~alive, :] = False
        if not due_mask.any():
            return
        down_until[due_mask] = -1
        active |= due_mask
        for k in np.flatnonzero(due_mask.any(axis=1)):
            k = int(k)
            restarts = np.flatnonzero(due_mask[k])
            injector = self._injectors[k]
            assert injector is not None  # down players imply an injector
            injector.note_restarts(restarts)
            strategy.on_player_restart(k, round_no, restarts)

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def apply_crashes(
        self,
        round_no: int,
        lanes: Sequence[int],
        active: np.ndarray,
        halted_round: np.ndarray,
        down_until: np.ndarray,
    ) -> None:
        """Draw crash coins per lane, apply them in one batched scatter.

        Coins come from each lane's own injector (in lane order, exactly
        the scalar draw); permanent crashes halt the player, restartable
        ones book a comeback round — all lanes' effects land on the
        ``(K, n)`` state arrays with one fancy-indexed assignment per
        field.
        """
        lane_parts: List[np.ndarray] = []
        player_parts: List[np.ndarray] = []
        down_parts: List[np.ndarray] = []
        for k in lanes:
            injector = self._injectors[k]
            if injector is None:
                continue
            crashed = injector.crash_coins(round_no, np.flatnonzero(active[k]))
            if crashed.size:
                lane_parts.append(np.full(crashed.size, k, dtype=np.int64))
                player_parts.append(crashed)
                restart_after = injector.plan.restart_after
                down_parts.append(
                    np.full(
                        crashed.size,
                        -1
                        if restart_after is None
                        else round_no + restart_after,
                        dtype=np.int64,
                    )
                )
        if not lane_parts:
            return
        lane_idx = np.concatenate(lane_parts)
        players = np.concatenate(player_parts)
        downs = np.concatenate(down_parts)
        active[lane_idx, players] = False
        permanent = downs < 0
        halted_round[lane_idx[permanent], players[permanent]] = round_no
        down_until[lane_idx[~permanent], players[~permanent]] = downs[
            ~permanent
        ]

    # ------------------------------------------------------------------
    # Lossy billboard
    # ------------------------------------------------------------------
    def filter_block(
        self,
        lane: int,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
        kind: Any,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Filter one lane's same-kind post block; returns the delivered
        sub-block (see :meth:`FaultInjector.filter_post_arrays`)."""
        injector = self._injectors[lane]
        if injector is None:
            return players, objects, values
        return injector.filter_post_arrays(
            round_no, players, objects, values, kind
        )

    # ------------------------------------------------------------------
    def info(self, lane: int) -> Dict[str, Any]:
        """Lane ``lane``'s fault realization summary (``{}`` when the
        lane ran fault-free, matching the scalar engine)."""
        injector = self._injectors[lane]
        return injector.info() if injector is not None else {}

    def info_total(self) -> Dict[str, int]:
        """Counts summed across all faulted lanes (for the ``faults.*``
        obs fold — equals the sum of ``K`` scalar runs' folds)."""
        total: Dict[str, int] = {}
        for injector in self._injectors:
            if injector is None:
                continue
            for key, value in injector.info().items():
                total[key] = total.get(key, 0) + int(value)
        return total
