"""Declarative fault plans.

A :class:`FaultPlan` is a frozen description of *which* infrastructure
faults a run should suffer and at what rates; the
:class:`~repro.faults.injector.FaultInjector` turns a plan plus a
dedicated rng stream into concrete per-round decisions. Keeping the plan
declarative (and hashable) lets experiments sweep fault rates the same
way they sweep ``n`` or ``alpha``, and lets the trial runner ship plans
to pool workers without pickling any live state.

The paper's model assumes a *reliable* billboard and immortal honest
players; every knob here weakens one of those assumptions (see
``docs/robustness.md`` for the full fault model):

* ``post_loss_rate`` / ``post_delay_rate`` — a lossy billboard: each
  honest post is independently dropped, or delivered late with a fresh
  (later) round stamp.
* ``crash_rate`` / ``restart_after`` — churn: an active honest player
  crashes with per-round probability ``crash_rate``; with
  ``restart_after=k`` it rejoins ``k`` rounds later with no local
  memory (it re-reads the billboard — the paper's shared board is what
  makes restarting meaningful), with ``restart_after=None`` it is gone
  for good.
* ``observation_noise_rate`` / ``observation_noise`` — probe-observation
  noise, injected through a wrapped
  :class:`~repro.world.valuemodel.ValueModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """Rates and parameters of the injected faults (all default to off).

    Attributes
    ----------
    post_loss_rate:
        Probability that an honest billboard post is dropped.
    post_delay_rate:
        Probability that an honest post (not already dropped) is delayed;
        the delay is uniform on ``1..max_post_delay`` rounds (steps, on
        the asynchronous engine) and the post lands with the *delivery*
        round's stamp.
    max_post_delay:
        Largest possible delay, in rounds.
    crash_rate:
        Per-round probability that each still-active honest player
        crashes (per scheduled step, on the asynchronous engine).
    restart_after:
        Rounds a crashed player stays down before rejoining with no
        local memory; ``None`` means crashed players never return.
    observation_noise_rate:
        Probability that a probe's observed value is perturbed.
    observation_noise:
        Half-width of the uniform perturbation applied to noisy probes.
    """

    post_loss_rate: float = 0.0
    post_delay_rate: float = 0.0
    max_post_delay: int = 3
    crash_rate: float = 0.0
    restart_after: Optional[int] = None
    observation_noise_rate: float = 0.0
    observation_noise: float = 0.1

    def __post_init__(self) -> None:
        _check_rate("post_loss_rate", self.post_loss_rate)
        _check_rate("post_delay_rate", self.post_delay_rate)
        _check_rate("crash_rate", self.crash_rate)
        _check_rate("observation_noise_rate", self.observation_noise_rate)
        if self.post_loss_rate + self.post_delay_rate > 1.0:
            raise ConfigurationError(
                "post_loss_rate + post_delay_rate must not exceed 1, got "
                f"{self.post_loss_rate} + {self.post_delay_rate}"
            )
        if self.max_post_delay < 1:
            raise ConfigurationError(
                f"max_post_delay must be >= 1, got {self.max_post_delay}"
            )
        if self.restart_after is not None and self.restart_after < 1:
            raise ConfigurationError(
                f"restart_after must be >= 1 or None, got {self.restart_after}"
            )
        if self.observation_noise < 0:
            raise ConfigurationError(
                f"observation_noise must be >= 0, got {self.observation_noise}"
            )

    def is_null(self) -> bool:
        """Whether this plan injects nothing (all rates zero).

        Null plans are the bit-identity contract: a run configured with a
        null plan must produce exactly the byte-for-byte output of a run
        with no fault layer at all.
        """
        return (
            self.post_loss_rate == 0.0
            and self.post_delay_rate == 0.0
            and self.crash_rate == 0.0
            and self.observation_noise_rate == 0.0
        )
