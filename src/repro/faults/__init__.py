"""Deterministic, seed-reproducible fault injection.

The paper proves its guarantees against an adaptive Byzantine adversary
but assumes perfect *infrastructure*: a reliable billboard and honest
players that never fail. This package weakens those assumptions in a
controlled, reproducible way so the reproduction can measure how the
bounds degrade under message loss, churn, and noisy observations
(experiment E15), and so the Monte-Carlo harness itself can be tested
against misbehaving workers.

Usage::

    from repro.faults import FaultPlan
    from repro.sim.runner import run_trials

    plan = FaultPlan(post_loss_rate=0.25, crash_rate=0.02, restart_after=4)
    res = run_trials(make_instance, DistillStrategy, n_trials=32,
                     seed=0, fault_plan=plan)

Design contract (enforced by the test suite): fault decisions draw only
from the pinned per-trial *fourth* rng stream, so a null plan — or no
plan — produces output bit-identical to the pre-fault-layer code, and a
faulty run is bit-identical across serial/parallel execution and with
tracing on or off.
"""

from repro.faults.batched import BatchedFaultInjector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

__all__ = ["BatchedFaultInjector", "FaultInjector", "FaultPlan"]
