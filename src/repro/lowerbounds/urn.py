"""Theorem 1: the collective-work lower bound.

The proof reduces any algorithm on a uniformly random labeling of ``βm``
good objects to drawing balls from an urn without replacement, with full
cooperation among the honest players (no duplicated probes). The expected
number of draws until the first good ball is exactly

    (m + 1) / (βm + 1),

and since at most ``αn`` honest probes happen per round, the expected
number of *rounds* (hence per-player probes) is at least
``Ω((m+1)/((βm+1)·αn)) = Ω(1/(αβn))``.

This module provides the closed form, a direct urn simulation, and the
per-player bound; bench E1 cross-checks all three against the measured
cost of :class:`~repro.baselines.full_cooperation.FullCooperationStrategy`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError


def expected_draws_until_good(m: int, n_good: int) -> float:
    """Exact expectation of draws (without replacement) to the first good.

    Standard negative-hypergeometric identity: with ``g`` good balls among
    ``m``, the expected draw index of the first good ball is
    ``(m + 1)/(g + 1)``.
    """
    if not 1 <= n_good <= m:
        raise ConfigurationError(
            f"need 1 <= n_good <= m, got n_good={n_good}, m={m}"
        )
    return (m + 1) / (n_good + 1)


def thm1_individual_lower_bound(
    n: int, m: int, alpha: float, beta: float
) -> float:
    """Theorem 1's per-player probe bound (exact constants of the proof).

    Expected draws ``(m+1)/(βm+1)`` spread over at most ``αn`` honest
    probes per round gives expected rounds — and each unsatisfied player
    probes once per round.
    """
    if not 0 < alpha <= 1 or not 0 < beta <= 1:
        raise ConfigurationError(
            f"alpha, beta must be in (0, 1], got {alpha}, {beta}"
        )
    n_good = max(1, int(round(beta * m)))
    draws = expected_draws_until_good(m, n_good)
    per_round = max(1.0, alpha * n)
    return draws / per_round


def simulate_urn_rounds(
    m: int,
    n_good: int,
    probes_per_round: int,
    rng: np.random.Generator,
    trials: int = 1,
) -> np.ndarray:
    """Rounds until the first good draw, consuming ``probes_per_round``
    distinct objects per round (the fully cooperative cohort).

    Returns one round count per trial. Vectorized: the first good draw's
    position in a uniformly random permutation is simulated by sampling
    the minimum of ``n_good`` positions chosen without replacement.
    """
    if probes_per_round < 1:
        raise ConfigurationError(
            f"probes_per_round must be >= 1, got {probes_per_round}"
        )
    if not 1 <= n_good <= m:
        raise ConfigurationError(
            f"need 1 <= n_good <= m, got n_good={n_good}, m={m}"
        )
    rounds = np.empty(trials, dtype=np.int64)
    for t in range(trials):
        positions = rng.choice(m, size=n_good, replace=False)
        first_good = int(positions.min())  # 0-based draw index
        rounds[t] = math.ceil((first_good + 1) / probes_per_round)
    return rounds
