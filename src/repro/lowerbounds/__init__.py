"""Lower-bound constructions (Section 3).

* :mod:`~repro.lowerbounds.urn` — Theorem 1: the collective-work bound
  ``Ω(1/(αβn))`` via the urn-without-replacement argument.
* :mod:`~repro.lowerbounds.partition` — Theorem 2: the symmetry bound
  ``Ω(min(1/α, 1/β))`` via the partition distribution ``{I_k}`` in which
  dishonest players follow the protocol over spoofed values.

Both proofs use Yao's Minimax Lemma: a randomized algorithm's worst-case
expectation is at least any input distribution's average over deterministic
algorithms. Empirically we evaluate the implemented (randomized)
algorithms directly on the hard distributions — the same expectation the
lemma bounds.
"""

from repro.lowerbounds.urn import (
    expected_draws_until_good,
    simulate_urn_rounds,
    thm1_individual_lower_bound,
)
from repro.lowerbounds.partition import (
    PartitionConstruction,
    evaluate_partition_bound,
)

__all__ = [
    "PartitionConstruction",
    "evaluate_partition_bound",
    "expected_draws_until_good",
    "simulate_urn_rounds",
    "thm1_individual_lower_bound",
]
