"""Theorem 2: the symmetry lower bound ``Ω(min(1/α, 1/β))``.

The hard distribution. Besides the distinguished honest player 0, the
other ``n`` players are split into ``1/α`` groups ``P_1..P_{1/α}`` of size
``αn``, and the ``m`` objects into ``1/β`` classes ``O_1..O_{1/β}`` of
size ``βm``. Player ``j ∈ P_k`` always *reports* value 1 exactly on
``O_k`` — independent of the instance. Instance ``I_k`` (for
``k = 1..B``, ``B = min(1/α, 1/β)``) makes ``O_k`` the truly good class,
so in ``I_k`` the players of ``P_k`` happen to be honest and everyone else
is a protocol-following liar. Groups beyond ``B`` never report.

Every instance looks *identical* to player 0 until it probes an object of
the (unknown) distinguished class: B candidate classes, all sworn to by
equally sized, equally behaved cliques. Whatever order player 0 visits
classes in, the uniformly random ``k`` makes the expected visit index at
least ``B/2`` — no billboard cleverness can beat it.

:func:`evaluate_partition_bound` runs any implemented strategy over the
distribution and reports player 0's expected probes next to the ``B/2``
floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.adversaries.spoofed import SpoofedProtocolAdversary
from repro.errors import ConfigurationError
from repro.rng import RngFactory, SeedLike
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.strategies.base import Strategy
from repro.world.instance import Instance
from repro.world.objects import ObjectSpace


@dataclass
class PartitionConstruction:
    """The Theorem 2 world family for one (n, m, α, β).

    ``n`` counts the players *besides* player 0, as in the proof's
    "n+1 players of which αn+1 are honest" convention.
    """

    n: int
    m: int
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        self.group_size = int(round(self.alpha * self.n))
        self.class_size = int(round(self.beta * self.m))
        if self.group_size < 1 or self.class_size < 1:
            raise ConfigurationError(
                "alpha*n and beta*m must be >= 1 for the construction"
            )
        self.n_groups = self.n // self.group_size
        self.n_classes = self.m // self.class_size
        if self.n_groups < 1 or self.n_classes < 1:
            raise ConfigurationError("need at least one group and one class")
        #: the bound parameter B = min(1/alpha, 1/beta)
        self.B = min(self.n_groups, self.n_classes)

    # ------------------------------------------------------------------
    def group_members(self, k: int) -> np.ndarray:
        """Players of ``P_k`` (1-based ``k``), as ids in ``1..n``."""
        if not 1 <= k <= self.n_groups:
            raise ConfigurationError(f"group index {k} outside 1..{self.n_groups}")
        start = 1 + (k - 1) * self.group_size
        return np.arange(start, start + self.group_size, dtype=np.int64)

    def class_members(self, k: int) -> np.ndarray:
        """Objects of ``O_k`` (1-based ``k``)."""
        if not 1 <= k <= self.n_classes:
            raise ConfigurationError(f"class index {k} outside 1..{self.n_classes}")
        start = (k - 1) * self.class_size
        return np.arange(start, start + self.class_size, dtype=np.int64)

    def spoof_tables(self) -> Dict[int, np.ndarray]:
        """Instance-independent report tables: ``P_k`` swears by ``O_k``.

        Only groups ``1..B`` report (the proof silences the rest).
        """
        tables: Dict[int, np.ndarray] = {}
        for k in range(1, self.B + 1):
            table = np.zeros(self.m, dtype=np.float64)
            table[self.class_members(k)] = 1.0
            for player in self.group_members(k):
                tables[int(player)] = table
        return tables

    def build_instance(self, k: int) -> Instance:
        """Instance ``I_k``: class ``O_k`` is truly good, ``P_k`` honest."""
        if not 1 <= k <= self.B:
            raise ConfigurationError(f"instance index {k} outside 1..{self.B}")
        values = np.zeros(self.m, dtype=np.float64)
        values[self.class_members(k)] = 1.0
        good = values >= 0.5
        space = ObjectSpace(
            values, np.ones(self.m), good, good_threshold=0.5
        )
        honest = np.zeros(self.n + 1, dtype=bool)
        honest[0] = True
        honest[self.group_members(k)] = True
        return Instance(space, honest)


def evaluate_partition_bound(
    strategy_factory: Callable[[], Strategy],
    construction: PartitionConstruction,
    trials: int = 32,
    seed: SeedLike = 0,
    max_rounds: int = 100_000,
) -> Dict[str, float]:
    """Expected probes of player 0 for a strategy on the hard distribution.

    Each trial draws ``k`` uniformly from ``1..B``, runs the strategy on
    ``I_k`` with the protocol-mimicking cliques, and records player 0's
    probe count. Returns the mean, the ``B/2`` floor, and their ratio.
    """
    root = RngFactory.from_seed(seed)
    tables = construction.spoof_tables()
    probes: List[int] = []
    for trial_factory in root.trial_factories(trials):
        world_rng = trial_factory.spawn_generator()
        honest_rng = trial_factory.spawn_generator()
        adversary_rng = trial_factory.spawn_generator()
        k = int(world_rng.integers(1, construction.B + 1))
        instance = construction.build_instance(k)
        adversary = SpoofedProtocolAdversary(
            strategy_factory=strategy_factory,
            spoof_tables={
                p: t
                for p, t in tables.items()
                if not instance.honest_mask[p]
            },
        )
        engine = SynchronousEngine(
            instance,
            strategy_factory(),
            adversary=adversary,
            rng=honest_rng,
            adversary_rng=adversary_rng,
            config=EngineConfig(max_rounds=max_rounds, strict=True),
        )
        metrics = engine.run()
        probes.append(int(metrics.probes[0]))
    mean = float(np.mean(probes))
    floor = construction.B / 2.0
    return {
        "B": float(construction.B),
        "bound_floor": floor,
        "mean_probes_player0": mean,
        "ratio_to_floor": mean / floor if floor > 0 else math.inf,
        "trials": float(trials),
    }
