"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An algorithm, instance, or experiment was configured inconsistently.

    Examples: ``alpha`` outside ``(0, 1]``, a good-object fraction of zero,
    or a strategy handed an instance it cannot run on.
    """


class BillboardError(ReproError):
    """Base class for violations of the billboard substrate's contract."""


class TamperError(BillboardError):
    """An attempt was made to mutate or erase an existing billboard post.

    The billboard of the paper (Section 2.1) is append-only; any code path
    that would rewrite history is a bug and fails loudly.
    """


class InvalidPostError(BillboardError):
    """A post was malformed: unknown player, bad object id, or a post
    stamped with a round earlier than an already-appended post."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent internal state."""


class BudgetExceededError(SimulationError):
    """A run exceeded its safety round budget without terminating.

    DISTILL terminates with probability one, so hitting this in practice
    indicates either a mis-configured budget or an algorithm bug; raising is
    preferable to looping forever.
    """


class TrialTimeoutError(SimulationError):
    """A single Monte-Carlo trial exceeded its wall-clock budget.

    Raised by the trial runner when ``timeout=`` is set. A timed-out
    trial is *deterministic* — re-running the same seed would hang the
    same way — so the runner reports it instead of retrying (retries are
    reserved for crashed pool workers, which are environmental)."""


class ExecutorError(ReproError):
    """An execution backend failed and exhausted its retry budget.

    Carries the trials it *did* complete (``completed``, keyed by trial
    index) so a degradation chain — socket fabric → local pool → serial
    — resumes from partial progress instead of re-running finished work.
    Redispatch is safe either way: trials are keyed by pre-derived seed,
    so re-running one is bit-identical, but not re-running it is free.
    """

    def __init__(
        self, message: str, completed: "Optional[Dict[int, Any]]" = None
    ) -> None:
        super().__init__(message)
        self.completed: Dict[int, Any] = dict(completed) if completed else {}


class CheckpointError(ReproError):
    """A trial-runner checkpoint file is unreadable or belongs to a
    different sweep (seed or trial-count mismatch). Resuming against the
    wrong checkpoint would silently mix results from two experiments, so
    the runner fails loudly instead."""


class LoadShedError(ReproError):
    """The serving layer refused a request to protect its latency SLO.

    Raised client-side when :class:`~repro.serve.service.BillboardService`
    answers a request with a ``shed`` frame — the per-client token bucket
    ran dry or the global in-flight cap was hit. Shedding is *not* a
    failure of the board: the request was never applied, so the caller
    can back off and retry without risking a duplicate post. ``reason``
    carries the server's admission verdict (``"rate"`` or
    ``"inflight"``).
    """

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class AdversaryViolationError(SimulationError):
    """An adversary attempted an action outside the Byzantine model as
    mediated by the engine (e.g. casting a vote on behalf of an honest
    player, or probing for a player it does not control)."""
