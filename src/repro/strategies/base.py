"""The cohort strategy interface.

Honest players in the paper's synchronous model all run the same code and
read the same billboard, so their phase structure is identical in every
round — only their coin flips differ. We therefore implement an honest
protocol as a single *cohort* object that, each round, chooses a probe for
every active honest player at once (vectorized), rather than ``n`` separate
agent objects doing identical bookkeeping. Tests in
``tests/core/test_lockstep.py`` verify the observational equivalence by
re-deriving phase boundaries per player.

Information discipline: a strategy only ever sees

* the :class:`StrategyContext` — the public parameters a player of the
  paper legitimately knows (``n``, ``m``, the hardwired ``α`` and ``β``,
  and the local-test threshold when the model supports it), and
* a :class:`~repro.billboard.views.BillboardView` at the proper horizon.

It never sees ground-truth goodness, honest identities, or object values
other than through probe outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.billboard.views import BillboardView


@dataclass
class StrategyContext:
    """Public knowledge available to every honest player.

    Attributes
    ----------
    n, m:
        Numbers of players and objects.
    alpha:
        The honest fraction as *assumed by the protocol* (Figure 1
        hardwires ``α``; Section 5.1 removes the assumption). This may
        deliberately differ from the instance's true ``α``.
    beta:
        The good-object fraction assumed by the protocol.
    good_threshold:
        Local-testing threshold, or ``None`` in the no-local-testing
        model (Section 5.3).
    """

    n: int
    m: int
    alpha: float
    beta: float
    good_threshold: Optional[float] = None

    @property
    def supports_local_testing(self) -> bool:
        return self.good_threshold is not None


class Strategy:
    """Base class for honest cohort protocols.

    Lifecycle: the engine calls :meth:`reset` once, then per round
    :meth:`choose_probes` followed by :meth:`handle_results`, and finally
    reads :meth:`info` for diagnostics.
    """

    #: human-readable protocol name (used in tables)
    name: str = "strategy"

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        """Prepare for a fresh run."""
        self.ctx = ctx
        self.rng = rng

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        """Pick one object per active player for this round.

        Returns an int64 array aligned with ``active_players``; ``-1``
        means the player idles this round (e.g. an advice round where the
        chosen advisor has no vote).
        """
        raise NotImplementedError

    def handle_results(
        self,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Digest probe outcomes; decide votes and halts.

        Parameters are aligned arrays for the players that actually probed
        (idlers are excluded). Returns ``(vote_mask, halt_mask)``:
        ``vote_mask[i]`` — player posts a vote for ``objects[i]``;
        ``halt_mask[i]`` — player stops probing permanently.

        The default implements the local-testing rule of Figure 1: vote
        for, and halt on, the first object passing the local test.
        """
        threshold = self.ctx.good_threshold
        if threshold is None:
            raise NotImplementedError(
                "no-local-testing strategies must override handle_results"
            )
        good = values >= threshold
        return good, good

    def finished(self, round_no: int) -> bool:
        """Whether the protocol prescribes stopping now (Section 5.3 runs
        for a fixed number of rounds; local-testing runs stop when every
        honest player has halted)."""
        return False

    def on_player_restart(
        self, round_no: int, players: np.ndarray
    ) -> None:
        """Fault-injection hook: ``players`` return from a crash with no
        local memory and will be offered probes again from this round on.

        Cohort strategies are billboard-driven, so the default is a
        no-op — a restarted player simply re-reads the board, which is
        exactly the paper's recovery story for its shared-billboard
        design. Strategies that cache per-player state should clear it
        here.
        """

    def info(self) -> Dict[str, Any]:
        """Diagnostics exported into :class:`~repro.sim.metrics.RunMetrics`."""
        return {}
