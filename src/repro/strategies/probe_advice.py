"""The PROBE&SEEKADVICE primitive (Figure 1).

    Subroutine PROBE&SEEKADVICE(S):
        Pick a random object from the set S and probe it.
        Pick a random player j, and probe the object j votes for, if exists.

One invocation spans **two rounds** (one probe per round in the synchronous
model): an *exploration* round sampling uniformly from the current pool
``S``, then an *advice* round following the current vote of a uniformly
random player. Lemma 6's termination argument ("every second probe follows
a vote of a randomly chosen player") relies on exactly this alternation.

:class:`AdviceAlternator` factors the alternation out of DISTILL and its
variants: the owning strategy supplies the pool for exploration rounds, the
alternator resolves advice rounds from the billboard.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.views import BillboardView


class AdviceAlternator:
    """Schedules the explore/advise alternation for a cohort.

    Parameters
    ----------
    n_players:
        Number of players advice is sampled from (all ``n`` players,
        honest or not — a player cannot tell them apart).
    """

    def __init__(self, n_players: int) -> None:
        self.n_players = n_players

    @staticmethod
    def is_advice_round(phase_round_index: int) -> bool:
        """Round parity within a phase: odd sub-rounds follow advice."""
        return phase_round_index % 2 == 1

    def explore(
        self,
        pool: np.ndarray,
        active_count: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Uniform probes from ``pool`` for ``active_count`` players.

        An empty pool yields all-idle (``-1``) — this happens when e.g.
        Step 1.3 runs with no votes on the board yet.
        """
        if pool.size == 0:
            return np.full(active_count, -1, dtype=np.int64)
        picks = rng.integers(pool.size, size=active_count)
        return pool[picks].astype(np.int64)

    def advise(
        self,
        active_count: int,
        view: BillboardView,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advice probes: each player follows a uniformly random player's
        current vote; players whose advisor has no vote idle (``-1``)."""
        votes = view.current_vote_array()
        advisors = rng.integers(self.n_players, size=active_count)
        return votes[advisors].astype(np.int64)
