"""The batched (trial-lane) strategy protocol.

The batched engine advances ``K`` independent trials — *lanes* — through
one Python round loop. A :class:`BatchedStrategy` is the lane-indexed
counterpart of :class:`~repro.strategies.base.Strategy`: one object holds
the per-lane protocol state for all lanes and answers each round's
questions for every live lane at once.

Equivalence contract: for each lane ``k``, the sequence of draws taken
from ``rngs[k]`` and the probes/votes/halts produced must be exactly what
a fresh scalar strategy would produce given the same context, rng stream,
and billboard history. Native implementations (DISTILL, the baselines)
achieve this by reusing the very same helper code per lane; anything else
is wrapped in :class:`PerLaneStrategy`, which simply runs one scalar
strategy instance per lane — always correct, never fast.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.billboard.views import BillboardView
from repro.strategies.base import Strategy, StrategyContext


class BatchedStrategy:
    """Base class for lane-indexed honest cohort protocols.

    Lifecycle: the engine calls :meth:`reset_lanes` once with one context
    and one rng stream per lane, then per round :meth:`choose_probes_batch`
    followed by :meth:`handle_results_batch` (for the lanes that probed),
    and finally reads :meth:`info` per lane.

    Round methods receive *parallel sequences*: ``lanes[i]`` is a lane
    index, and every other sequence argument is aligned with it. Lanes
    that have finished are simply absent.
    """

    #: human-readable protocol name (matches the scalar strategy's)
    name: str = "strategy"

    def reset_lanes(
        self,
        contexts: Sequence[StrategyContext],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        raise NotImplementedError

    def finished(self, lane: int, round_no: int) -> bool:
        """Whether lane ``lane``'s protocol prescribes stopping now."""
        return False

    def choose_probes_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        active_players: Sequence[np.ndarray],
        views: Sequence[BillboardView],
    ) -> List[np.ndarray]:
        """One probe-choice array per listed lane (aligned with actives)."""
        raise NotImplementedError

    def handle_results_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        players: Sequence[np.ndarray],
        objects: Sequence[np.ndarray],
        values: Sequence[np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-lane ``(vote_mask, halt_mask)`` for the probing players."""
        raise NotImplementedError

    def on_player_restart(
        self, lane: int, round_no: int, players: np.ndarray
    ) -> None:
        """Fault-injection hook: ``players`` of lane ``lane`` rejoined
        after a crash (no local memory). Default: ignore, matching the
        scalar :meth:`~repro.strategies.base.Strategy.on_player_restart`
        — board-driven protocols re-derive everything they need."""

    def info(self, lane: int) -> Dict[str, Any]:
        """Per-lane diagnostics for :class:`~repro.sim.metrics.RunMetrics`."""
        return {}


class PerLaneStrategy(BatchedStrategy):
    """Adapter: run one scalar :class:`Strategy` instance per lane.

    This is the automatic fallback that makes *every* scalar strategy
    batchable: each lane gets its own instance, reset with its own
    context and rng stream, so the draw sequences are trivially identical
    to the scalar engine's. There is no cross-lane vectorization — the
    win is limited to the engine's shared round loop and the columnar
    billboard substrate.
    """

    def __init__(self, strategies: Sequence[Strategy]) -> None:
        if not strategies:
            raise ValueError("PerLaneStrategy needs at least one lane")
        self._strategies = list(strategies)
        self.name = self._strategies[0].name

    def reset_lanes(
        self,
        contexts: Sequence[StrategyContext],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        for strategy, ctx, rng in zip(self._strategies, contexts, rngs):
            strategy.reset(ctx, rng)

    def finished(self, lane: int, round_no: int) -> bool:
        return self._strategies[lane].finished(round_no)

    def choose_probes_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        active_players: Sequence[np.ndarray],
        views: Sequence[BillboardView],
    ) -> List[np.ndarray]:
        return [
            self._strategies[k].choose_probes(round_no, active, view)
            for k, active, view in zip(lanes, active_players, views)
        ]

    def handle_results_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        players: Sequence[np.ndarray],
        objects: Sequence[np.ndarray],
        values: Sequence[np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [
            self._strategies[k].handle_results(round_no, p, o, v)
            for k, p, o, v in zip(lanes, players, objects, values)
        ]

    def on_player_restart(
        self, lane: int, round_no: int, players: np.ndarray
    ) -> None:
        self._strategies[lane].on_player_restart(round_no, players)

    def info(self, lane: int) -> Dict[str, Any]:
        return self._strategies[lane].info()


def batched_strategy_for(
    make_strategy: Callable[[], Strategy], n_lanes: int
) -> BatchedStrategy:
    """Build the batched counterpart of a scalar strategy factory.

    Scalar strategies that know how to batch themselves natively expose
    ``make_batched(n_lanes)``; everything else gets one instance per lane
    behind :class:`PerLaneStrategy`.
    """
    template = make_strategy()
    maker = getattr(template, "make_batched", None)
    if maker is not None:
        return maker(n_lanes)
    return PerLaneStrategy(
        [template] + [make_strategy() for _ in range(n_lanes - 1)]
    )
