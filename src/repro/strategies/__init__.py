"""Honest-player protocol interfaces.

A :class:`~repro.strategies.base.Strategy` is the honest protocol run by
the whole honest cohort in lockstep (see DESIGN.md, "Cohort strategies").
Concrete protocols live in :mod:`repro.core` (the paper's contribution) and
:mod:`repro.baselines`.
"""

from repro.strategies.base import Strategy, StrategyContext
from repro.strategies.batched import (
    BatchedStrategy,
    PerLaneStrategy,
    batched_strategy_for,
)
from repro.strategies.probe_advice import AdviceAlternator

__all__ = [
    "AdviceAlternator",
    "BatchedStrategy",
    "PerLaneStrategy",
    "Strategy",
    "StrategyContext",
    "batched_strategy_for",
]
