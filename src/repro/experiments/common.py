"""Shared plumbing for the experiment definitions."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.adversaries.base import Adversary
from repro.sim.engine import EngineConfig
from repro.sim.runner import TrialResults, run_trials
from repro.strategies.base import Strategy
from repro.world.generators import planted_instance
from repro.world.instance import Instance


def planted_factory(
    n: int, m: int, beta: float, alpha: float
) -> Callable[[np.random.Generator], Instance]:
    """Instance factory for the standard unit-cost planted world."""
    return lambda rng: planted_instance(n=n, m=m, beta=beta, alpha=alpha, rng=rng)


def measure(
    make_instance: Callable[[np.random.Generator], Instance],
    make_strategy: Callable[[], Strategy],
    make_adversary: Callable[[], Optional[Adversary]] = lambda: None,
    trials: int = 16,
    seed: int = 0,
    max_rounds: int = 500_000,
    config: Optional[EngineConfig] = None,
) -> TrialResults:
    """``run_trials`` with the experiment-wide defaults."""
    if config is None:
        config = EngineConfig(max_rounds=max_rounds)
    return run_trials(
        make_instance=make_instance,
        make_strategy=make_strategy,
        make_adversary=make_adversary,
        n_trials=trials,
        seed=seed,
        config=config,
    )
