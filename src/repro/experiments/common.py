"""Shared plumbing for the experiment definitions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from repro.adversaries.base import Adversary
from repro.experiments.config import (
    resolve_batch_lanes,
    resolve_executor,
    resolve_n_jobs,
    resolve_substrate,
)
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # type-only: the runner pulls repro.exec in already
    from repro.exec import Executor
from repro.sim.engine import EngineConfig
from repro.sim.runner import TrialResults, run_trials
from repro.strategies.base import Strategy
from repro.world.generators import planted_instance
from repro.world.instance import Instance


def planted_factory(
    n: int, m: int, beta: float, alpha: float
) -> Callable[[np.random.Generator], Instance]:
    """Instance factory for the standard unit-cost planted world."""
    return lambda rng: planted_instance(n=n, m=m, beta=beta, alpha=alpha, rng=rng)


def measure(
    make_instance: Callable[[np.random.Generator], Instance],
    make_strategy: Callable[[], Strategy],
    make_adversary: Callable[[], Optional[Adversary]] = lambda: None,
    trials: int = 16,
    seed: int = 0,
    max_rounds: int = 500_000,
    config: Optional[EngineConfig] = None,
    n_jobs: Optional[int] = None,
    batch_lanes: Optional[int] = None,
    executor: Union[str, "Executor", None] = None,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    checkpoint_path: Optional[str] = None,
    substrate: Optional[str] = None,
) -> TrialResults:
    """``run_trials`` with the experiment-wide defaults.

    ``n_jobs=None``, ``batch_lanes=None``, ``executor=None``, and
    ``substrate=None`` defer to the process-wide defaults (the CLI
    ``--jobs``/``--batch-lanes``/``--executor``/``--substrate`` flags or
    the ``REPRO_BENCH_JOBS``/``REPRO_BATCH_LANES``/``REPRO_EXECUTOR``/
    ``REPRO_SUBSTRATE`` environment variables); results are identical
    for every worker count, lane width, backend, and substrate.
    ``fault_plan``, ``timeout``, and ``checkpoint_path`` pass straight
    through to :func:`~repro.sim.runner.run_trials`.
    """
    if config is None:
        config = EngineConfig(max_rounds=max_rounds)
    return run_trials(
        make_instance=make_instance,
        make_strategy=make_strategy,
        make_adversary=make_adversary,
        n_trials=trials,
        seed=seed,
        config=config,
        n_jobs=resolve_n_jobs(n_jobs),
        batch_lanes=resolve_batch_lanes(batch_lanes),
        executor=resolve_executor(executor),
        fault_plan=fault_plan,
        timeout=timeout,
        checkpoint_path=checkpoint_path,
        substrate=resolve_substrate(substrate),
    )
