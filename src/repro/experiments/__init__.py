"""Experiment harness: every theorem of the paper as a measured table.

The paper is an extended abstract whose evaluation is its theorem set;
DESIGN.md's per-experiment index maps each theorem/corollary/lemma to an
experiment id (E1..E12). Each experiment here produces an
:class:`~repro.experiments.config.ExperimentResult` — titled rows plus
shape checks — which the benches render and EXPERIMENTS.md records.

Usage::

    from repro.experiments import run_experiment
    result = run_experiment("E3", scale="smoke", seed=0)
    print(result.render())
"""

from repro.experiments.config import ExperimentResult, Scale
from repro.experiments.tables import Table, format_series
from repro.experiments.report import (
    generate_report,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "Scale",
    "Table",
    "available_experiments",
    "format_series",
    "generate_report",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
    "run_experiment",
]
