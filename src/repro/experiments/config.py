"""Experiment results and scale presets.

``Scale.SMOKE`` runs in seconds (used by the test suite to exercise every
experiment end-to-end); ``Scale.FULL`` is what the benches run and what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.tables import Table


class Scale(enum.Enum):
    """How big an experiment run is."""

    SMOKE = "smoke"
    FULL = "full"


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        "E1".."E12" per DESIGN.md's index.
    title, claim:
        What is being reproduced and the paper's statement of it.
    columns:
        Column order for rendering.
    rows:
        One dict per table row.
    checks:
        Named boolean shape checks ("distill beats async at every n",
        "ratio within ...") — what the tests assert and EXPERIMENTS.md
        reports as pass/fail.
    notes:
        Free-form commentary (fit parameters, crossovers found).
    """

    experiment_id: str
    title: str
    claim: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    formats: Optional[Mapping[str, str]] = None

    def table(self) -> Table:
        table = Table(self.columns, formats=self.formats)
        for row in self.rows:
            table.add_row(**{k: v for k, v in row.items() if k in self.columns})
        return table

    def render(self) -> str:
        """Full report: header, table, checks, notes."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.claim}",
            "",
            self.table().render(),
        ]
        if self.checks:
            lines.append("")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())
