"""Experiment results, scale presets, and the worker-count default.

``Scale.SMOKE`` runs in seconds (used by the test suite to exercise every
experiment end-to-end); ``Scale.FULL`` is what the benches run and what
EXPERIMENTS.md records.

The Monte-Carlo worker count used by every experiment's
:func:`~repro.experiments.common.measure` call resolves here: an explicit
``n_jobs`` argument wins, then :func:`set_default_n_jobs`, then the
``REPRO_BENCH_JOBS`` environment variable, then serial. Parallelism never
changes results (see :func:`repro.sim.runner.run_trials`), so the knob is
process-wide state rather than a per-experiment parameter. The
``batch_lanes``, ``executor``, and ``substrate`` knobs follow the same
pattern (``REPRO_BATCH_LANES``, ``REPRO_EXECUTOR``, ``REPRO_SUBSTRATE``).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.errors import ConfigurationError
from repro.experiments.tables import Table

if TYPE_CHECKING:  # type-only: keep the exec fabric import lazy
    from repro.exec import Executor

#: environment variable supplying the default Monte-Carlo worker count
JOBS_ENV_VAR = "REPRO_BENCH_JOBS"

#: environment variable supplying the default trial-lane batch width
LANES_ENV_VAR = "REPRO_BATCH_LANES"

#: environment variable supplying the default executor backend name
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: environment variable supplying the default billboard substrate name
SUBSTRATE_ENV_VAR = "REPRO_SUBSTRATE"

_default_n_jobs: Optional[int] = None

_default_batch_lanes: Optional[int] = None

_default_executor: Union[str, "Executor", None] = None

_default_substrate: Optional[str] = None


def default_n_jobs() -> int:
    """The process-wide default worker count for trial execution.

    Resolution order: :func:`set_default_n_jobs` override, then the
    ``REPRO_BENCH_JOBS`` environment variable, then ``1`` (serial).
    """
    if _default_n_jobs is not None:
        return _default_n_jobs
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def set_default_n_jobs(n_jobs: Optional[int]) -> None:
    """Override the process-wide worker default (``None`` restores env/1)."""
    global _default_n_jobs
    _default_n_jobs = n_jobs


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """An explicit ``n_jobs`` wins; ``None`` falls back to the default."""
    return default_n_jobs() if n_jobs is None else n_jobs


def default_batch_lanes() -> Optional[int]:
    """The process-wide default ``batch_lanes`` for trial execution.

    Resolution order: :func:`set_default_batch_lanes` override, then the
    ``REPRO_BATCH_LANES`` environment variable, then ``None`` (the
    runner's own default — scalar execution). Like ``n_jobs``, batching
    never changes results (the equivalence suite pins this), so it is
    process-wide state rather than a per-experiment parameter.
    """
    if _default_batch_lanes is not None:
        return _default_batch_lanes
    raw = os.environ.get(LANES_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{LANES_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def set_default_batch_lanes(batch_lanes: Optional[int]) -> None:
    """Override the process-wide lane default (``None`` restores env)."""
    global _default_batch_lanes
    _default_batch_lanes = batch_lanes


def resolve_batch_lanes(batch_lanes: Optional[int]) -> Optional[int]:
    """An explicit ``batch_lanes`` wins; ``None`` falls back to the default."""
    return default_batch_lanes() if batch_lanes is None else batch_lanes


def default_executor() -> Union[str, "Executor", None]:
    """The process-wide default execution backend for trial sweeps.

    Resolution order: :func:`set_default_executor` override (a backend
    name or a configured :class:`~repro.exec.base.Executor` instance),
    then the ``REPRO_EXECUTOR`` environment variable (a backend name:
    ``socket``, ``local``, or ``serial``), then ``None`` — the runner's
    own choice (a local pool when ``n_jobs`` asks for one, serial
    otherwise). Like ``n_jobs``, the backend never changes results (the
    equivalence suite pins this), so it is process-wide state rather
    than a per-experiment parameter.
    """
    if _default_executor is not None:
        return _default_executor
    raw = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
    if not raw:
        return None
    from repro.exec import EXECUTOR_NAMES

    if raw not in EXECUTOR_NAMES:
        raise ConfigurationError(
            f"{EXECUTOR_ENV_VAR} must be one of {', '.join(EXECUTOR_NAMES)}; "
            f"got {raw!r}"
        )
    return raw


def set_default_executor(
    executor: Union[str, "Executor", None]
) -> None:
    """Override the process-wide executor default (``None`` restores
    env/runner choice). Accepts a backend name or a configured
    :class:`~repro.exec.base.Executor` instance — the latter is how the
    chaos harness injects a fault-injecting fabric under unmodified
    experiment code."""
    global _default_executor
    _default_executor = executor


def resolve_executor(
    executor: Union[str, "Executor", None]
) -> Union[str, "Executor", None]:
    """An explicit ``executor`` wins; ``None`` falls back to the default."""
    return default_executor() if executor is None else executor


def default_substrate() -> Optional[str]:
    """The process-wide default billboard substrate for trial sweeps.

    Resolution order: :func:`set_default_substrate` override, then the
    ``REPRO_SUBSTRATE`` environment variable (``auto``, ``dense``, or
    ``sparse``), then ``None`` — the runner's own default (``auto``:
    sparse at or above
    :data:`~repro.billboard.sparse.SPARSE_AUTO_THRESHOLD` players).
    Like ``n_jobs``, the substrate never changes results (the sparse
    equivalence suite pins this), so it is process-wide state rather
    than a per-experiment parameter.
    """
    if _default_substrate is not None:
        return _default_substrate
    raw = os.environ.get(SUBSTRATE_ENV_VAR, "").strip()
    if not raw:
        return None
    from repro.billboard.sparse import SUBSTRATE_CHOICES

    if raw not in SUBSTRATE_CHOICES:
        raise ConfigurationError(
            f"{SUBSTRATE_ENV_VAR} must be one of "
            f"{', '.join(SUBSTRATE_CHOICES)}; got {raw!r}"
        )
    return raw


def set_default_substrate(substrate: Optional[str]) -> None:
    """Override the process-wide substrate default (``None`` restores
    env/runner choice)."""
    global _default_substrate
    _default_substrate = substrate


def resolve_substrate(substrate: Optional[str]) -> Optional[str]:
    """An explicit ``substrate`` wins; ``None`` falls back to the default."""
    return default_substrate() if substrate is None else substrate


class Scale(enum.Enum):
    """How big an experiment run is."""

    SMOKE = "smoke"
    FULL = "full"


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        "E1".."E12" per DESIGN.md's index.
    title, claim:
        What is being reproduced and the paper's statement of it.
    columns:
        Column order for rendering.
    rows:
        One dict per table row.
    checks:
        Named boolean shape checks ("distill beats async at every n",
        "ratio within ...") — what the tests assert and EXPERIMENTS.md
        reports as pass/fail.
    notes:
        Free-form commentary (fit parameters, crossovers found).
    """

    experiment_id: str
    title: str
    claim: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    formats: Optional[Mapping[str, str]] = None

    def table(self) -> Table:
        table = Table(self.columns, formats=self.formats)
        for row in self.rows:
            table.add_row(**{k: v for k, v in row.items() if k in self.columns})
        return table

    def render(self) -> str:
        """Full report: header, table, checks, notes."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.claim}",
            "",
            self.table().render(),
        ]
        if self.checks:
            lines.append("")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())
