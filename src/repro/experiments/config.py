"""Experiment results, scale presets, and the worker-count default.

``Scale.SMOKE`` runs in seconds (used by the test suite to exercise every
experiment end-to-end); ``Scale.FULL`` is what the benches run and what
EXPERIMENTS.md records.

The Monte-Carlo worker count used by every experiment's
:func:`~repro.experiments.common.measure` call resolves here: an explicit
``n_jobs`` argument wins, then :func:`set_default_n_jobs`, then the
``REPRO_BENCH_JOBS`` environment variable, then serial. Parallelism never
changes results (see :func:`repro.sim.runner.run_trials`), so the knob is
process-wide state rather than a per-experiment parameter.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.tables import Table

#: environment variable supplying the default Monte-Carlo worker count
JOBS_ENV_VAR = "REPRO_BENCH_JOBS"

#: environment variable supplying the default trial-lane batch width
LANES_ENV_VAR = "REPRO_BATCH_LANES"

_default_n_jobs: Optional[int] = None

_default_batch_lanes: Optional[int] = None


def default_n_jobs() -> int:
    """The process-wide default worker count for trial execution.

    Resolution order: :func:`set_default_n_jobs` override, then the
    ``REPRO_BENCH_JOBS`` environment variable, then ``1`` (serial).
    """
    if _default_n_jobs is not None:
        return _default_n_jobs
    raw = os.environ.get(JOBS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def set_default_n_jobs(n_jobs: Optional[int]) -> None:
    """Override the process-wide worker default (``None`` restores env/1)."""
    global _default_n_jobs
    _default_n_jobs = n_jobs


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """An explicit ``n_jobs`` wins; ``None`` falls back to the default."""
    return default_n_jobs() if n_jobs is None else n_jobs


def default_batch_lanes() -> Optional[int]:
    """The process-wide default ``batch_lanes`` for trial execution.

    Resolution order: :func:`set_default_batch_lanes` override, then the
    ``REPRO_BATCH_LANES`` environment variable, then ``None`` (the
    runner's own default — scalar execution). Like ``n_jobs``, batching
    never changes results (the equivalence suite pins this), so it is
    process-wide state rather than a per-experiment parameter.
    """
    if _default_batch_lanes is not None:
        return _default_batch_lanes
    raw = os.environ.get(LANES_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{LANES_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def set_default_batch_lanes(batch_lanes: Optional[int]) -> None:
    """Override the process-wide lane default (``None`` restores env)."""
    global _default_batch_lanes
    _default_batch_lanes = batch_lanes


def resolve_batch_lanes(batch_lanes: Optional[int]) -> Optional[int]:
    """An explicit ``batch_lanes`` wins; ``None`` falls back to the default."""
    return default_batch_lanes() if batch_lanes is None else batch_lanes


class Scale(enum.Enum):
    """How big an experiment run is."""

    SMOKE = "smoke"
    FULL = "full"


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        "E1".."E12" per DESIGN.md's index.
    title, claim:
        What is being reproduced and the paper's statement of it.
    columns:
        Column order for rendering.
    rows:
        One dict per table row.
    checks:
        Named boolean shape checks ("distill beats async at every n",
        "ratio within ...") — what the tests assert and EXPERIMENTS.md
        reports as pass/fail.
    notes:
        Free-form commentary (fit parameters, crossovers found).
    """

    experiment_id: str
    title: str
    claim: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    formats: Optional[Mapping[str, str]] = None

    def table(self) -> Table:
        table = Table(self.columns, formats=self.formats)
        for row in self.rows:
            table.add_row(**{k: v for k, v in row.items() if k in self.columns})
        return table

    def render(self) -> str:
        """Full report: header, table, checks, notes."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper claim: {self.claim}",
            "",
            self.table().render(),
        ]
        if self.checks:
            lines.append("")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())
