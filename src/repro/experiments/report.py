"""Serialization and report generation for experiment results.

Two artifacts a reproduction should be able to emit on demand:

* machine-readable results — :func:`result_to_dict` /
  :func:`result_from_dict` round-trip an
  :class:`~repro.experiments.config.ExperimentResult` through plain JSON
  so runs can be archived and diffed;
* a human-readable report — :func:`generate_report` runs any subset of
  the registry and renders one markdown document (the automated sibling
  of the hand-written EXPERIMENTS.md), exposed as ``repro report`` on
  the CLI. Reports close with a provenance footer (package versions,
  host, git revision — from :mod:`repro.obs.manifest`) so an archived
  report states what produced it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentResult, Scale
from repro.experiments.registry import available_experiments, run_experiment


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A JSON-safe dictionary capturing the whole result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "claim": result.claim,
        "columns": list(result.columns),
        "rows": [dict(row) for row in result.rows],
        "checks": dict(result.checks),
        "notes": list(result.notes),
        "formats": dict(result.formats) if result.formats else None,
    }


def result_from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    required = {"experiment_id", "title", "claim", "columns", "rows"}
    missing = required - set(payload)
    if missing:
        raise ConfigurationError(
            f"result payload missing keys {sorted(missing)}"
        )
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        claim=payload["claim"],
        columns=list(payload["columns"]),
        rows=[dict(row) for row in payload["rows"]],
        checks=dict(payload.get("checks") or {}),
        notes=list(payload.get("notes") or []),
        formats=payload.get("formats"),
    )


def result_to_json(result: ExperimentResult) -> str:
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True)


def result_from_json(text: str) -> ExperimentResult:
    return result_from_dict(json.loads(text))


def _result_markdown(result: ExperimentResult) -> str:
    lines = [
        f"## {result.experiment_id} — {result.title}",
        "",
        f"**Paper claim.** {result.claim}",
        "",
        result.table().render_markdown(),
        "",
    ]
    if result.checks:
        lines.append("Checks:")
        for name, ok in result.checks.items():
            lines.append(f"- {'✅' if ok else '❌'} {name}")
        lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
    if result.notes:
        lines.append("")
    return "\n".join(lines)


def generate_report(
    experiment_ids: Optional[Sequence[str]] = None,
    scale: Union[Scale, str] = Scale.SMOKE,
    seed: int = 0,
    results: Optional[List[ExperimentResult]] = None,
) -> str:
    """Run experiments and render one markdown report.

    Pass pre-computed ``results`` to render without re-running (e.g.
    results deserialized from JSON archives).
    """
    if results is None:
        ids = list(experiment_ids or available_experiments())
        results = [run_experiment(eid, scale, seed) for eid in ids]
    scale_label = scale.value if isinstance(scale, Scale) else str(scale)
    passed = sum(1 for r in results if r.all_checks_pass)
    header = [
        "# Reproduction report — Adaptive Collaboration in P2P Systems "
        "(ICDCS 2005)",
        "",
        f"Scale: `{scale_label}`, seed {seed}. "
        f"{passed}/{len(results)} experiments pass all shape checks.",
        "",
    ]
    sections = [_result_markdown(result) for result in results]
    return "\n".join(header + sections + [_provenance_footer()])


def _provenance_footer() -> str:
    """One-line provenance trailer for generated reports."""
    from repro.obs.manifest import collect_manifest

    manifest = collect_manifest()
    versions = ", ".join(
        f"{name} {version}" for name, version in sorted(manifest.versions.items())
    )
    rev = manifest.git_rev[:12] if manifest.git_rev else "unknown"
    return (
        "---\n"
        f"*Provenance: {versions}; "
        f"{manifest.host.get('platform', 'unknown host')}; "
        f"git `{rev}`.*\n"
    )
