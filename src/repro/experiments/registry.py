"""The experiment registry: id → (title, runner).

Ids follow DESIGN.md's per-experiment index. Every runner takes a
:class:`~repro.experiments.config.Scale` and a seed and returns an
:class:`~repro.experiments.config.ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentResult, Scale
from repro.experiments.defs import (
    a01_slander,
    a02_ownership,
    a03_pricing,
    a04_advice_ablation,
    a05_adaptivity,
    a06_constants,
    e01_lower_bound_work,
    e02_lower_bound_symmetry,
    e03_distill_vs_baselines,
    e04_epsilon_constant,
    e05_iteration_count,
    e06_high_probability,
    e07_alpha_doubling,
    e08_multicost,
    e09_no_local_testing,
    e10_multivote,
    e11_adversary_gauntlet,
    e12_three_phase,
    e13_async_model,
    e14_total_cost,
    e15_fault_tolerance,
)

Runner = Callable[[Scale, int], ExperimentResult]

EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {
    "E1": ("Theorem 1 lower bound", e01_lower_bound_work.run),
    "E2": ("Theorem 2 lower bound", e02_lower_bound_symmetry.run),
    "E3": ("Theorem 4 headline comparison", e03_distill_vs_baselines.run),
    "E4": ("Corollary 5 epsilon sweep", e04_epsilon_constant.run),
    "E5": ("Lemma 7 iteration count", e05_iteration_count.run),
    "E6": ("Theorem 11 high probability", e06_high_probability.run),
    "E7": ("Section 5.1 guessing alpha", e07_alpha_doubling.run),
    "E8": ("Theorem 12 multiple costs", e08_multicost.run),
    "E9": ("Theorem 13 no local testing", e09_no_local_testing.run),
    "E10": ("Section 4.1 multiple votes", e10_multivote.run),
    "E11": ("Adversary gauntlet", e11_adversary_gauntlet.run),
    "E12": ("Section 1.2 three-phase illustration", e12_three_phase.run),
    "E13": ("Section 1.2 synchronous abstraction", e13_async_model.run),
    "E14": ("Prior-work total cost (Section 1.1)", e14_total_cost.run),
    "E15": ("Fault tolerance: post loss and churn", e15_fault_tolerance.run),
    "A1": ("Slander ablation (open problem 1)", a01_slander.run),
    "A2": ("Ownership coupling (open problem 2)", a02_ownership.run),
    "A3": ("Demand pricing (open problem 3)", a03_pricing.run),
    "A4": ("Advice-mechanism ablation (Lemma 6)", a04_advice_ablation.run),
    "A5": ("Adaptivity ablation (Section 2.3)", a05_adaptivity.run),
    "A6": ("Constants sensitivity (Figure 1)", a06_constants.run),
}


def available_experiments() -> List[str]:
    """Experiment ids in index order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    scale: Union[Scale, str] = Scale.FULL,
    seed: int = 0,
) -> ExperimentResult:
    """Run one experiment by id ("E1".."E12")."""
    if isinstance(scale, str):
        scale = Scale(scale)
    try:
        _title, runner = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {available_experiments()}"
        ) from None
    return runner(scale, seed)
