"""E4 — Corollary 5: O(1/ε) rounds when α ≥ 1 − n^(−ε).

Fix m = n and plant ``round(n^(1-ε))`` dishonest players for a sweep of
ε. Corollary 5 says the expected termination time is O(1/ε) — in
particular *independent of n* for fixed ε. We measure mean individual
rounds under the split-vote adversary and check (a) cost decreases as ε
grows and (b) ε·cost stays within a constant band (the 1/ε shape).
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.analysis.bounds import cor5_bound
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure
from repro.experiments.config import ExperimentResult, Scale
from repro.world.generators import planted_instance
from repro.world.instance import Instance
from repro.world.objects import ObjectSpace


def _instance_with_dishonest(
    n: int, beta: float, n_dishonest: int, rng: np.random.Generator
) -> Instance:
    base = planted_instance(n=n, m=n, beta=beta, alpha=1.0, rng=rng)
    mask = np.ones(n, dtype=bool)
    if n_dishonest > 0:
        mask[rng.choice(n, size=n_dishonest, replace=False)] = False
    return Instance(ObjectSpace(
        base.space.values, base.space.costs, base.space.good_mask,
        good_threshold=base.space.good_threshold,
    ), mask)


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    beta = 1 / 16
    if scale is Scale.FULL:
        n = 2048
        eps_sweep = [0.25, 0.4, 0.55, 0.7, 0.85, 1.0]
        trials = 24
    else:
        n = 256
        eps_sweep = [0.5, 1.0]
        trials = 6

    rows = []
    costs = {}
    for eps in eps_sweep:
        n_dishonest = int(round(n ** (1.0 - eps)))
        n_dishonest = min(n_dishonest, n - 1)
        res = measure(
            lambda rng, d=n_dishonest: _instance_with_dishonest(
                n, beta, d, rng
            ),
            DistillStrategy,
            make_adversary=SplitVoteAdversary,
            trials=trials,
            seed=(seed, int(eps * 1000)),
        )
        cost = res.mean("mean_individual_rounds")
        costs[eps] = cost
        rows.append(
            {
                "epsilon": eps,
                "n": n,
                "dishonest": n_dishonest,
                "alpha": 1.0 - n_dishonest / n,
                "rounds": cost,
                "bound_1/eps": cor5_bound(eps),
                "eps_x_rounds": eps * cost,
            }
        )

    products = [eps * costs[eps] for eps in eps_sweep]
    checks = {
        "cost non-increasing in epsilon (within 25% noise)": all(
            costs[e2] <= costs[e1] * 1.25
            for e1, e2 in zip(eps_sweep, eps_sweep[1:])
        ),
        "eps * cost within a 4x band (the 1/eps shape)": (
            max(products) / max(min(products), 1e-12) <= 4.0
        ),
    }

    return ExperimentResult(
        experiment_id="E4",
        title="Near-honest populations (Corollary 5)",
        claim=(
            "With m = n and alpha >= 1 - n^(-eps), expected termination "
            "time is O(1/eps) — constant, independent of n."
        ),
        columns=[
            "epsilon",
            "n",
            "dishonest",
            "alpha",
            "rounds",
            "bound_1/eps",
            "eps_x_rounds",
        ],
        rows=rows,
        checks=checks,
        formats={
            "alpha": ".4f",
            "rounds": ".2f",
            "bound_1/eps": ".2f",
            "eps_x_rounds": ".2f",
        },
    )
