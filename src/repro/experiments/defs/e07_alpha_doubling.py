"""E7 — Section 5.1: guessing α by halving.

The wrapper runs DISTILL^HP for geometrically growing budgets with
``α = 1, 1/2, 1/4, ...`` hardwired, without ever being told the true
honest fraction. The claim: once the guess drops to the truth, the stage
succeeds, so the total time is at most a constant multiple of the
known-α algorithm's. We measure that overhead across true α values.
"""

from __future__ import annotations

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.alpha_doubling import AlphaDoublingStrategy
from repro.core.distill_hp import DistillHPStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    beta = 1 / 16
    if scale is Scale.FULL:
        n = 1024
        alphas = [0.8, 0.4, 0.1]
        trials = 16
    else:
        n = 256
        alphas = [0.8, 0.4]
        trials = 6

    rows = []
    checks = {}
    for alpha in alphas:
        known = measure(
            planted_factory(n, n, beta, alpha),
            DistillHPStrategy,
            make_adversary=SplitVoteAdversary,
            trials=trials,
            seed=(seed, int(alpha * 100), 0),
        )
        blind = measure(
            planted_factory(n, n, beta, alpha),
            AlphaDoublingStrategy,
            make_adversary=SplitVoteAdversary,
            trials=trials,
            seed=(seed, int(alpha * 100), 1),
        )
        known_rounds = known.mean("mean_individual_rounds")
        blind_rounds = blind.mean("mean_individual_rounds")
        overhead = blind_rounds / max(known_rounds, 1e-12)
        rows.append(
            {
                "alpha_true": alpha,
                "n": n,
                "known_alpha_rounds": known_rounds,
                "doubling_rounds": blind_rounds,
                "overhead": overhead,
                "doubling_success": blind.success_rate(),
            }
        )
        checks[f"alpha={alpha}: doubling always succeeds"] = (
            blind.success_rate() == 1.0
        )
        checks[f"alpha={alpha}: overhead is a constant factor (<= 10x)"] = (
            overhead <= 10.0
        )

    return ExperimentResult(
        experiment_id="E7",
        title="Guessing alpha by halving (Section 5.1)",
        claim=(
            "Without knowing alpha, all honest players terminate w.h.p. in "
            "O(log n/(alpha*beta*n) + log n/alpha) rounds — at most a "
            "constant factor over the known-alpha algorithm."
        ),
        columns=[
            "alpha_true",
            "n",
            "known_alpha_rounds",
            "doubling_rounds",
            "overhead",
            "doubling_success",
        ],
        rows=rows,
        checks=checks,
        formats={
            "known_alpha_rounds": ".1f",
            "doubling_rounds": ".1f",
            "overhead": ".2f",
            "doubling_success": ".2f",
        },
    )
