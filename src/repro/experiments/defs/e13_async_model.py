"""E13 — validating the synchronous abstraction (Section 1.2).

Not a theorem of this paper but the hinge of its model section: the
synchronous model is justified as (a) an abstraction of asynchronous
executions at comparable speeds, and (b) *simulable* in asynchronous
environments via timestamps; while (c) without schedule restrictions,
individual cost is unboundable ("a schedule that runs a single player by
itself..."). Three measurements:

1. **Abstraction** — the prior explore/exploit algorithm run natively on
   the asynchronous engine under round robin matches the synchronous
   engine's costs (n async steps ~ one round).
2. **Simulation** — DISTILL run through the timestamp-barrier adapter
   under a *random* schedule matches synchronous DISTILL in probes and
   virtual rounds.
3. **Necessity** — under the solo-first schedule, the victim's
   individual cost degenerates to Θ(1/β) solo search for every
   algorithm, exactly the Section 1.2 remark.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.core.distill import DistillStrategy
from repro.experiments.config import ExperimentResult, Scale
from repro.rng import RngFactory
from repro.sim.async_engine import AsynchronousEngine, PerStepAdapter
from repro.sim.engine import SynchronousEngine
from repro.sim.schedules import (
    RandomSchedule,
    RoundRobinSchedule,
    SoloFirstSchedule,
)
from repro.sim.sync_adapter import SynchronizedDistillAdapter
from repro.world.generators import planted_instance


def _async_trials(make_strategy, schedule_factory, n, beta, trials, seed,
                  victim=None):
    root = RngFactory.from_seed(seed)
    probes, victim_probes, steps, vrounds = [], [], [], []
    for trial in root.trial_factories(trials):
        world_rng = trial.spawn_generator()
        honest_rng = trial.spawn_generator()
        sched_rng = trial.spawn_generator()
        inst = planted_instance(
            n=n, m=n, beta=beta, alpha=1.0, rng=world_rng
        )
        engine = AsynchronousEngine(
            inst,
            make_strategy(),
            schedule=schedule_factory(),
            rng=honest_rng,
            schedule_rng=sched_rng,
        )
        metrics = engine.run()
        probes.append(metrics.mean_individual_probes)
        steps.append(metrics.steps)
        if victim is not None:
            victim_probes.append(metrics.probes_of(victim))
        vround = metrics.strategy_info.get("max_virtual_round")
        if vround is not None:
            vrounds.append(vround)
    return {
        "probes": float(np.mean(probes)),
        "steps": float(np.mean(steps)),
        "victim_probes": float(np.mean(victim_probes))
        if victim_probes
        else None,
        "vrounds": float(np.mean(vrounds)) if vrounds else None,
    }


def _sync_trials(make_strategy, n, beta, trials, seed):
    root = RngFactory.from_seed(seed)
    probes, rounds = [], []
    for trial in root.trial_factories(trials):
        world_rng = trial.spawn_generator()
        honest_rng = trial.spawn_generator()
        trial.spawn_generator()  # keep stream alignment with async runs
        inst = planted_instance(
            n=n, m=n, beta=beta, alpha=1.0, rng=world_rng
        )
        metrics = SynchronousEngine(
            inst, make_strategy(), rng=honest_rng
        ).run()
        probes.append(metrics.mean_individual_probes)
        rounds.append(metrics.rounds)
    return {"probes": float(np.mean(probes)), "rounds": float(np.mean(rounds))}


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 256
        trials = 24
    else:
        n = 64
        trials = 6
    beta = 1 / 16

    rows = []
    checks = {}

    # 1. abstraction: EC'04 async round robin vs synchronous
    a_sync = _sync_trials(AsyncEC04Strategy, n, beta, trials, (seed, 1))
    a_async = _async_trials(
        lambda: PerStepAdapter(AsyncEC04Strategy()),
        RoundRobinSchedule,
        n, beta, trials, (seed, 2),
    )
    rows.append(
        {
            "measurement": "ec04 sync rounds-model",
            "mean_probes": a_sync["probes"],
            "steps_or_rounds": a_sync["rounds"],
            "victim_probes": None,
        }
    )
    rows.append(
        {
            "measurement": "ec04 async round-robin",
            "mean_probes": a_async["probes"],
            "steps_or_rounds": a_async["steps"],
            "victim_probes": None,
        }
    )
    checks["abstraction: async(RR) probes within 25% of sync"] = (
        abs(a_async["probes"] - a_sync["probes"])
        <= 0.25 * max(a_sync["probes"], 1.0)
    )

    # 2. simulation: DISTILL via timestamps under a random schedule
    d_sync = _sync_trials(DistillStrategy, n, beta, trials, (seed, 3))
    d_async = _async_trials(
        SynchronizedDistillAdapter,
        RandomSchedule,
        n, beta, trials, (seed, 4),
    )
    rows.append(
        {
            "measurement": "distill synchronous",
            "mean_probes": d_sync["probes"],
            "steps_or_rounds": d_sync["rounds"],
            "victim_probes": None,
        }
    )
    rows.append(
        {
            "measurement": "distill async+timestamps (random schedule)",
            "mean_probes": d_async["probes"],
            "steps_or_rounds": d_async["vrounds"],
            "victim_probes": None,
        }
    )
    checks["simulation: timestamped DISTILL probes within 25% of sync"] = (
        abs(d_async["probes"] - d_sync["probes"])
        <= 0.25 * max(d_sync["probes"], 1.0)
    )
    checks["simulation: virtual rounds within 2x of sync rounds"] = (
        d_async["vrounds"] <= 2.0 * d_sync["rounds"] + 2
    )

    # 3. necessity: solo-first schedule forces Theta(1/beta) on the victim
    s_async = _async_trials(
        lambda: PerStepAdapter(AsyncEC04Strategy()),
        lambda: SoloFirstSchedule(victim=0),
        n, beta, trials, (seed, 5),
        victim=0,
    )
    rows.append(
        {
            "measurement": "ec04 async solo-first (victim column)",
            "mean_probes": s_async["probes"],
            "steps_or_rounds": s_async["steps"],
            "victim_probes": s_async["victim_probes"],
        }
    )
    # solo search is geometric(2*beta) under the half-explore rule
    # (advice steps are wasted while alone), mean = 1/(2 beta) ... but the
    # coin still probes on advice steps only if votes exist; alone there
    # are none, so only explore steps probe: mean probes = 1/beta.
    checks["necessity: victim pays ~1/beta solo (>= 0.5/beta)"] = (
        s_async["victim_probes"] >= 0.5 / beta
    )
    checks["necessity: victim pays far above the collaborative cost"] = (
        s_async["victim_probes"] >= 3.0 * a_async["probes"]
    )

    return ExperimentResult(
        experiment_id="E13",
        title="The synchronous abstraction, validated (Section 1.2)",
        claim=(
            "Synchronous rounds abstract fair asynchronous schedules; "
            "timestamps simulate synchrony; without fairness, individual "
            "cost degenerates to solo search."
        ),
        columns=[
            "measurement",
            "mean_probes",
            "steps_or_rounds",
            "victim_probes",
        ],
        rows=rows,
        checks=checks,
        formats={
            "mean_probes": ".2f",
            "steps_or_rounds": ".1f",
            "victim_probes": ".1f",
        },
    )
