"""E10 — Section 4.1: multiple votes and erroneous votes.

Two sweeps at fixed (n, α):

1. **f sweep** — everyone (honest and Byzantine alike) gets up to f
   votes; the adversary's budget scales with f. The claim: Theorem 4's
   asymptotics survive while ``f = o(1/(1-α))`` — cost stays flat for
   small f and degrades once ``f·(1-α)n`` rivals the honest vote mass.
2. **error sweep** — honest players mistakenly vouch for bad objects at a
   per-probe rate, keeping one vote slot for their eventual genuine find;
   small error rates should cost little.
"""

from __future__ import annotations

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.votes import VoteMode
from repro.core.multivote import MultiVoteDistill
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale
from repro.sim.engine import EngineConfig


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    beta = 1 / 16
    alpha = 0.7
    if scale is Scale.FULL:
        n = 512
        f_sweep = [1, 2, 4, 8]
        error_sweep = [0.0, 0.02, 0.05]
        trials = 16
    else:
        n = 128
        f_sweep = [1, 2]
        error_sweep = [0.0, 0.05]
        trials = 6

    rows = []
    costs_by_f = {}
    for f in f_sweep:
        res = measure(
            planted_factory(n, n, beta, alpha),
            lambda f=f: MultiVoteDistill(f=f),
            make_adversary=lambda f=f: SplitVoteAdversary(
                votes_per_identity=f
            ),
            trials=trials,
            seed=(seed, f, 0),
            config=EngineConfig(
                max_rounds=500_000,
                vote_mode=VoteMode.MULTI,
                max_votes_per_player=f,
            ),
        )
        cost = res.mean("mean_individual_rounds")
        costs_by_f[f] = cost
        rows.append(
            {
                "sweep": "f",
                "f": f,
                "error_rate": 0.0,
                "f_x_(1-a)n": f * (1 - alpha) * n,
                "rounds": cost,
                "success": res.success_rate(),
            }
        )

    for err in error_sweep:
        f = 3
        res = measure(
            planted_factory(n, n, beta, alpha),
            lambda err=err, f=f: MultiVoteDistill(f=f, error_rate=err),
            make_adversary=lambda f=f: SplitVoteAdversary(
                votes_per_identity=f
            ),
            trials=trials,
            seed=(seed, f, int(err * 1000) + 1),
            config=EngineConfig(
                max_rounds=500_000,
                vote_mode=VoteMode.MULTI,
                max_votes_per_player=f,
            ),
        )
        rows.append(
            {
                "sweep": "error",
                "f": f,
                "error_rate": err,
                "f_x_(1-a)n": f * (1 - alpha) * n,
                "rounds": res.mean("mean_individual_rounds"),
                "success": res.success_rate(),
            }
        )

    f_lo, f_hi = f_sweep[0], f_sweep[1]
    checks = {
        f"f={f_hi} costs <= 2x f={f_lo} (flat while f << 1/(1-alpha))": (
            costs_by_f[f_hi] <= 2.0 * costs_by_f[f_lo]
        ),
        "all f-sweep runs succeed": all(
            row["success"] == 1.0 for row in rows if row["sweep"] == "f"
        ),
        "all error-sweep runs succeed": all(
            row["success"] == 1.0 for row in rows if row["sweep"] == "error"
        ),
    }

    return ExperimentResult(
        experiment_id="E10",
        title="Multiple votes and erroneous votes (Section 4.1)",
        claim=(
            "Allowing up to f positive votes per player (and honest "
            "mistakes, provided one vote is correct) leaves Theorem 4 "
            "unchanged so long as f = o(1/(1-alpha))."
        ),
        columns=[
            "sweep",
            "f",
            "error_rate",
            "f_x_(1-a)n",
            "rounds",
            "success",
        ],
        rows=rows,
        checks=checks,
        formats={
            "rounds": ".2f",
            "success": ".2f",
            "error_rate": ".3f",
            "f_x_(1-a)n": ".0f",
        },
    )
