"""One module per experiment, E1..E12 (see DESIGN.md's index)."""
