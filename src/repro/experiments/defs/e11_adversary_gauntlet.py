"""E11 — Theorem 4 holds against *any* adaptive Byzantine adversary.

DISTILL's bound is adversary-independent; the gauntlet runs every
registered adversary at two honesty levels and shows (a) every run
terminates with all honest players satisfied, and (b) costs stay within
the Theorem 4 envelope — the adversaries differ only in constants.
"""

from __future__ import annotations

from repro.adversaries.registry import available_adversaries, make_adversary
from repro.analysis.bounds import thm4_expected_rounds
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    beta = 1 / 16
    if scale is Scale.FULL:
        n = 1024
        alphas = [0.8, 0.3]
        trials = 16
    else:
        n = 256
        alphas = [0.8]
        trials = 6

    rows = []
    checks = {}
    for alpha in alphas:
        bound = thm4_expected_rounds(n, alpha, beta)
        costs = {}
        for name in available_adversaries():
            res = measure(
                planted_factory(n, n, beta, alpha),
                DistillStrategy,
                make_adversary=lambda name=name: make_adversary(name),
                trials=trials,
                seed=(seed, int(alpha * 100), len(name)),
            )
            cost = res.mean("mean_individual_rounds")
            costs[name] = cost
            rows.append(
                {
                    "alpha": alpha,
                    "adversary": name,
                    "rounds": cost,
                    "probes": res.mean("mean_individual_probes"),
                    "thm4_bound": bound,
                    "rounds/bound": cost / bound,
                    "success": res.success_rate(),
                }
            )
            checks[f"alpha={alpha} vs {name}: all honest succeed"] = (
                res.success_rate() == 1.0
            )
        worst = max(costs.values())
        checks[
            f"alpha={alpha}: worst adversary within 12x of Thm 4 curve"
        ] = worst <= 12.0 * bound + 6
        checks[f"alpha={alpha}: silent is (near-)cheapest"] = costs[
            "silent"
        ] <= min(costs.values()) * 1.25 + 1e-9

    return ExperimentResult(
        experiment_id="E11",
        title="Adversary gauntlet (Theorem 4 robustness)",
        claim=(
            "DISTILL's expected individual cost bound holds for any "
            "adaptive Byzantine adversary; strategies differ only in "
            "constants."
        ),
        columns=[
            "alpha",
            "adversary",
            "rounds",
            "probes",
            "thm4_bound",
            "rounds/bound",
            "success",
        ],
        rows=rows,
        checks=checks,
        formats={
            "rounds": ".2f",
            "probes": ".2f",
            "thm4_bound": ".2f",
            "rounds/bound": ".2f",
            "success": ".2f",
        },
    )
