"""E6 — Theorem 11: DISTILL^HP finishes everyone w.h.p.

With ``k1, k2 = Θ(log n)``, *all* honest players terminate within
``O(log n/(αβn) + log n/α)`` rounds with probability ``1 - n^{-Ω(1)}``.
The metric is the **last** player's termination round (max over honest
players), whose upper quantiles should track the Theorem 11 curve with a
single constant across the n sweep, and whose success rate should be
essentially 1.
"""

from __future__ import annotations

from repro.adversaries.flood import FloodAdversary
from repro.analysis.bounds import thm11_rounds
from repro.core.distill_hp import DistillHPStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    beta = 1 / 16
    alpha = 0.6
    if scale is Scale.FULL:
        n_sweep = [256, 1024, 4096]
        trials = 32
    else:
        n_sweep = [128, 256]
        trials = 8

    rows = []
    ratios = []
    success = []
    for n in n_sweep:
        res = measure(
            planted_factory(n, n, beta, alpha),
            DistillHPStrategy,
            make_adversary=FloodAdversary,
            trials=trials,
            seed=(seed, n),
        )
        bound = thm11_rounds(n, alpha, beta)
        p95 = res.quantile("max_individual_rounds", 0.95)
        worst = res.quantile("max_individual_rounds", 1.0)
        ratios.append(p95 / bound)
        success.append(res.success_rate())
        rows.append(
            {
                "n": n,
                "alpha": alpha,
                "mean_last_round": res.mean("max_individual_rounds"),
                "p95_last_round": p95,
                "worst_last_round": worst,
                "thm11_bound": bound,
                "p95/bound": p95 / bound,
                "success_rate": res.success_rate(),
            }
        )

    checks = {
        "every trial succeeded (w.h.p. claim)": all(s == 1.0 for s in success),
        "p95/bound constant across n (max/min <= 3)": (
            max(ratios) / max(min(ratios), 1e-12) <= 3.0
        ),
    }

    return ExperimentResult(
        experiment_id="E6",
        title="High-probability termination of the last player (Theorem 11)",
        claim=(
            "DISTILL^HP (k1,k2 = Theta(log n)) terminates in "
            "O(log n/(alpha*beta*n) + log n/alpha) rounds with probability "
            "1 - n^(-Omega(1))."
        ),
        columns=[
            "n",
            "alpha",
            "mean_last_round",
            "p95_last_round",
            "worst_last_round",
            "thm11_bound",
            "p95/bound",
            "success_rate",
        ],
        rows=rows,
        checks=checks,
        formats={
            "mean_last_round": ".1f",
            "p95_last_round": ".1f",
            "worst_last_round": ".0f",
            "thm11_bound": ".1f",
            "p95/bound": ".2f",
            "success_rate": ".3f",
        },
    )
