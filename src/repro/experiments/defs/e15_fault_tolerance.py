"""E15 — graceful degradation under infrastructure faults (robustness).

The paper's adversary model is Byzantine *players*; its billboard and
honest players are assumed reliable. This experiment probes how far that
assumption carries: DISTILL's shared-billboard design has no per-player
state that matters (everything a player needs is re-derivable from the
board), so it should degrade gracefully when the *infrastructure* itself
misbehaves — votes silently lost in transit, or honest players crashing
and rejoining with no local memory (churn).

Two sweeps against the split-vote adversary, both with a null point
(rate 0) pinning the clean baseline:

* **post loss** — each honest billboard post is independently dropped
  with probability ``p``. Lost votes thin every candidate set, so rounds
  should rise smoothly with ``p`` — roughly like the clean run at an
  effective ``alpha' = alpha * (1 - p)`` — with no cliff, and every
  player should still finish (lost votes cost time, never correctness:
  a player's own probe of a good object satisfies it regardless of
  whether the vote announcing it survives).
* **churn** — each active honest player crashes with per-round
  probability ``p`` and restarts ``k`` rounds later with no memory. A
  restarted player re-reads the board and re-enters the protocol, so
  again: slower, not wrong.

The trivial baseline runs alongside as a control: it never reads the
board, so post loss must leave it exactly flat — which doubles as an
end-to-end check that the fault layer only touches what it claims to.

Cost is reported as a multiple of the clean (rate-0) run and against the
Theorem 4 bound, which the *clean* column must still meet.
"""

from __future__ import annotations

from typing import Optional

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.analysis.bounds import thm4_expected_rounds
from repro.baselines.trivial import TrivialStrategy
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale
from repro.faults.plan import FaultPlan

#: rounds-budget multiple of the Theorem 4 bound granted to faulty runs
ROUNDS_CAP_FACTOR = 40.0


def _plan(kind: str, rate: float, restart_after: int) -> Optional[FaultPlan]:
    if rate == 0.0:
        return None
    if kind == "post_loss":
        return FaultPlan(post_loss_rate=rate)
    return FaultPlan(crash_rate=rate, restart_after=restart_after)


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n, trials = 128, 12
        loss_sweep = [0.0, 0.1, 0.25, 0.5]
        churn_sweep = [0.02, 0.05, 0.1]
    else:
        n, trials = 64, 4
        loss_sweep = [0.0, 0.25]
        churn_sweep = [0.05]
    alpha, beta = 0.75, 1.0 / 16.0
    restart_after = 4
    bound = thm4_expected_rounds(n, alpha, beta)
    max_rounds = max(int(ROUNDS_CAP_FACTOR * bound), 500)

    sweep = [("post_loss", rate) for rate in loss_sweep] + [
        ("churn", rate) for rate in churn_sweep
    ]
    rows = []
    measured = {}
    for kind, rate in sweep:
        plan = _plan(kind, rate, restart_after)
        row = {"fault": kind, "rate": rate, "thm4_bound": bound}
        for name, factory in (
            ("distill", DistillStrategy),
            ("trivial", TrivialStrategy),
        ):
            res = measure(
                planted_factory(n, n, beta, alpha),
                factory,
                make_adversary=SplitVoteAdversary,
                trials=trials,
                seed=(seed, 15, len(name)),  # same seed across rates!
                max_rounds=max_rounds,
                fault_plan=plan,
            )
            row[f"{name}_rounds"] = res.mean("mean_individual_rounds")
            row[f"{name}_satisfied"] = res.mean("satisfied_fraction")
            measured[(name, kind, rate)] = res
        row["distill_vs_clean"] = (
            row["distill_rounds"]
            / measured[("distill", "post_loss", 0.0)].mean(
                "mean_individual_rounds"
            )
        )
        rows.append(row)

    clean = measured[("distill", "post_loss", 0.0)]
    clean_rounds = clean.mean("mean_individual_rounds")

    def satisfied(name: str, kind: str, rate: float) -> float:
        return measured[(name, kind, rate)].mean("satisfied_fraction")

    checks = {
        "clean run satisfies everyone": clean.success_rate() == 1.0,
        "clean run within 4x of the Theorem 4 bound": (
            clean_rounds <= 4.0 * bound
        ),
        "every faulty run still satisfies >= 99% of honest players": all(
            satisfied("distill", kind, rate) >= 0.99
            for kind, rate in sweep
        ),
        "degradation is monotone-ish in post loss (no cliff)": all(
            measured[("distill", "post_loss", hi)].mean(
                "mean_individual_rounds"
            )
            >= 0.8
            * measured[("distill", "post_loss", lo)].mean(
                "mean_individual_rounds"
            )
            for lo, hi in zip(loss_sweep, loss_sweep[1:])
        ),
        "worst faulty run within the rounds budget": all(
            measured[("distill", kind, rate)].mean("mean_individual_rounds")
            < max_rounds / 2
            for kind, rate in sweep
        ),
        "post loss leaves the board-free trivial baseline flat": all(
            abs(
                measured[("trivial", "post_loss", rate)].mean(
                    "mean_individual_probes"
                )
                - measured[("trivial", "post_loss", 0.0)].mean(
                    "mean_individual_probes"
                )
            )
            < 1e-9
            for rate in loss_sweep
        ),
    }
    worst_loss = max(loss_sweep)
    worst = measured[("distill", "post_loss", worst_loss)].mean(
        "mean_individual_rounds"
    )
    notes = [
        f"clean distill: {clean_rounds:.1f} rounds "
        f"(Thm 4 bound {bound:.1f}); at {worst_loss:.0%} post loss: "
        f"{worst:.1f} rounds ({worst / clean_rounds:.2f}x)",
        f"churn restarts after {restart_after} rounds with no local "
        "memory; recovery is pure board re-read",
    ]

    return ExperimentResult(
        experiment_id="E15",
        title="Fault tolerance: post loss and churn (robustness)",
        claim=(
            "DISTILL keeps no essential per-player state off the "
            "billboard, so lossy posting and memoryless churn degrade "
            "cost smoothly without breaking correctness."
        ),
        columns=[
            "fault",
            "rate",
            "distill_rounds",
            "distill_vs_clean",
            "distill_satisfied",
            "trivial_rounds",
            "thm4_bound",
        ],
        rows=rows,
        checks=checks,
        notes=notes,
        formats={
            "rate": ".2f",
            "distill_rounds": ".1f",
            "distill_vs_clean": ".2f",
            "distill_satisfied": ".3f",
            "trivial_rounds": ".1f",
            "thm4_bound": ".1f",
        },
    )
