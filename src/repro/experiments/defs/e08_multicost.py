"""E8 — Theorem 12: multiple costs via cost classes.

Worlds with seven cost classes (costs 1, 2, ..., 64); the cheapest good
object sits in class i0, so ``q0 = 2^i0``. The Theorem 12 algorithm
(DISTILL^HP per class, cheap classes first) should pay per player
``O(q0 · m log n/(αn))`` — in particular, payment should scale roughly
*linearly with q0* and never blow up to the naive ``Σ cost`` of probing
expensive classes first.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.flood import FloodAdversary
from repro.analysis.fitting import fit_power_law
from repro.core.multicost import run_multicost
from repro.experiments.config import ExperimentResult, Scale
from repro.rng import RngFactory
from repro.world.generators import cost_class_instance


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 512
        class_sizes = [64] * 7
        good_classes = [0, 2, 4, 6]
        trials = 12
    else:
        n = 128
        class_sizes = [32] * 4
        good_classes = [0, 2]
        trials = 4
    alpha = 0.8

    rows = []
    checks = {}
    q0s, payments = [], []
    for i0 in good_classes:
        root = RngFactory.from_seed((seed, i0))
        per_trial = []
        bound = None
        for trial in root.trial_factories(trials):
            world_rng = trial.spawn_generator()
            honest_rng = trial.spawn_generator()
            adv_rng = trial.spawn_generator()
            instance = cost_class_instance(
                n=n,
                class_sizes=class_sizes,
                good_class=i0,
                alpha=alpha,
                rng=world_rng,
            )
            out = run_multicost(
                instance,
                rng=honest_rng,
                adversary=FloodAdversary(),
                adversary_rng=adv_rng,
            )
            per_trial.append(out.mean_payment)
            bound = out.bound_payment
        payment = float(np.mean(per_trial))
        q0 = 2.0 ** i0
        q0s.append(q0)
        payments.append(payment)
        rows.append(
            {
                "q0": q0,
                "good_class": i0,
                "m": sum(class_sizes),
                "n": n,
                "mean_payment": payment,
                "thm12_bound": bound,
                "payment/bound": payment / bound,
            }
        )
        # The bound's hidden constant is ours to fit: our per-class stage
        # budget is ~k3/2 full ATTEMPT invocations, i.e. a few multiples
        # of the proof's per-class schedule, so 4x headroom on the curve.
        checks[f"q0={q0:g}: payment within 4x the Theorem 12 curve"] = (
            payment <= 4.0 * bound
        )

    notes = []
    if len(q0s) >= 3:
        # With only two q0 points the early-find offset of the cheapest
        # class dominates the fit; require a real sweep.
        fit = fit_power_law(q0s, payments)
        notes.append(
            f"payment ~ q0^{fit.exponent:.2f} (R2={fit.r2:.3f}); "
            "Theorem 12 predicts exponent ~ 1"
        )
        checks["payment grows ~linearly in q0 (exponent in [0.5, 1.4])"] = (
            0.5 <= fit.exponent <= 1.4
        )

    return ExperimentResult(
        experiment_id="E8",
        title="General cost model via cost classes (Theorem 12)",
        claim=(
            "Each honest player finds a good object w.h.p. while paying "
            "only O(q0 * m log n/(alpha*n)), q0 = cheapest good object."
        ),
        columns=[
            "q0",
            "good_class",
            "m",
            "n",
            "mean_payment",
            "thm12_bound",
            "payment/bound",
        ],
        rows=rows,
        checks=checks,
        notes=notes,
        formats={
            "mean_payment": ".1f",
            "thm12_bound": ".1f",
            "payment/bound": ".2f",
        },
    )
