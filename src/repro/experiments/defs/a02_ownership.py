"""A2 — objects associated with players (Section 6, open problem 2).

The coupled world: m = n, object i owned by player i, dishonest objects
bad, honest objects good with probability ``p_good`` — so ``β = α·p_good``
is no longer free. Dishonest players self-promote (vote for their own
objects). Sweep α and p_good; compare the measured cost against the
decoupled Theorem 4 curve evaluated at the induced β.

Measured answer: DISTILL transfers to the coupled world unchanged — the
self-promotion pattern is just a flood the one-vote budget absorbs, and
the cost tracks the induced-β curve. Coupling changes the *parameters*,
not the algorithm.
"""

from __future__ import annotations

from repro.analysis.bounds import thm4_expected_rounds
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure
from repro.experiments.config import ExperimentResult, Scale
from repro.extensions.ownership import (
    SelfPromotionAdversary,
    ownership_instance,
)


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 512
        combos = [
            (0.9, 0.5),
            (0.6, 0.5),
            (0.3, 0.5),
            (0.6, 0.125),
            (0.6, 1.0),
        ]
        trials = 16
    else:
        n = 128
        combos = [(0.6, 0.5)]
        trials = 6

    rows = []
    checks = {}
    for alpha, p_good in combos:
        res = measure(
            lambda rng, a=alpha, p=p_good: ownership_instance(n, a, p, rng),
            DistillStrategy,
            make_adversary=SelfPromotionAdversary,
            trials=trials,
            seed=(seed, int(alpha * 100), int(p_good * 1000)),
        )
        induced_beta = alpha * p_good
        bound = thm4_expected_rounds(n, alpha, induced_beta)
        rounds = res.mean("mean_individual_rounds")
        rows.append(
            {
                "alpha": alpha,
                "p_good": p_good,
                "induced_beta": induced_beta,
                "rounds": rounds,
                "thm4_at_induced_beta": bound,
                "rounds/bound": rounds / bound,
                "success": res.success_rate(),
            }
        )
        checks[f"alpha={alpha} p_good={p_good}: all honest succeed"] = (
            res.success_rate() == 1.0
        )
        checks[
            f"alpha={alpha} p_good={p_good}: cost within 4x the "
            "induced-beta Theorem 4 curve"
        ] = rounds <= 4.0 * bound + 2

    return ExperimentResult(
        experiment_id="A2",
        title="Coupled objects and players (Section 6 ablation)",
        claim=(
            "Open problem: effect of associating each object with a "
            "player. Measured: self-promotion is an ordinary flood; the "
            "cost follows Theorem 4 at the induced beta = alpha*p_good."
        ),
        columns=[
            "alpha",
            "p_good",
            "induced_beta",
            "rounds",
            "thm4_at_induced_beta",
            "rounds/bound",
            "success",
        ],
        rows=rows,
        checks=checks,
        formats={
            "induced_beta": ".3f",
            "rounds": ".2f",
            "thm4_at_induced_beta": ".2f",
            "rounds/bound": ".2f",
            "success": ".2f",
        },
    )
