"""E9 — Theorem 13: search without local testing.

Continuous-valued worlds where goodness = top β·m values and no threshold
is revealed. The tweaked DISTILL^HP (mutable best-so-far votes, prescribed
run length) should leave every honest player holding a good object with
probability ``1 - n^{-Ω(1)}`` within ``O(log n/(αβn) + log n/α)`` rounds.
"""

from __future__ import annotations

from repro.adversaries.flood import FloodAdversary
from repro.analysis.bounds import thm11_rounds
from repro.billboard.votes import VoteMode
from repro.core.no_local_testing import NoLocalTestingDistill
from repro.experiments.common import measure
from repro.experiments.config import ExperimentResult, Scale
from repro.sim.engine import EngineConfig
from repro.world.generators import valued_instance


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    beta = 1 / 16
    alpha = 0.6
    if scale is Scale.FULL:
        n_sweep = [256, 1024, 4096]
        trials = 24
    else:
        n_sweep = [128, 256]
        trials = 6

    rows = []
    checks = {}
    for n in n_sweep:
        res = measure(
            lambda rng, n=n: valued_instance(
                n=n, m=n, beta=beta, alpha=alpha, rng=rng
            ),
            NoLocalTestingDistill,
            make_adversary=FloodAdversary,
            trials=trials,
            seed=(seed, n),
            config=EngineConfig(
                max_rounds=500_000, vote_mode=VoteMode.MUTABLE
            ),
        )
        bound = thm11_rounds(n, alpha, beta)
        rows.append(
            {
                "n": n,
                "alpha": alpha,
                "beta": beta,
                "prescribed_rounds": res.mean("rounds"),
                "thm13_bound": bound,
                "rounds/bound": res.mean("rounds") / bound,
                "all_honest_good_rate": res.success_rate(),
                "mean_satisfied_frac": res.mean("satisfied_fraction"),
            }
        )
        checks[f"n={n}: every honest player holds a good object"] = (
            res.success_rate() >= 0.95
        )
        # The prescribed length is k3 times the Theorem 13 curve by
        # construction (k3 = 6 here); the check pins that the *shape*
        # tracks the curve with one constant across the whole sweep.
        checks[f"n={n}: run length within 8x the Theorem 13 curve"] = (
            res.mean("rounds") <= 8.0 * bound + 4
        )

    return ExperimentResult(
        experiment_id="E9",
        title="Search without local testing (Theorem 13)",
        claim=(
            "With mutable best-so-far votes and a prescribed run length, "
            "each honest player finds a good object with probability "
            "1 - n^(-Omega(1)) in O(log n/(alpha*beta*n) + log n/alpha) "
            "rounds."
        ),
        columns=[
            "n",
            "alpha",
            "beta",
            "prescribed_rounds",
            "thm13_bound",
            "rounds/bound",
            "all_honest_good_rate",
            "mean_satisfied_frac",
        ],
        rows=rows,
        checks=checks,
        formats={
            "prescribed_rounds": ".0f",
            "thm13_bound": ".1f",
            "rounds/bound": ".2f",
            "all_honest_good_rate": ".3f",
            "mean_satisfied_frac": ".4f",
            "beta": ".4g",
        },
    )
