"""E2 — Theorem 2: the symmetry lower bound Ω(min(1/α, 1/β)).

Runs implemented algorithms (DISTILL and the prior EC'04 algorithm) on the
hard partition distribution {I_k} and records player 0's expected probes
against the ``B/2`` floor. The theorem predicts no algorithm dips below
the floor; ratios ≥ ~1 across the sweep demonstrate the bound binding on
real algorithms, including the paper's own.
"""

from __future__ import annotations

from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.core.distill import DistillStrategy
from repro.experiments.config import ExperimentResult, Scale
from repro.lowerbounds.partition import (
    PartitionConstruction,
    evaluate_partition_bound,
)


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = m = 240
        combos = [
            (1 / 4, 1 / 4),
            (1 / 6, 1 / 6),
            (1 / 8, 1 / 8),
            (1 / 12, 1 / 12),
            (1 / 4, 1 / 12),
            (1 / 12, 1 / 4),
        ]
        trials = 40
    else:
        n = m = 48
        combos = [(1 / 4, 1 / 4), (1 / 8, 1 / 8)]
        trials = 8

    strategies = {
        "distill": DistillStrategy,
        "async-ec04": AsyncEC04Strategy,
    }
    rows = []
    checks = {}
    for alpha, beta in combos:
        construction = PartitionConstruction(n=n, m=m, alpha=alpha, beta=beta)
        for name, factory in strategies.items():
            out = evaluate_partition_bound(
                factory,
                construction,
                trials=trials,
                seed=(seed, int(1 / alpha), int(1 / beta), len(name)),
            )
            rows.append(
                {
                    "algorithm": name,
                    "alpha": alpha,
                    "beta": beta,
                    "B": out["B"],
                    "floor_B/2": out["bound_floor"],
                    "probes_player0": out["mean_probes_player0"],
                    "ratio": out["ratio_to_floor"],
                }
            )
            # The bound is on the expectation; sampling noise gets 20%.
            checks[
                f"{name} 1/a={1/alpha:.0f} 1/b={1/beta:.0f}: "
                "player0 probes >= 0.8 * B/2"
            ] = out["mean_probes_player0"] >= 0.8 * out["bound_floor"]

    return ExperimentResult(
        experiment_id="E2",
        title="Symmetry lower bound (Theorem 2)",
        claim=(
            "Under the partition distribution, any algorithm's expected "
            "individual probes are Omega(min(1/alpha, 1/beta)) (floor B/2)."
        ),
        columns=[
            "algorithm",
            "alpha",
            "beta",
            "B",
            "floor_B/2",
            "probes_player0",
            "ratio",
        ],
        rows=rows,
        checks=checks,
        formats={
            "alpha": ".4g",
            "beta": ".4g",
            "probes_player0": ".2f",
            "ratio": ".2f",
            "floor_B/2": ".1f",
        },
    )
