"""A3 — reputation feeding back into prices (Section 6, open problem 3).

Demand pricing: probing object i costs ``1 + premium · votes_i``. DISTILL
deliberately concentrates everyone on one good object, so convergence
itself becomes expensive — and the players the advice mechanism rescues
*last* pay the highest prices. Sweep the premium; measure mean and
maximum payments and the late-finisher surcharge.

Measured answer: time complexity is untouched (prices are invisible to
the unit-time protocol), payments grow linearly in the premium, and the
incidence is regressive — the worst-paying player's surcharge grows
faster than the mean's. Feedback pricing taxes exactly the coordination
the algorithm is designed to produce, a quantified motivation for the
paper's open problem.
"""

from __future__ import annotations

import numpy as np

from repro.core.distill import DistillStrategy
from repro.experiments.config import ExperimentResult, Scale
from repro.extensions.pricing import PricedEngine
from repro.rng import RngFactory
from repro.world.generators import planted_instance


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 512
        premiums = [0.0, 0.05, 0.2, 1.0]
        trials = 16
    else:
        n = 128
        premiums = [0.0, 0.2]
        trials = 6
    alpha = 0.8
    beta = 1.0 / n

    rows = []
    means, rounds_by_premium = {}, {}
    for premium in premiums:
        root = RngFactory.from_seed((seed, int(premium * 1000)))
        mean_paid, max_paid, mean_rounds = [], [], []
        for trial in root.trial_factories(trials):
            world_rng = trial.spawn_generator()
            honest_rng = trial.spawn_generator()
            instance = planted_instance(
                n=n, m=n, beta=beta, alpha=alpha, rng=world_rng
            )
            engine = PricedEngine(
                instance,
                DistillStrategy(),
                rng=honest_rng,
                premium=premium,
            )
            metrics = engine.run()
            mean_paid.append(metrics.mean_individual_paid)
            max_paid.append(float(metrics.honest_paid.max()))
            mean_rounds.append(metrics.mean_individual_rounds)
        means[premium] = float(np.mean(mean_paid))
        rounds_by_premium[premium] = float(np.mean(mean_rounds))
        rows.append(
            {
                "premium": premium,
                "mean_payment": means[premium],
                "max_payment": float(np.mean(max_paid)),
                "max/mean": float(np.mean(max_paid)) / means[premium],
                "mean_rounds": rounds_by_premium[premium],
            }
        )

    base = premiums[0]
    top = premiums[-1]
    checks = {
        "time complexity unchanged by pricing (within 10%)": (
            abs(rounds_by_premium[top] - rounds_by_premium[base])
            <= 0.10 * rounds_by_premium[base] + 0.5
        ),
        "payments grow with the premium": means[top] > means[base],
        "premium=0 payments equal probe counts (sanity)": (
            abs(means[base] - rounds_by_premium[base]) / rounds_by_premium[base]
            <= 0.5
        ),
    }

    return ExperimentResult(
        experiment_id="A3",
        title="Demand pricing of reputation (Section 6 ablation)",
        claim=(
            "Open problem: effect of reputation-driven prices. Measured: "
            "time is untouched, payments scale with the premium, and the "
            "surcharge falls hardest on late finishers."
        ),
        columns=[
            "premium",
            "mean_payment",
            "max_payment",
            "max/mean",
            "mean_rounds",
        ],
        rows=rows,
        checks=checks,
        formats={
            "mean_payment": ".2f",
            "max_payment": ".2f",
            "max/mean": ".2f",
            "mean_rounds": ".2f",
        },
    )
