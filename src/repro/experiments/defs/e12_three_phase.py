"""E12 — the Section 1.2 three-phase illustration.

Setting: m = n objects, exactly one good object i0, and √n dishonest
players. The claims to verify per phase:

* P[i0 ∈ C2] >= 1 - 1/e  (at least one honest vote lands in phase 1);
* |C2| <= √n + 1 against the breadth-maximizing flood adversary;
* |C3| <= 3 against the depth-maximizing concentrate adversary (√n/2
  votes apiece buys at most 2 bad objects);
* P[i0 ∈ C3] bounded below by a constant, and players holding i0 in C3
  finish within the 3 final rounds.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

import numpy as np

from repro.adversaries.base import Adversary
from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.flood import FloodAdversary
from repro.core.three_phase import ThreePhaseStrategy
from repro.experiments.config import ExperimentResult, Scale
from repro.rng import RngFactory
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.world.generators import planted_instance


def _run_cell(
    n: int,
    adversary_factory: Callable[[], Adversary],
    trials: int,
    seed,
) -> Dict[str, float]:
    root = RngFactory.from_seed(seed)
    sqrt_n = math.sqrt(n)
    stats: Dict[str, List[float]] = {
        "c2_size": [],
        "c3_size": [],
        "good_in_c2": [],
        "good_in_c3": [],
        "satisfied_frac": [],
    }
    for trial in root.trial_factories(trials):
        world_rng = trial.spawn_generator()
        honest_rng = trial.spawn_generator()
        adv_rng = trial.spawn_generator()
        instance = planted_instance(
            n=n, m=n, beta=1.0 / n, alpha=1.0 - sqrt_n / n, rng=world_rng
        )
        good_id = int(instance.space.good_ids[0])
        engine = SynchronousEngine(
            instance,
            ThreePhaseStrategy(),
            adversary=adversary_factory(),
            rng=honest_rng,
            adversary_rng=adv_rng,
            config=EngineConfig(max_rounds=64, strict=False),
        )
        metrics = engine.run()
        sets = metrics.strategy_info["candidate_sets"]
        c2 = set(sets[1]) if len(sets) > 1 else set()
        c3 = set(sets[2]) if len(sets) > 2 else set()
        stats["c2_size"].append(len(c2))
        stats["c3_size"].append(len(c3))
        stats["good_in_c2"].append(float(good_id in c2))
        stats["good_in_c3"].append(float(good_id in c3))
        stats["satisfied_frac"].append(metrics.satisfied_fraction)
    return {key: float(np.mean(vals)) for key, vals in stats.items()}


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n_sweep = [256, 1024, 4096]
        trials = 32
    else:
        n_sweep = [256]
        trials = 8

    rows = []
    checks = {}
    for n in n_sweep:
        sqrt_n = math.sqrt(n)
        for adv_name, factory in [
            ("flood", FloodAdversary),
            (
                "concentrate",
                lambda: ConcentrateAdversary(
                    n_targets=3, votes_each=math.ceil(sqrt_n / 2)
                ),
            ),
        ]:
            cell = _run_cell(n, factory, trials, (seed, n, len(adv_name)))
            rows.append(
                {
                    "n": n,
                    "adversary": adv_name,
                    "sqrt_n": sqrt_n,
                    "mean_|C2|": cell["c2_size"],
                    "mean_|C3|": cell["c3_size"],
                    "P[i0 in C2]": cell["good_in_c2"],
                    "P[i0 in C3]": cell["good_in_c3"],
                    "satisfied_frac": cell["satisfied_frac"],
                }
            )
            checks[f"n={n} {adv_name}: P[i0 in C2] >= 1 - 1/e - noise"] = (
                cell["good_in_c2"] >= (1 - 1 / math.e) - 0.15
            )
            if adv_name == "flood":
                checks[f"n={n} flood: |C2| <= sqrt(n) + 2"] = (
                    cell["c2_size"] <= sqrt_n + 2
                )
            else:
                checks[f"n={n} concentrate: |C3| <= 3"] = (
                    cell["c3_size"] <= 3.0
                )

    return ExperimentResult(
        experiment_id="E12",
        title="The three-phase illustration (Section 1.2)",
        claim=(
            "With m = n and sqrt(n) dishonest players: each candidate set "
            "holds the good object with constant probability, "
            "|C2| <~ sqrt(n), and |C3| <= 3."
        ),
        columns=[
            "n",
            "adversary",
            "sqrt_n",
            "mean_|C2|",
            "mean_|C3|",
            "P[i0 in C2]",
            "P[i0 in C3]",
            "satisfied_frac",
        ],
        rows=rows,
        checks=checks,
        formats={
            "sqrt_n": ".1f",
            "mean_|C2|": ".2f",
            "mean_|C3|": ".2f",
            "P[i0 in C2]": ".3f",
            "P[i0 in C3]": ".3f",
            "satisfied_frac": ".3f",
        },
    )
