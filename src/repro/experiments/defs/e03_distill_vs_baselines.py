"""E3 — the headline comparison (Theorem 4 vs Section 1.2's prior bound).

The regime where the paper's separation lives is **m = n with a single
good object** (β = 1/n): the needle-in-a-haystack search where
collaboration is everything. There

* trivial billboard-free probing needs Θ(n) probes,
* the prior asynchronous algorithm under round robin needs
  Θ(log n/α) — logarithmic growth even when almost everyone is honest,
* DISTILL needs ``O(1/α + (1/α)·log n/Δ)`` — near-flat in n at large α
  (Corollary 5's constant regime), and a ``log log n``-factor better than
  the prior algorithm at small α.

All honest runs face the adaptive split-vote adversary. Trivial probing
is simulated up to a size cap (its cost is exactly geometric, mean 1/β =
n; simulating coupon-collector tails at n = 4096 buys nothing) and
reported analytically everywhere.
"""

from __future__ import annotations

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.analysis.bounds import (
    thm4_expected_rounds,
    thm11_rounds,
    trivial_expected_probes,
)
from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.baselines.trivial import TrivialStrategy
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale

#: simulate the trivial baseline only below this size (see module doc)
TRIVIAL_SIM_CAP = 512


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n_sweep = [64, 256, 1024, 4096]
        alphas = [0.9, 0.5, 0.2]
        trials = 24
    else:
        n_sweep = [64, 256]
        alphas = [0.9, 0.5]
        trials = 6

    rows = []
    measured = {}
    for alpha in alphas:
        for n in n_sweep:
            beta = 1.0 / n  # a single good object among m = n
            row = {
                "alpha": alpha,
                "n": n,
                "trivial_theory": trivial_expected_probes(beta),
                "thm4_bound": thm4_expected_rounds(n, alpha, beta),
                "prior_bound": thm11_rounds(n, alpha, beta),
            }
            strategies = {
                "distill": DistillStrategy,
                "async-ec04": AsyncEC04Strategy,
            }
            if n <= TRIVIAL_SIM_CAP:
                strategies["trivial"] = TrivialStrategy
            for name, factory in strategies.items():
                res = measure(
                    planted_factory(n, n, beta, alpha),
                    factory,
                    make_adversary=SplitVoteAdversary,
                    trials=trials,
                    seed=(seed, n, int(alpha * 100), len(name)),
                )
                value = res.mean("mean_individual_rounds")
                row[name] = value
                measured[(name, alpha, n)] = value
            rows.append(row)

    checks = {}
    for alpha in alphas:
        big = [n for n in n_sweep if n >= 256]
        # The theoretical gap over the prior algorithm is a log log n
        # factor — below measurement resolution at simulable n with both
        # algorithms' constants; we check DISTILL is at least on par
        # (within 15% noise) everywhere, and strictly better at high
        # alpha where its O(1) regime kicks in.
        checks[
            f"alpha={alpha}: distill <= 1.15 * async-ec04 for n >= 256"
        ] = all(
            measured[("distill", alpha, n)]
            <= 1.15 * measured[("async-ec04", alpha, n)] + 1e-9
            for n in big
        )
        # Both collaborative algorithms crush the Theta(n) trivial cost.
        n_big = max(n_sweep)
        checks[f"alpha={alpha}: collaboration beats trivial at n={n_big}"] = (
            measured[("async-ec04", alpha, n_big)] < 0.25 * n_big
        )
    top = max(alphas)
    checks[f"alpha={top}: distill strictly beats async-ec04"] = all(
        measured[("distill", top, n)]
        <= measured[("async-ec04", top, n)] + 1e-9
        for n in n_sweep
        if n >= 256
    )
    # Near-constant individual cost at large alpha (Corollary 5 regime).
    vals = [measured[("distill", top, n)] for n in n_sweep]
    checks[f"alpha={top}: distill flat in n (max/min <= 3)"] = (
        max(vals) / max(min(vals), 1e-12) <= 3.0
    )
    # The prior algorithm grows with n at the same alpha; only meaningful
    # when the sweep spans enough doublings for log n to move.
    if n_sweep[-1] / n_sweep[0] >= 16:
        prior = [measured[("async-ec04", top, n)] for n in n_sweep]
        checks[f"alpha={top}: async-ec04 grows with n"] = prior[-1] > prior[0]

    return ExperimentResult(
        experiment_id="E3",
        title="DISTILL vs prior algorithm vs trivial (Theorem 4 headline)",
        claim=(
            "DISTILL has O(1) individual cost when most players are honest "
            "and O((1/alpha) log n/loglog n) otherwise; the prior algorithm "
            "pays Omega(log n) even at alpha ~ 1."
        ),
        columns=[
            "alpha",
            "n",
            "distill",
            "async-ec04",
            "trivial",
            "trivial_theory",
            "thm4_bound",
            "prior_bound",
        ],
        rows=rows,
        checks=checks,
        formats={
            "distill": ".2f",
            "async-ec04": ".2f",
            "trivial": ".2f",
            "trivial_theory": ".0f",
            "thm4_bound": ".2f",
            "prior_bound": ".2f",
        },
    )
