"""E1 — Theorem 1: the collective-work lower bound Ω(1/(αβn)).

Three mutually checking measurements:

1. the exact urn expectation ``(m+1)/(βm+1)`` divided by the honest
   per-round probe capacity ``αn`` (the proof's own constants);
2. a direct urn simulation at the same parameters;
3. the full engine running the idealized
   :class:`~repro.baselines.full_cooperation.FullCooperationStrategy` —
   the best any algorithm could do.

The measured full-cooperation cost should track the exact bound to within
a small constant (it pays one extra "follow the finder" round), confirming
both that the bound binds and that our engine's accounting is right.
"""

from __future__ import annotations


from repro.baselines.full_cooperation import FullCooperationStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale
from repro.lowerbounds.urn import (
    simulate_urn_rounds,
    thm1_individual_lower_bound,
)
from repro.rng import make_generator


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n_sweep = [64, 256, 1024, 4096]
        beta_sweep = [1 / 64, 1 / 16, 1 / 4]
        trials = 48
    else:
        n_sweep = [64, 256]
        beta_sweep = [1 / 16]
        trials = 8
    alpha = 0.5
    rows = []
    checks = {}

    configs = [(n, 1 / 16) for n in n_sweep] + [
        (1024 if scale is Scale.FULL else 128, b) for b in beta_sweep
    ]
    seen = set()
    for n, beta in configs:
        if (n, beta) in seen:
            continue
        seen.add((n, beta))
        m = n
        bound = thm1_individual_lower_bound(n, m, alpha, beta)
        n_good = max(1, int(round(beta * m)))
        urn = simulate_urn_rounds(
            m,
            n_good,
            probes_per_round=max(1, int(alpha * n)),
            rng=make_generator((seed, n, int(1 / beta))),
            trials=trials,
        )
        res = measure(
            planted_factory(n, m, beta, alpha),
            FullCooperationStrategy,
            trials=trials,
            seed=(seed, n, int(1 / beta), 1),
        )
        measured = res.mean("mean_individual_rounds")
        rows.append(
            {
                "n": n,
                "m": m,
                "alpha": alpha,
                "beta": beta,
                "bound_exact": bound,
                "urn_sim_rounds": float(urn.mean()),
                "fullcoop_rounds": measured,
                "ratio": measured / max(bound, 1e-12),
            }
        )
        # Full cooperation can exceed the bound (it is a lower bound) but
        # only by the +1 follow-the-finder round and integer effects.
        checks[f"n={n} beta={beta:.4g}: bound <= measured <= bound+2.5"] = (
            bound <= measured + 1e-9 <= bound + 2.5
        )

    return ExperimentResult(
        experiment_id="E1",
        title="Collective-work lower bound (Theorem 1)",
        claim=(
            "Any search algorithm has an instance where a player's expected "
            "probes are Omega(1/(alpha*beta*n))."
        ),
        columns=[
            "n",
            "m",
            "alpha",
            "beta",
            "bound_exact",
            "urn_sim_rounds",
            "fullcoop_rounds",
            "ratio",
        ],
        rows=rows,
        checks=checks,
        formats={
            "bound_exact": ".3f",
            "urn_sim_rounds": ".3f",
            "fullcoop_rounds": ".3f",
            "ratio": ".2f",
            "beta": ".4g",
        },
    )
