"""E14 — the prior work's total-cost bound (Section 1.1).

Section 1.1 quotes the predecessor result this paper builds on: "a
simple algorithm where the *total cost* to the honest players of finding
good objects is O(1/β + n log n), regardless of the number of dishonest
players". Having built that algorithm as a baseline, we can check its
own headline:

* sweep n with β = 1/n (so 1/β = n and the bound reads O(n log n));
* run on the asynchronous engine (the model of [1]) under round robin,
  with a Byzantine vote flood — the bound claims indifference to
  dishonest players;
* measure total honest probes; fit against ``n log n`` and against the
  per-player-flat alternative ``n`` — the log-factor should be visible
  and the adversary shouldn't move the curve's shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import log2n
from repro.analysis.fitting import fit_scale_factor, r_squared
from repro.baselines.async_ec04 import AsyncEC04Strategy
from repro.experiments.config import ExperimentResult, Scale
from repro.rng import RngFactory
from repro.sim.async_engine import AsynchronousEngine, PerStepAdapter
from repro.sim.schedules import RoundRobinSchedule
from repro.world.generators import planted_instance


def _total_cost(
    n: int, alpha: float, trials: int, seed, with_adversary: bool = False
) -> float:
    from repro.adversaries.flood import FloodAdversary

    root = RngFactory.from_seed(seed)
    totals = []
    for trial in root.trial_factories(trials):
        world_rng = trial.spawn_generator()
        honest_rng = trial.spawn_generator()
        adversary_rng = trial.spawn_generator()
        inst = planted_instance(
            n=n, m=n, beta=1.0 / n, alpha=alpha, rng=world_rng
        )
        engine = AsynchronousEngine(
            inst,
            PerStepAdapter(AsyncEC04Strategy()),
            schedule=RoundRobinSchedule(),
            adversary=FloodAdversary() if with_adversary else None,
            rng=honest_rng,
            adversary_rng=adversary_rng,
            max_steps=50_000_000,
        )
        totals.append(engine.run().total_honest_probes)
    return float(np.mean(totals))


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n_sweep = [64, 256, 1024, 4096]
        trials = 12
    else:
        n_sweep = [64, 256]
        trials = 4

    rows = []
    honest_costs, attacked_costs = [], []
    for n in n_sweep:
        honest = _total_cost(n, alpha=1.0, trials=trials, seed=(seed, n, 0))
        # "regardless of the number of dishonest players": hand a third
        # of the players to a vote-flooding adversary whose bogus
        # recommendations poison the exploit half of the rule; the claim
        # is that the *honest* total keeps its shape
        attacked = _total_cost(
            n, alpha=2 / 3, trials=trials, seed=(seed, n, 1),
            with_adversary=True,
        )
        honest_costs.append(honest)
        attacked_costs.append(attacked)
        rows.append(
            {
                "n": n,
                "total_probes_all_honest": honest,
                "total_probes_alpha=2/3": attacked,
                "bound_nlogn": n * log2n(n),
                "per_capita_all_honest": honest / n,
            }
        )

    nlogn = [n * log2n(n) for n in n_sweep]
    linear = [float(n) for n in n_sweep]
    c_nlogn = fit_scale_factor(honest_costs, nlogn)
    c_lin = fit_scale_factor(honest_costs, linear)
    r2_nlogn = r_squared(
        np.array(honest_costs), c_nlogn * np.array(nlogn)
    )
    r2_lin = r_squared(np.array(honest_costs), c_lin * np.array(linear))
    checks = {
        "total cost grows superlinearly (log factor visible)": (
            honest_costs[-1] / honest_costs[0]
            > 1.15 * n_sweep[-1] / n_sweep[0]
        )
        if len(n_sweep) >= 3
        else True,
        "n log n fits at least as well as n": r2_nlogn >= r2_lin - 0.02,
        "dishonest third moves totals by < 2.5x (shape indifference)": all(
            a <= 2.5 * h + 1
            for a, h in zip(attacked_costs, honest_costs)
        ),
    }
    notes = [
        f"fit c*nlogn: c={c_nlogn:.2f} R2={r2_nlogn:.3f}; "
        f"fit c*n: c={c_lin:.2f} R2={r2_lin:.3f}"
    ]

    return ExperimentResult(
        experiment_id="E14",
        title="Total cost of the prior algorithm (Section 1.1 quote)",
        claim=(
            "[1]: total honest cost O(1/beta + n log n), regardless of "
            "the number of dishonest players."
        ),
        columns=[
            "n",
            "total_probes_all_honest",
            "total_probes_alpha=2/3",
            "bound_nlogn",
            "per_capita_all_honest",
        ],
        rows=rows,
        checks=checks,
        notes=notes,
        formats={
            "total_probes_all_honest": ".0f",
            "total_probes_alpha=2/3": ".0f",
            "bound_nlogn": ".0f",
            "per_capita_all_honest": ".2f",
        },
    )
