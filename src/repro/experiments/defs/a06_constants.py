"""A6 — sensitivity to the Figure 1 constants k1, k2.

Figure 1 says "the parameters k1 and k2 are determined later"; the proof
settles for ``k1 >= 1, k2 >= 192`` — chosen for proof convenience. This
ablation maps the real cost landscape: a (k1, k2) grid against the
adaptive split-vote adversary, at two honesty levels.

What it shows (and why the library defaults to k1=4, k2=8):

* with k1 >= 4, Step 1.1 almost always seeds a good vote, the Lemma 6
  advice cascade finishes the run *inside* the Step 1.3 window, and k2
  is then cost-free no matter how large — the protocol self-truncates;
* with k1 = 1, Step 1.1 fails a constant fraction of the time, the
  whole ``2·ceil(k2/α)``-round Step 1.3 is then wasted probing a
  good-less pool, and cost grows linearly in k2 — the proof's k2 = 192
  costs ~10x the defaults there;
* every cell is *correct* (ATTEMPT restarts until success); constants
  move cost only, exactly as the theory says.
"""

from __future__ import annotations

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 512
        alphas = [0.8, 0.3]
        k1_grid = [1.0, 4.0, 16.0]
        k2_grid = [2.0, 8.0, 32.0, 192.0]
        trials = 12
    else:
        n = 128
        alphas = [0.5]
        k1_grid = [1.0, 4.0]
        k2_grid = [8.0, 32.0]
        trials = 4
    beta = 1.0 / n

    rows = []
    cost = {}
    for alpha in alphas:
        for k1 in k1_grid:
            for k2 in k2_grid:
                params = DistillParameters(k1=k1, k2=k2)
                res = measure(
                    planted_factory(n, n, beta, alpha),
                    lambda p=params: DistillStrategy(p),
                    make_adversary=lambda p=params: SplitVoteAdversary(
                        params=p
                    ),
                    trials=trials,
                    seed=(seed, int(alpha * 100)),  # paired across cells
                )
                rounds = res.mean("mean_individual_rounds")
                cost[(alpha, k1, k2)] = rounds
                rows.append(
                    {
                        "alpha": alpha,
                        "k1": k1,
                        "k2": k2,
                        "rounds": rounds,
                        "success": res.success_rate(),
                    }
                )

    checks = {}
    for alpha in alphas:
        cells = {
            (k1, k2): cost[(alpha, k1, k2)]
            for k1 in k1_grid
            for k2 in k2_grid
        }
        best = min(cells.values())
        default = cells.get((4.0, 8.0), cells[min(cells)])
        checks[f"alpha={alpha}: every cell terminates successfully"] = all(
            row["success"] == 1.0
            for row in rows
            if row["alpha"] == alpha
        )
        checks[
            f"alpha={alpha}: defaults (k1=4, k2=8) within 2x of the "
            "best cell"
        ] = default <= 2.0 * best
        big_k2 = max(k2_grid)
        if big_k2 >= 64 and 1.0 in k1_grid:
            # k2's cost is visible exactly where Step 1.1 can fail
            checks[
                f"alpha={alpha}: at k1=1, k2={big_k2:g} costs >= 3x "
                "the defaults (failed attempts pay the full Step 1.3)"
            ] = cells[(1.0, big_k2)] >= 3.0 * default
            # ...and invisible where Step 1.1 is reliable: the cascade
            # self-truncates Step 1.3 (see module doc)
            checks[
                f"alpha={alpha}: at k1=4, k2 is cost-free "
                "(k2={:g} within 25% of defaults)".format(big_k2)
            ] = cells[(4.0, big_k2)] <= 1.25 * default

    return ExperimentResult(
        experiment_id="A6",
        title="Sensitivity to the Figure 1 constants (k1, k2)",
        claim=(
            "The proof wants k2 >= 192 for convenience; measured, the "
            "cost bowl is wide and shallow around small constants, and "
            "the proof's constants overpay by an order of magnitude."
        ),
        columns=["alpha", "k1", "k2", "rounds", "success"],
        rows=rows,
        checks=checks,
        formats={"rounds": ".2f", "success": ".2f", "k1": "g", "k2": "g"},
    )
