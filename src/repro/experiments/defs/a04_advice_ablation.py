"""A4 — what does PROBE&SEEKADVICE's advice half buy? (Lemma 6 ablation)

DISTILL with the advice rounds replaced by extra exploration, everything
else identical. Lemma 6 predicts the difference shows up in the *tail*:
with advice, once half the honest players are satisfied the rest finish
in ``O(1/α)`` expected extra rounds by copying; without it, each
straggler must personally probe the good object out of its current pool.

Needle worlds sharpen the effect (pools stay large until the very end).
"""

from __future__ import annotations

from repro.adversaries.flood import FloodAdversary
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale
from repro.extensions.no_advice import NoAdviceDistill
from repro.sim.engine import EngineConfig


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n_sweep = [256, 1024]
        alphas = [0.8, 0.4]
        trials = 16
    else:
        n_sweep = [128]
        alphas = [0.5]
        trials = 6

    rows = []
    checks = {}
    for alpha in alphas:
        for n in n_sweep:
            beta = 1.0 / n
            cells = {}
            for name, factory in (
                ("with-advice", DistillStrategy),
                ("no-advice", NoAdviceDistill),
            ):
                res = measure(
                    planted_factory(n, n, beta, alpha),
                    factory,
                    make_adversary=FloodAdversary,
                    trials=trials,
                    seed=(seed, n, int(alpha * 100), len(name)),
                    config=EngineConfig(max_rounds=500_000),
                )
                cells[name] = res
                rows.append(
                    {
                        "alpha": alpha,
                        "n": n,
                        "variant": name,
                        "mean_rounds": res.mean("mean_individual_rounds"),
                        "tail_rounds": res.mean("max_individual_rounds"),
                        "success": res.success_rate(),
                    }
                )
            with_tail = cells["with-advice"].mean("max_individual_rounds")
            without_tail = cells["no-advice"].mean("max_individual_rounds")
            checks[
                f"alpha={alpha} n={n}: advice shortens the tail"
            ] = with_tail < without_tail

    return ExperimentResult(
        experiment_id="A4",
        title="Ablating the advice mechanism (Lemma 6)",
        claim=(
            "Every second probe follows a random player's vote; removing "
            "it leaves the phases intact but strands stragglers — the "
            "termination tail grows."
        ),
        columns=[
            "alpha",
            "n",
            "variant",
            "mean_rounds",
            "tail_rounds",
            "success",
        ],
        rows=rows,
        checks=checks,
        formats={
            "mean_rounds": ".2f",
            "tail_rounds": ".1f",
            "success": ".2f",
        },
    )
