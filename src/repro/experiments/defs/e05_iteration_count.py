"""E5 — Lemma 7: the while loop runs O(log n / Δ) iterations.

Lemma 7 is the paper's technical core: the distillation loop is
*sub-logarithmic* — ``O(log n/Δ)`` with ``Δ = log(1/(1-α) + log n)`` —
against any vote-splitting schedule. Two measurements:

1. **Worst-case kernel** (:mod:`repro.analysis.lemma7_kernel`): the
   adversary's optimal budget-splitting game played directly on the
   Step 2.2 arithmetic, scaled to n = 2^28 where the asymptotics are
   visible. We fit scale factors to the competing hypotheses ``log n``
   and ``log n/Δ`` and compare fit quality.
2. **Engine runs** against the adaptive split-vote adversary, reported
   for honesty: at simulable n (≤ 8192) the Lemma 6 advice cascade ends
   runs during Step 1.3, so full-run iteration counts sit at 0-2 — far
   *below* the bound, consistent with it.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.analysis.bounds import delta, lemma7_iteration_bound, log2n
from repro.analysis.fitting import fit_scale_factor, r_squared
from repro.analysis.lemma7_kernel import worst_case_iterations
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        kernel_exps = [8, 12, 16, 20, 24, 28]
        alphas = [0.5, 0.2, 0.05]
        engine_ns = [512, 2048, 8192]
        trials = 16
    else:
        kernel_exps = [8, 12, 16]
        alphas = [0.2]
        engine_ns = [256]
        trials = 4
    beta = 1 / 16

    rows = []
    checks = {}
    notes = []
    for alpha in alphas:
        iters, sublog, logn = [], [], []
        for e in kernel_exps:
            n = 2 ** e
            trace = worst_case_iterations(n, alpha)
            iters.append(float(trace.iterations))
            sublog.append(lemma7_iteration_bound(n, alpha))
            logn.append(log2n(n))
            rows.append(
                {
                    "source": "kernel",
                    "alpha": alpha,
                    "n": n,
                    "iterations": trace.iterations,
                    "log2n": log2n(n),
                    "delta": delta(alpha, n),
                    "bound_logn/delta": lemma7_iteration_bound(n, alpha),
                }
            )
        c_sub = fit_scale_factor(iters, sublog)
        c_log = fit_scale_factor(iters, logn)
        r2_sub = r_squared(np.array(iters), c_sub * np.array(sublog))
        r2_log = r_squared(np.array(iters), c_log * np.array(logn))
        notes.append(
            f"kernel alpha={alpha}: c*logn/delta fit c={c_sub:.2f} "
            f"R2={r2_sub:.3f}; c*logn fit c={c_log:.2f} R2={r2_log:.3f}"
        )
        checks[f"alpha={alpha}: kernel iterations <= 2.5x logn/delta"] = all(
            it <= 2.5 * b for it, b in zip(iters, sublog)
        )
        if len(kernel_exps) >= 4:
            # With few points both hypotheses fit anything; require the
            # full sweep before comparing them.
            checks[
                f"alpha={alpha}: logn/delta fits at least as well as logn"
            ] = r2_sub >= r2_log - 0.02
            # Sub-logarithmic growth: iterations grow strictly slower
            # than log n over the sweep.
            checks[f"alpha={alpha}: growth slower than log n"] = (
                iters[-1] / iters[0] < 0.9 * logn[-1] / logn[0]
            )

    for n in engine_ns:
        alpha = min(alphas)
        res = measure(
            planted_factory(n, n, beta, alpha),
            DistillStrategy,
            make_adversary=lambda: SplitVoteAdversary(
                step11_fraction=0.2, step13_fraction=0.3
            ),
            trials=trials,
            seed=(seed, n),
        )
        mean_iters = float(
            np.mean(
                [
                    info["max_iterations_per_attempt"]
                    for info in res.strategy_infos
                ]
            )
        )
        rows.append(
            {
                "source": "engine",
                "alpha": alpha,
                "n": n,
                "iterations": mean_iters,
                "log2n": log2n(n),
                "delta": delta(alpha, n),
                "bound_logn/delta": lemma7_iteration_bound(n, alpha),
            }
        )
        checks[f"engine n={n}: measured iterations within the bound"] = (
            mean_iters <= 2.5 * lemma7_iteration_bound(n, alpha)
        )

    return ExperimentResult(
        experiment_id="E5",
        title="Distillation loop length (Lemma 7)",
        claim=(
            "Each invocation of ATTEMPT runs O(log n / Delta) while-loop "
            "iterations, Delta = log(1/(1-alpha) + log n) — sub-logarithmic."
        ),
        columns=[
            "source",
            "alpha",
            "n",
            "iterations",
            "log2n",
            "delta",
            "bound_logn/delta",
        ],
        rows=rows,
        checks=checks,
        notes=notes,
        formats={
            "iterations": ".2f",
            "log2n": ".1f",
            "delta": ".2f",
            "bound_logn/delta": ".2f",
        },
    )
