"""A5 — what does adversary adaptivity buy? (Section 2.3 ablation)

The model grants DISTILL's adversary full adaptivity (it may react to
every realized coin flip), while the paper's lower bounds deliberately
use "a much more benign model" — Theorem 2's adversary is oblivious.
This ablation measures the gap: the adaptive split-vote adversary vs an
oblivious twin that commits the same playbook before the run, vs the
silent control, across honesty levels.

Measured answer (a negative result worth recording): at engine scales
the adaptivity premium is *below measurement resolution* — runs end
during Step 1.3, whose phase schedule is deterministic, so the adaptive
and oblivious schedules coincide; adaptivity could only pay off in the
iteration phase and ATTEMPT restarts, which the honest advice cascade
almost never lets happen (see E5). This is consistent with the theory:
the upper bound tolerates adaptivity, the lower bounds never needed it.
"""

from __future__ import annotations

from repro.adversaries.oblivious import ObliviousSplitVoteAdversary
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 512
        alphas = [0.7, 0.4, 0.15]
        trials = 24
    else:
        n = 128
        alphas = [0.4]
        trials = 6

    rows = []
    checks = {}
    for alpha in alphas:
        beta = 1.0 / n
        cells = {}
        for name, factory in (
            ("silent", SilentAdversary),
            ("oblivious-split-vote", ObliviousSplitVoteAdversary),
            ("adaptive-split-vote", SplitVoteAdversary),
        ):
            # one seed per alpha, shared by all three cells: identical
            # worlds and honest coins, so the comparison is paired and
            # the adversary is the only varying factor
            res = measure(
                planted_factory(n, n, beta, alpha),
                DistillStrategy,
                make_adversary=factory,
                trials=trials,
                seed=(seed, int(alpha * 100)),
            )
            cells[name] = res.mean("mean_individual_rounds")
            rows.append(
                {
                    "alpha": alpha,
                    "adversary": name,
                    "rounds": cells[name],
                    "success": res.success_rate(),
                }
            )
        checks[f"alpha={alpha}: attacks cost more than silence"] = (
            cells["adaptive-split-vote"] > cells["silent"]
            and cells["oblivious-split-vote"] > cells["silent"]
        )
        checks[
            f"alpha={alpha}: adaptivity premium below 25% "
            "(negative result, see module doc)"
        ] = (
            cells["adaptive-split-vote"]
            <= 1.25 * cells["oblivious-split-vote"]
            and cells["oblivious-split-vote"]
            <= 1.25 * cells["adaptive-split-vote"]
        )

    return ExperimentResult(
        experiment_id="A5",
        title="Oblivious vs adaptive adversaries (Section 2.3 ablation)",
        claim=(
            "DISTILL is proved against adaptive adversaries; the lower "
            "bounds use oblivious ones. Measured: at engine scale the "
            "adaptive premium is nil — Step 1 dominates and its schedule "
            "is deterministic, so both adversaries play the same game."
        ),
        columns=["alpha", "adversary", "rounds", "success"],
        rows=rows,
        checks=checks,
        formats={"rounds": ".2f", "success": ".2f"},
    )
