"""A1 — "Is slander useless?" (Section 6, open problem 1).

Needle worlds (m = n, one good object) make the question sharp: the
slander-consuming reader prunes bad candidates when reports are honest,
but a smear campaign against the single good object can deny it to any
reader that believes ``t`` corroborating reports whenever the adversary
controls ``t`` players. Four cells: {plain DISTILL, slandering DISTILL} ×
{honest world, smear campaign}.

The measured answer: slander buys little when honest (the one-sided
algorithm is already near its floor) and is catastrophic under attack —
the slander-trusting reader fails to terminate within a >100x round
budget while plain DISTILL is untouched. One-sidedness is load-bearing.
"""

from __future__ import annotations

from repro.adversaries.silent import SilentAdversary
from repro.core.distill import DistillStrategy
from repro.experiments.common import measure, planted_factory
from repro.experiments.config import ExperimentResult, Scale
from repro.extensions.slander import SlanderAdversary, SlanderingDistill
from repro.sim.engine import EngineConfig


def run(scale: Scale = Scale.FULL, seed: int = 0) -> ExperimentResult:
    if scale is Scale.FULL:
        n = 512
        trials = 16
    else:
        n = 128
        trials = 6
    alpha = 0.6
    beta = 1.0 / n
    threshold = 3
    budget_cap = 16 * n  # generous: >100x the unmolested cost

    cells = [
        ("distill", "honest", DistillStrategy, SilentAdversary),
        ("distill-slander", "honest",
         lambda: SlanderingDistill(threshold), SilentAdversary),
        ("distill", "smear", DistillStrategy, SlanderAdversary),
        ("distill-slander", "smear",
         lambda: SlanderingDistill(threshold), SlanderAdversary),
    ]
    rows = []
    outcomes = {}
    for reader, world, strategy_factory, adversary_factory in cells:
        res = measure(
            planted_factory(n, n, beta, alpha),
            strategy_factory,
            make_adversary=adversary_factory,
            trials=trials,
            seed=(seed, len(reader), len(world)),
            config=EngineConfig(
                record_reports=True, max_rounds=budget_cap, strict=False
            ),
        )
        key = (reader, world)
        outcomes[key] = res
        rows.append(
            {
                "reader": reader,
                "world": world,
                "rounds": res.mean("mean_individual_rounds"),
                "success": res.success_rate(),
                "satisfied_frac": res.mean("satisfied_fraction"),
            }
        )

    checks = {
        "plain DISTILL ignores the smear campaign entirely": (
            outcomes[("distill", "smear")].mean("mean_individual_rounds")
            <= 1.5
            * outcomes[("distill", "honest")].mean("mean_individual_rounds")
            and outcomes[("distill", "smear")].success_rate() == 1.0
        ),
        "slander-trusting reader is suppressed by the smear": (
            outcomes[("distill-slander", "smear")].mean("satisfied_fraction")
            < 0.5
        ),
        "slander buys <2x in honest worlds (one-sidedness is cheap)": (
            outcomes[("distill", "honest")].mean("mean_individual_rounds")
            <= 2.0
            * outcomes[("distill-slander", "honest")].mean(
                "mean_individual_rounds"
            )
        ),
    }

    return ExperimentResult(
        experiment_id="A1",
        title='"Is slander useless?" (Section 6 ablation)',
        claim=(
            "Open problem: can negative recommendations close the gap? "
            "Measured: believing corroborated slander is catastrophic "
            "under a smear campaign and buys little when honest."
        ),
        columns=["reader", "world", "rounds", "success", "satisfied_frac"],
        rows=rows,
        checks=checks,
        formats={
            "rounds": ".1f",
            "success": ".2f",
            "satisfied_frac": ".3f",
        },
    )
