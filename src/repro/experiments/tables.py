"""ASCII rendering of experiment tables and figure series.

The paper's "figures" are scaling curves; we render them as aligned
tables (one row per x-value, one column per series) plus a crude log-scale
bar chart for eyeballing shape in a terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError


class Table:
    """An aligned ASCII table.

    Parameters
    ----------
    columns:
        Column names, in display order.
    formats:
        Optional per-column format specs (e.g. ``{"rounds": ".1f"}``);
        unspecified columns use ``str`` for strings and ``.4g`` for
        numbers.
    """

    def __init__(
        self,
        columns: Sequence[str],
        formats: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not columns:
            raise ConfigurationError("a table needs at least one column")
        self.columns = list(columns)
        self.formats = dict(formats or {})
        self.rows: List[Dict[str, object]] = []

    def add_row(self, **values: object) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ConfigurationError(f"unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def _cell(self, column: str, value: object) -> str:
        if value is None:
            return "-"
        spec = self.formats.get(column)
        if spec is not None and isinstance(value, (int, float)):
            return format(value, spec)
        if isinstance(value, float):
            return format(value, ".4g")
        return str(value)

    def render_markdown(self) -> str:
        """The table as GitHub-flavoured markdown."""
        header = "| " + " | ".join(self.columns) + " |"
        rule = "|" + "|".join("---" for _ in self.columns) + "|"
        body = [
            "| "
            + " | ".join(self._cell(c, row.get(c)) for c in self.columns)
            + " |"
            for row in self.rows
        ]
        return "\n".join([header, rule, *body])

    def render(self) -> str:
        """The table as an aligned string (no trailing newline)."""
        grid = [self.columns] + [
            [self._cell(c, row.get(c)) for c in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(grid[r][c]) for r in range(len(grid)))
            for c in range(len(self.columns))
        ]
        lines = []
        for r, cells in enumerate(grid):
            line = "  ".join(
                cell.rjust(widths[c]) for c, cell in enumerate(cells)
            )
            lines.append(line)
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """A terminal 'figure': per-series bars scaled to a common axis.

    Useful for eyeballing who-wins and crossovers — the reproduction
    targets — without a plotting stack.
    """
    all_values = [v for ys in series.values() for v in ys if v > 0]
    if not all_values:
        return "(no positive data)"
    vmax = max(all_values)
    vmin = min(all_values)

    def bar(value: float) -> str:
        if value <= 0:
            return ""
        if log_scale and vmax > vmin:
            frac = (math.log(value) - math.log(vmin)) / (
                math.log(vmax) - math.log(vmin)
            )
        elif vmax > 0:
            frac = value / vmax
        else:
            frac = 0.0
        return "#" * max(1, int(round(frac * width)))

    name_width = max(len(name) for name in series)
    lines = []
    for i, x in enumerate(xs):
        lines.append(f"{x_label}={x:g}")
        for name, ys in series.items():
            lines.append(
                f"  {name.ljust(name_width)} "
                f"{ys[i]:10.3f} |{bar(ys[i])}"
            )
    return "\n".join(lines)
