"""Read-only billboard views.

Players never touch the :class:`~repro.billboard.board.Billboard` directly;
the engine hands them a :class:`BillboardView` that (a) exposes only read
methods and (b) pins the *visibility horizon*:

* honest players acting in round ``r`` see posts stamped ``< r`` (they read
  the board at the start of the round);
* the adaptive adversary acting at the end of round ``r`` sees posts
  stamped ``<= r`` — including the honest coin flips realized this round,
  exactly the information an adaptive Byzantine adversary is granted in
  Section 2.3.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.post import Post, PostKind


class BillboardView:
    """A read-only, horizon-limited window onto a billboard.

    Parameters
    ----------
    board:
        The underlying billboard.
    before_round:
        Exclusive visibility horizon: only posts with
        ``round_no < before_round`` are visible. ``None`` means the whole
        board (the adversary's end-of-round view).

    Views are throwaway (the engine builds one per round per observer), so
    they carry no state beyond the horizon — repeated queries at the same
    horizon are served from the ledger's per-horizon memo, not cached here.
    """

    __slots__ = ("_board", "before_round")

    def __init__(self, board: Billboard, before_round: Optional[int] = None) -> None:
        self._board = board
        self.before_round = before_round

    def with_horizon(self, before_round: Optional[int]) -> "BillboardView":
        """A view of the same board at a different visibility horizon.

        Used by protocol-mimicking adversaries to reconstruct exactly what
        an honest player saw at the start of a round.
        """
        return BillboardView(self._board, before_round=before_round)

    @property
    def n_players(self) -> int:
        return self._board.n_players

    @property
    def n_objects(self) -> int:
        return self._board.n_objects

    def posts(
        self, kind: Optional[PostKind] = None, player: Optional[int] = None
    ) -> List[Post]:
        """Visible posts, optionally filtered by kind and poster."""
        return self._board.posts(
            kind=kind, player=player, before_round=self.before_round
        )

    def vote_posts(self) -> List[Post]:
        """Visible vote posts (whether or not effective for readers)."""
        return self._board.vote_posts(before_round=self.before_round)

    def current_vote_array(self) -> np.ndarray:
        """Each player's current effective vote (``-1`` when none)."""
        return self._board.current_vote_array(before_round=self.before_round)

    def objects_with_votes(self) -> np.ndarray:
        """Objects with at least one effective vote (Step 1.2's ``S``)."""
        return self._board.objects_with_votes(before_round=self.before_round)

    def cumulative_vote_counts(self) -> np.ndarray:
        """Effective votes per object over the whole visible board.

        The Section 1.2 three-phase algorithm thresholds on cumulative
        counts ("recommended by at least θ_i players on the billboard"),
        unlike DISTILL's per-stage windows.
        """
        if self.before_round is not None:
            end = self.before_round
        else:
            end = self._board.last_round + 1
        return self._board.counts_in_window(0, max(end, 0))

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        """Effective votes per object in rounds ``[start, end)``.

        The window end is clipped to the view's horizon so a player cannot
        observe votes from the future.
        """
        end = end_round
        if self.before_round is not None:
            end = min(end, self.before_round)
        if end < start_round:
            end = start_round
        return self._board.counts_in_window(start_round, end)


class SnapshotView(BillboardView):
    """An epoch-pinned read view with a genuine immutability guarantee.

    The serving layer (:mod:`repro.serve`) hands concurrent readers a
    ``SnapshotView`` pinned at the epoch that was current when the
    reader arrived. Unlike a plain :class:`BillboardView` — a horizon
    filter over a board that may still grow *below* the horizon in
    principle — a snapshot's isolation is structural: the board is
    append-only and round stamps are monotone (:class:`~repro.errors.
    TamperError` on regression), so once the writer has moved on to
    epoch ``E`` no future post can ever be stamped ``< E``. Every query
    against a ``SnapshotView(board, epoch=E)`` is therefore repeatable
    for the lifetime of the board, no matter how many posts land
    concurrently in epochs ``>= E``
    (``tests/billboard/test_snapshot_view.py`` pins this property under
    interleaved ``append_many`` traffic).

    ``epoch`` is the *exclusive* horizon: the snapshot sees exactly the
    posts of completed epochs ``0 .. E-1``.
    """

    __slots__ = ()

    def __init__(self, board: Billboard, epoch: int) -> None:
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        super().__init__(board, before_round=epoch)

    @property
    def epoch(self) -> int:
        """The pinned epoch (exclusive visibility horizon)."""
        assert self.before_round is not None
        return self.before_round

    def with_horizon(self, before_round: Optional[int]) -> BillboardView:
        """Re-pinning a snapshot yields a plain view: only the original
        epoch carries the was-current-at-open guarantee."""
        return BillboardView(self._board, before_round=before_round)
