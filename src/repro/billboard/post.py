"""Billboard post records.

A post is one line on the shared billboard. The paper assumes every message
is "reliably tagged by the identity of the posting player and a timestamp"
(Section 2.1); we realize the timestamp as the synchronous round number plus
a board-assigned sequence number that totally orders posts within a round.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PostKind(enum.Enum):
    """The two kinds of billboard posts.

    ``REPORT``
        The outcome of probing an object that did *not* qualify as the
        poster's vote (a "negative" report). DISTILL flatly ignores these —
        the paper's closing question "is slander useless?" refers exactly to
        this information being discarded — but the billboard still records
        them because the model says players post after every probe.

    ``VOTE``
        A positive recommendation: "this object is good". Under local
        testing an honest player votes for the first good object it probes
        and halts; without local testing (Section 5.3) the vote is the best
        object probed so far and may be re-posted as it improves.
    """

    REPORT = "report"
    VOTE = "vote"


@dataclass(frozen=True)
class Post:
    """One immutable billboard entry.

    Attributes
    ----------
    seq:
        Board-assigned sequence number; totally orders all posts.
    round_no:
        The synchronous round in which the post was appended. Posts made in
        round ``r`` become visible to honest players at the start of round
        ``r + 1`` (the adversary may react within round ``r`` itself; see
        DESIGN.md, "Adversary ordering").
    player:
        Identity of the posting player, ``0 <= player < n``. The billboard
        guarantees this tag is reliable — a Byzantine player cannot forge
        posts under another identity.
    object_id:
        The object the post is about, ``0 <= object_id < m``.
    reported_value:
        The value the poster claims to have observed. Honest players report
        truthfully; Byzantine players may report anything.
    kind:
        :class:`PostKind.VOTE` or :class:`PostKind.REPORT`.
    """

    seq: int
    round_no: int
    player: int
    object_id: int
    reported_value: float
    kind: PostKind

    @property
    def is_vote(self) -> bool:
        """Whether this post is a positive recommendation."""
        return self.kind is PostKind.VOTE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "VOTE" if self.is_vote else "rep "
        return (
            f"[{self.seq:>6} r{self.round_no:>5}] {tag} "
            f"player={self.player} object={self.object_id} "
            f"value={self.reported_value:g}"
        )
