"""Multi-lane columnar billboard substrate for the batched engine.

The batched engine (:mod:`repro.sim.batch_engine`) advances ``K``
independent trials in lockstep. Each trial still needs a billboard with
the *exact* reader semantics of :class:`~repro.billboard.board.Billboard`
— the vote ledger rules are what keep the DISTILL cohort in lockstep —
but none of the per-post overhead: no :class:`Post` dataclass per entry,
no hash-chain field snapshot, no Python list walk per query.

:class:`LaneBillboard` therefore stores each lane's log as growable numpy
columns (round, player, object, value, kind) plus a per-lane
:class:`~repro.billboard.votes.VoteLedger` — the same ledger class the
scalar board uses, so every effectiveness rule is shared code, not a
re-implementation. :meth:`LaneBoard.posts` materializes `Post` objects on
demand, which keeps per-lane adapter strategies (anything written against
:class:`~repro.billboard.views.BillboardView`) fully supported.

What a lane board deliberately does *not* carry is the tamper-evidence
hash chain: lanes live and die inside one engine call and are never
handed to untrusted code, and the batched path's integrity guarantee is
the golden equivalence suite against the scalar engine (which does chain
its board).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.billboard.post import Post, PostKind
from repro.billboard.sparse import SparseVoteLedger, normalize_substrate
from repro.billboard.votes import VoteLedger, VoteMode
from repro.errors import ConfigurationError, InvalidPostError, TamperError

_KIND_REPORT = 0
_KIND_VOTE = 1


class _Column:
    """A growable single-dtype column with amortized O(1) appends."""

    __slots__ = ("_buf", "_size")

    def __init__(self, dtype: "np.typing.DTypeLike", capacity: int = 64) -> None:
        self._buf = np.empty(max(int(capacity), 1), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def extend(self, values: np.ndarray) -> None:
        needed = self._size + values.shape[0]
        if needed > self._buf.shape[0]:
            capacity = self._buf.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=self._buf.dtype)
            grown[: self._size] = self._buf[: self._size]
            self._buf = grown
        self._buf[self._size : needed] = values
        self._size = needed

    def view(self) -> np.ndarray:
        """Zero-copy read-only window onto the filled prefix (see
        :meth:`~repro.billboard.votes._IntColumn.view`)."""
        window = self._buf[: self._size]
        window.flags.writeable = False
        return window


class LaneBoard:
    """One lane's billboard: columnar log + shared-code vote ledger.

    Implements the full read API of
    :class:`~repro.billboard.board.Billboard` (everything
    :class:`~repro.billboard.views.BillboardView` forwards to), so a view
    over a lane board is indistinguishable from a view over a scalar
    board with the same post history.
    """

    __slots__ = (
        "n_players",
        "n_objects",
        "ledger",
        "_rounds",
        "_players",
        "_objects",
        "_values",
        "_kinds",
        "_last_round",
    )

    def __init__(
        self,
        n_players: int,
        n_objects: int,
        vote_mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
        substrate: str = "dense",
    ) -> None:
        self.n_players = n_players
        self.n_objects = n_objects
        # The lane board's post log is already columnar; the substrate
        # knob selects the *ledger* representation — the dense ledger's
        # O(n) per-player state vs the object-sharded sparse ledger.
        # Both are bit-identical for every query (the equivalence grid
        # pins this), so the choice never affects results.
        ledger_cls = (
            SparseVoteLedger
            if normalize_substrate(substrate) == "sparse"
            else VoteLedger
        )
        self.ledger: "VoteLedger | SparseVoteLedger" = ledger_cls(
            n_players,
            n_objects,
            mode=vote_mode,
            max_votes_per_player=max_votes_per_player,
        )
        self._rounds = _Column(np.int64)
        self._players = _Column(np.int64)
        self._objects = _Column(np.int64)
        self._values = _Column(np.float64)
        self._kinds = _Column(np.int8)
        self._last_round = -1

    # ------------------------------------------------------------------
    # Writing (engine-only; vectorized)
    # ------------------------------------------------------------------
    def post_block(
        self,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
        kind: PostKind,
    ) -> None:
        """Append a same-round, same-kind block of posts, in order.

        Validates the whole block before appending anything, mirroring
        ``Billboard.append_many``'s all-or-nothing contract and its error
        messages.
        """
        players = np.ascontiguousarray(players, dtype=np.int64)
        objects = np.ascontiguousarray(objects, dtype=np.int64)
        values = np.ascontiguousarray(values, dtype=np.float64)
        if players.size == 0:
            return
        self._validate_block(round_no, players, objects)
        self._rounds.extend(np.full(players.size, round_no, np.int64))
        self._players.extend(players)
        self._objects.extend(objects)
        self._values.extend(values)
        self._kinds.extend(
            np.full(
                players.size,
                _KIND_VOTE if kind is PostKind.VOTE else _KIND_REPORT,
                np.int8,
            )
        )
        self._last_round = round_no
        if kind is PostKind.VOTE:
            self.ledger.record_block(round_no, players, objects)

    def post_entries(
        self,
        round_no: int,
        entries: Sequence[Tuple[int, int, float, PostKind]],
    ) -> None:
        """Append mixed-kind entries (the adversary's batch), in order."""
        if not entries:
            return
        players = np.fromiter(
            (e[0] for e in entries), dtype=np.int64, count=len(entries)
        )
        objects = np.fromiter(
            (e[1] for e in entries), dtype=np.int64, count=len(entries)
        )
        values = np.fromiter(
            (e[2] for e in entries), dtype=np.float64, count=len(entries)
        )
        kinds = np.fromiter(
            (_KIND_VOTE if e[3] is PostKind.VOTE else _KIND_REPORT for e in entries),
            dtype=np.int8,
            count=len(entries),
        )
        self._validate_block(round_no, players, objects)
        self._rounds.extend(np.full(players.size, round_no, np.int64))
        self._players.extend(players)
        self._objects.extend(objects)
        self._values.extend(values)
        self._kinds.extend(kinds)
        self._last_round = round_no
        vote_mask = kinds == _KIND_VOTE
        if vote_mask.any():
            # Non-vote posts never touch the ledger, so recording the
            # vote subset in order is equivalent to per-post recording.
            self.ledger.record_block(
                round_no, players[vote_mask], objects[vote_mask]
            )

    def _validate_block(
        self, round_no: int, players: np.ndarray, objects: np.ndarray
    ) -> None:
        bad_p = (players < 0) | (players >= self.n_players)
        if bad_p.any():
            player = int(players[np.argmax(bad_p)])
            raise InvalidPostError(
                f"unknown player identity {player} (n={self.n_players})"
            )
        bad_o = (objects < 0) | (objects >= self.n_objects)
        if bad_o.any():
            object_id = int(objects[np.argmax(bad_o)])
            raise InvalidPostError(
                f"unknown object {object_id} (m={self.n_objects})"
            )
        if round_no < 0:
            raise InvalidPostError(f"negative round {round_no}")
        if round_no < self._last_round:
            raise TamperError(
                f"post stamped round {round_no} after round {self._last_round} "
                "was already on the board (append-only violation)"
            )

    # ------------------------------------------------------------------
    # Reading (the Billboard API BillboardView forwards to)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rounds)

    @property
    def last_round(self) -> int:
        """Round stamp of the newest post (``-1`` for an empty board)."""
        return self._last_round

    def posts(
        self,
        kind: Optional[PostKind] = None,
        player: Optional[int] = None,
        before_round: Optional[int] = None,
    ) -> List[Post]:
        """The log in append order, materialized to ``Post`` on demand.

        This is the compatibility path for per-lane adapter strategies;
        native batched strategies use the ledger queries and never pay
        for materialization.
        """
        rounds = self._rounds.view()
        cutoff = rounds.size
        if before_round is not None:
            cutoff = int(np.searchsorted(rounds, before_round, side="left"))
        keep = np.ones(cutoff, dtype=bool)
        if kind is not None:
            want = _KIND_VOTE if kind is PostKind.VOTE else _KIND_REPORT
            keep &= self._kinds.view()[:cutoff] == want
        if player is not None:
            keep &= self._players.view()[:cutoff] == player
        seqs = np.flatnonzero(keep)
        players = self._players.view()
        objects = self._objects.view()
        values = self._values.view()
        kinds = self._kinds.view()
        return [
            Post(
                seq=int(s),
                round_no=int(rounds[s]),
                player=int(players[s]),
                object_id=int(objects[s]),
                reported_value=float(values[s]),
                kind=PostKind.VOTE if kinds[s] == _KIND_VOTE else PostKind.REPORT,
            )
            for s in seqs
        ]

    def vote_posts(self, before_round: Optional[int] = None) -> List[Post]:
        """All vote posts (effective or not) in append order."""
        return self.posts(kind=PostKind.VOTE, before_round=before_round)

    # Ledger pass-throughs ---------------------------------------------
    def current_vote_array(self, before_round: Optional[int] = None) -> np.ndarray:
        return self.ledger.current_vote_array(before_round)

    def objects_with_votes(self, before_round: Optional[int] = None) -> np.ndarray:
        return self.ledger.objects_with_votes(before_round)

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        return self.ledger.counts_in_window(start_round, end_round)


class LaneBillboard:
    """``K`` independent lane boards with identical shape and vote rules."""

    __slots__ = ("n_lanes", "lanes")

    def __init__(
        self,
        n_lanes: int,
        n_players: int,
        n_objects: int,
        vote_mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
        substrate: str = "dense",
    ) -> None:
        if n_lanes < 1:
            raise ConfigurationError(f"need at least one lane, got {n_lanes}")
        self.n_lanes = n_lanes
        self.lanes = [
            LaneBoard(
                n_players,
                n_objects,
                vote_mode=vote_mode,
                max_votes_per_player=max_votes_per_player,
                substrate=substrate,
            )
            for _ in range(n_lanes)
        ]

    def lane(self, index: int) -> LaneBoard:
        return self.lanes[index]
