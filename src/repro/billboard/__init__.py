"""The shared billboard substrate of the paper (Section 2.1).

The billboard is an append-only log of *posts*. Each post is reliably tagged
with the identity of the posting player and a timestamp (here: the round
number). Honest players post the outcome of every probe; a probe of a good
object is a *vote* — the only kind of report Algorithm DISTILL consumes.

The components are:

* :class:`~repro.billboard.post.Post` — one immutable billboard entry.
* :class:`~repro.billboard.board.Billboard` — the append-only log with
  integrity enforcement.
* :class:`~repro.billboard.votes.VoteLedger` — the *reader-side* vote
  accounting: one vote per player (Figure 1), or the first ``f`` votes
  (Section 4.1), or the mutable best-so-far vote (Section 5.3).
* :class:`~repro.billboard.views.BillboardView` — the read-only window a
  player or adversary is handed during a round.
* :class:`~repro.billboard.sparse.SparseBoard` /
  :class:`~repro.billboard.sparse.SparseVoteLedger` — the sparse columnar
  substrate for population-scale worlds (``substrate="sparse"``), bit-
  identical to the dense board/ledger for every query.
"""

from repro.billboard.board import Billboard
from repro.billboard.lanes import LaneBillboard, LaneBoard
from repro.billboard.post import Post, PostKind
from repro.billboard.sparse import (
    SPARSE_AUTO_THRESHOLD,
    SUBSTRATE_CHOICES,
    SparseBoard,
    SparseVoteLedger,
    choose_substrate,
    normalize_substrate,
    substrate_fallback_reason,
)
from repro.billboard.views import BillboardView
from repro.billboard.votes import VoteLedger, VoteMode

__all__ = [
    "Billboard",
    "BillboardView",
    "LaneBillboard",
    "LaneBoard",
    "Post",
    "PostKind",
    "SPARSE_AUTO_THRESHOLD",
    "SUBSTRATE_CHOICES",
    "SparseBoard",
    "SparseVoteLedger",
    "VoteLedger",
    "VoteMode",
    "choose_substrate",
    "normalize_substrate",
    "substrate_fallback_reason",
]
