"""Reader-side vote accounting.

The billboard itself is a dumb append-only log; the *rules* about which
votes count are applied by readers. This module centralizes those rules so
that every honest player applies them identically (which is what keeps the
DISTILL cohort in lockstep).

Three vote modes appear in the paper:

``SINGLE``
    Figure 1: "allow each player to make only one such report, called the
    player's *vote*". Only the first vote ever posted by a player counts;
    later votes by the same player are ignored by readers. This is the rule
    whose accounting powers Lemma 7 (the dishonest vote budget ``(1-α)n``).

``MULTI``
    Section 4.1: each player may submit positive votes for up to ``f``
    objects. The first ``f`` votes for *distinct* objects count.

``MUTABLE``
    Section 5.3 (search without local testing): a player's vote is the best
    object it has probed so far, so the vote may change; the player's
    *latest* vote post is current, and within a counting window the player
    contributes (at most) one vote — for the last object it switched to in
    that window.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.billboard.post import Post
from repro.world.playerstate import player_array


class _IntColumn:
    """A growable typed column with amortized O(1) appends.

    The ledger stores its effective-vote log as three of these (rounds,
    players, objects) so that every query is a vectorized slice instead of
    a Python walk. :meth:`view` returns a zero-copy window onto the filled
    prefix; callers must not mutate it. The default ``int64`` matches the
    dense ledger's arithmetic; the sparse substrate passes narrower
    dtypes (``int32`` ids, ``float64`` values, ``int8`` kinds) to keep
    million-post logs compact.
    """

    __slots__ = ("_buf", "_size")

    def __init__(self, capacity: int = 64, dtype=np.int64) -> None:
        self._buf = np.empty(max(int(capacity), 1), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, value: int) -> None:
        if self._size == self._buf.shape[0]:
            self._grow(self._size + 1)
        self._buf[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a block of values in one vectorized copy."""
        needed = self._size + values.shape[0]
        if needed > self._buf.shape[0]:
            self._grow(needed)
        self._buf[self._size : needed] = values
        self._size = needed

    def _grow(self, needed: int) -> None:
        capacity = self._buf.shape[0]
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=self._buf.dtype)
        grown[: self._size] = self._buf[: self._size]
        self._buf = grown

    def view(self) -> np.ndarray:
        """Zero-copy read-only window onto the filled prefix.

        The window is marked non-writeable so out-of-API mutation fails
        loudly (``ValueError``) instead of silently corrupting the vote
        accounting; the flag lives on the returned view only — the
        ledger keeps writing through its own buffer reference.
        """
        window = self._buf[: self._size]
        window.flags.writeable = False
        return window


class VoteMode(enum.Enum):
    """Which votes on the board are *effective* for readers."""

    SINGLE = "single"
    MULTI = "multi"
    MUTABLE = "mutable"


class VoteLedger:
    """Incremental tally of effective votes on a billboard.

    The ledger observes every vote post (via :meth:`record`) in append
    order and answers the three queries DISTILL needs:

    * :meth:`current_vote_array` — each player's current advice target
      (used by PROBE&SEEKADVICE);
    * :meth:`objects_with_votes` — the set ``S`` of Step 1.2;
    * :meth:`counts_in_window` — the per-iteration tallies ``l_t(i)`` of
      Steps 1.4 and 2.2.

    Parameters
    ----------
    n_players, n_objects:
        Dimensions of the world.
    mode:
        Vote-effectiveness rule; see :class:`VoteMode`.
    max_votes_per_player:
        The ``f`` of Section 4.1; only meaningful in ``MULTI`` mode
        (``SINGLE`` forces 1, ``MUTABLE`` tracks a single mutable slot).
    """

    def __init__(
        self,
        n_players: int,
        n_objects: int,
        mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
    ) -> None:
        if n_players <= 0 or n_objects <= 0:
            raise ConfigurationError(
                "ledger needs positive player and object counts, got "
                f"n_players={n_players}, n_objects={n_objects}"
            )
        if mode is VoteMode.SINGLE:
            max_votes_per_player = 1
        if max_votes_per_player < 1:
            raise ConfigurationError(
                f"max_votes_per_player must be >= 1, got {max_votes_per_player}"
            )
        self.n_players = n_players
        self.n_objects = n_objects
        self.mode = mode
        self.max_votes_per_player = max_votes_per_player

        # Effective votes in append order, as parallel numpy columns
        # (rounds are non-decreasing, so horizon cuts are binary searches).
        self._rounds = _IntColumn()
        self._players = _IntColumn()
        self._objects = _IntColumn()

        # Per-player effective vote targets (for MULTI advice and budgets).
        self._votes_by_player: List[List[int]] = [[] for _ in range(n_players)]

        # Current advice target per player; -1 means "no vote yet".
        # player_array keeps million-player ledgers memmap-backed, the
        # same active-players-only budget the sparse substrate promises.
        self._current_vote = player_array(n_players, -1, np.int64)

        # Effective-vote tally per player (vectorized votes_cast_by).
        self._vote_counts = player_array(n_players, 0, np.int64)

        # Objects with >= 1 effective vote, in first-vote order.
        self._voted_objects: Dict[int, int] = {}

        # Per-horizon query memo, invalidated on every effective record.
        # Within one round the engine, tracker, and advice resolution all
        # query the same horizon; the memo collapses those repeats. The
        # memo is *bounded*: engines query monotonically-advancing
        # horizons, so when a strictly newer horizon arrives, entries for
        # older horizons are evicted (see _note_horizon). Full-ledger
        # queries (horizon None) are kept — they are invalidated by
        # appends, not superseded by later horizons.
        self._memo: Dict[tuple, np.ndarray] = {}
        self._memo_horizon = -1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, post: Post) -> bool:
        """Observe a vote post; return whether it was *effective*.

        Non-vote posts must not be passed here (the board filters).
        """
        return self._record_one(post.round_no, post.player, post.object_id)

    def _record_one(self, round_no: int, player: int, obj: int) -> bool:
        targets = self._votes_by_player[player]
        if self.mode is VoteMode.MUTABLE:
            # Latest vote is current; a repeat of the same object is a
            # no-op for the current pointer but does not add a new entry.
            if targets and targets[-1] == obj:
                return False
            targets.append(obj)
        else:
            if len(targets) >= self.max_votes_per_player:
                return False  # excess votes are ignored by readers
            if obj in targets:
                return False  # duplicate vote for the same object
            targets.append(obj)
        self._rounds.append(round_no)
        self._players.append(player)
        self._objects.append(obj)
        self._current_vote[player] = obj
        self._vote_counts[player] += 1
        self._voted_objects.setdefault(obj, round_no)
        self._memo.clear()
        return True

    def record_block(
        self, round_no: int, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        """Observe a same-round block of vote posts, in order.

        Equivalent to calling :meth:`record` once per ``(player, object)``
        pair; returns the per-post effectiveness mask. In ``SINGLE`` mode
        the whole block is resolved vectorized — this is the batched
        engine's hot path for adversaries that flood thousands of votes in
        one round. The other modes fall back to the per-post rule.

        An empty block is an explicit no-op: no state is touched, the
        memo survives, and an empty boolean mask is returned.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if players.shape != objects.shape:
            raise ConfigurationError(
                "record_block needs parallel player/object arrays, got "
                f"shapes {players.shape} and {objects.shape}"
            )
        if players.size == 0:
            return np.zeros(0, dtype=bool)
        if self.mode is not VoteMode.SINGLE or players.size < 2:
            return np.array(
                [
                    self._record_one(round_no, int(p), int(o))
                    for p, o in zip(players, objects)
                ],
                dtype=bool,
            )
        # SINGLE: a vote is effective iff the player has no prior vote
        # and this is the player's first vote within the block.
        no_prior = self._current_vote[players] == -1
        first_in_block = np.zeros(players.size, dtype=bool)
        _uniq, first = np.unique(players, return_index=True)
        first_in_block[first] = True
        effective = no_prior & first_in_block
        if effective.any():
            eff_players = players[effective]
            eff_objects = objects[effective]
            self._rounds.extend(np.full(eff_players.size, round_no, np.int64))
            self._players.extend(eff_players)
            self._objects.extend(eff_objects)
            self._current_vote[eff_players] = eff_objects
            self._vote_counts[eff_players] += 1
            for p, o in zip(eff_players, eff_objects):
                self._votes_by_player[p].append(int(o))
                self._voted_objects.setdefault(int(o), round_no)
            self._memo.clear()
        return effective

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def effective_vote_count(self) -> int:
        """Total number of effective votes recorded so far."""
        return len(self._objects)

    def votes_of(self, player: int) -> Tuple[int, ...]:
        """All effective vote targets of ``player``, in posting order."""
        return tuple(self._votes_by_player[player])

    def current_vote_array(self, before_round: Optional[int] = None) -> np.ndarray:
        """Each player's current advice target (``-1`` when none).

        With ``before_round`` given, only votes posted in rounds strictly
        earlier than ``before_round`` are considered — this is the honest
        player's view at the start of that round. Without it, the full
        ledger state (the adversary's end-of-round view) is returned.

        In ``MULTI`` mode the *first* vote is the advice target; Section 4.1
        only needs one of the honest player's votes to be correct, and the
        first is the one cast by the protocol itself.
        """
        key = ("current", before_round)
        cached = self._memo.get(key)
        if cached is not None:
            return cached.copy()
        if before_round is not None:
            self._note_horizon(before_round)
        if before_round is None:
            if self.mode is VoteMode.MULTI:
                result = self._first_vote_array(len(self._objects))
            else:
                result = self._current_vote.copy()
        else:
            cutoff = self._count_before(before_round)
            if self.mode is VoteMode.MULTI:
                result = self._first_vote_array(cutoff)
            else:
                # The latest vote before the cutoff wins (MUTABLE); in
                # SINGLE mode there is at most one vote per player.
                result = self._last_vote_array(cutoff)
        self._memo[key] = result
        return result.copy()

    def _first_vote_array(self, cutoff: int) -> np.ndarray:
        result = player_array(self.n_players, -1, np.int64)
        players = self._players.view()[:cutoff]
        if players.size:
            uniq, first = np.unique(players, return_index=True)
            result[uniq] = self._objects.view()[:cutoff][first]
        return result

    def _last_vote_array(self, cutoff: int) -> np.ndarray:
        result = player_array(self.n_players, -1, np.int64)
        players = self._players.view()[:cutoff][::-1]
        if players.size:
            # First occurrence in the reversed column = last vote overall.
            uniq, first = np.unique(players, return_index=True)
            result[uniq] = self._objects.view()[:cutoff][::-1][first]
        return result

    def objects_with_votes(self, before_round: Optional[int] = None) -> np.ndarray:
        """Sorted ids of objects having at least one effective vote.

        This is the candidate pool ``S`` of Step 1.2 of ATTEMPT.
        """
        key = ("objects", before_round)
        cached = self._memo.get(key)
        if cached is not None:
            return cached.copy()
        if before_round is not None:
            self._note_horizon(before_round)
        if before_round is None:
            cutoff = len(self._objects)
        else:
            cutoff = self._count_before(before_round)
        result = np.unique(self._objects.view()[:cutoff])
        self._memo[key] = result
        return result.copy()

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        """Effective votes per object posted in rounds ``[start, end)``.

        This realizes the shared variable ``l_t(i)`` of Figure 1: "the
        number of votes object *i* receives in iteration *t*", where the
        iteration is identified with its round window. Returns an array of
        length ``n_objects``.

        In ``MUTABLE`` mode a player that switched votes several times
        within the window contributes only its final switch.
        """
        if end_round < start_round:
            raise ConfigurationError(
                f"empty-negative window [{start_round}, {end_round})"
            )
        key = ("window", start_round, end_round)
        cached = self._memo.get(key)
        if cached is not None:
            return cached.copy()
        self._note_horizon(end_round)
        rounds = self._rounds.view()
        lo = int(np.searchsorted(rounds, start_round, side="left"))
        hi = int(np.searchsorted(rounds, end_round, side="left"))
        objects = self._objects.view()[lo:hi]
        if self.mode is VoteMode.MUTABLE and objects.size:
            players = self._players.view()[lo:hi][::-1]
            _uniq, first = np.unique(players, return_index=True)
            objects = objects[::-1][first]
        if objects.size:
            counts = np.bincount(
                objects, minlength=self.n_objects
            ).astype(np.int64, copy=False)
        else:
            counts = np.zeros(self.n_objects, dtype=np.int64)
        self._memo[key] = counts
        return counts.copy()

    def votes_cast_by(self, players: np.ndarray) -> int:
        """Total effective votes cast by the given player ids.

        Used by tests to check the dishonest vote budget of Lemma 7:
        at most ``(1 - α)n`` effective dishonest votes ever (``f`` times
        that in MULTI mode).
        """
        ids = np.asarray(players, dtype=np.int64)
        if ids.size == 0:
            return 0
        return int(self._vote_counts[ids].sum())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_horizon(self, horizon: int) -> None:
        """Bound the memo: evict entries for horizons older than the
        newest horizon queried.

        Engines query horizons that only ever advance (the current
        round), so entries keyed by an older horizon will not be asked
        for again; without eviction a long ``strict=False`` run grows the
        memo by a few entries per round without bound. An out-of-order
        (older) query after eviction merely recomputes — never stale.
        """
        if horizon <= self._memo_horizon:
            return
        self._memo_horizon = horizon
        stale = [
            key
            for key in self._memo
            if (h := key[-1]) is not None and h < horizon
        ]
        for key in stale:
            del self._memo[key]
    def _count_before(self, before_round: int) -> int:
        """Number of effective votes posted strictly before ``before_round``.

        Rounds are appended in non-decreasing order, so binary search is
        exact.
        """
        return int(
            np.searchsorted(self._rounds.view(), before_round, side="left")
        )
