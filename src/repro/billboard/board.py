"""The append-only billboard.

Section 2.1 of the paper makes two assumptions about the billboard, both
enforced here:

1. every message is reliably tagged with the posting player's identity and a
   timestamp — the board stamps posts itself, so a poster cannot forge
   either; and
2. the board is append-only — no message is ever erased, and any attempt to
   rewrite history raises :class:`~repro.errors.TamperError`.

The board additionally maintains a **hash chain** over its posts (each
post's digest covers the previous digest), the standard systems
realization of those assumptions: :meth:`Billboard.verify_integrity`
re-derives the chain and fails loudly if any stored post was mutated
behind the API's back — e.g. by test code or a buggy strategy poking at
internals. The model's adversary never gets this power; the chain is a
guard-rail for the *implementation*.

The chain is **lazily materialized**: each append snapshots the post's
canonical field string (cheap) and defers all SHA-256 work until the
first :attr:`Billboard.head_digest` or
:meth:`Billboard.verify_integrity` access, at which point the pending
snapshots are folded in append order. The materialized digest is
bit-identical to eager per-append chaining, and because the fold runs
over the *snapshots* — not the live ``Post`` objects — an out-of-API
mutation between append and materialization is still detected.
"""

from __future__ import annotations

import hashlib
from itertools import takewhile
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.billboard.post import Post, PostKind
from repro.billboard.votes import VoteLedger, VoteMode
from repro.errors import InvalidPostError, TamperError

#: digest of the empty board (the chain's genesis value)
GENESIS_DIGEST = hashlib.sha256(b"repro-billboard-genesis").hexdigest()

#: one batch entry for :meth:`Billboard.append_many`
Entry = Tuple[int, int, float, PostKind]


def _post_fields(post: Post) -> str:
    """Canonical field string of one post (the chained payload's suffix)."""
    return (
        f"{post.seq}|{post.round_no}|{post.player}|"
        f"{post.object_id}|{post.reported_value!r}|{post.kind.value}"
    )


def _fold_digest(previous: str, fields: str) -> str:
    """Fold one canonical field string onto the previous digest."""
    return hashlib.sha256(f"{previous}|{fields}".encode()).hexdigest()


def _chain_digest(previous: str, post: Post) -> str:
    """Digest of one post, chained onto the previous digest."""
    return _fold_digest(previous, _post_fields(post))


class Billboard:
    """Append-only post log plus its vote ledger.

    The board validates identities and timestamps; vote *semantics* (which
    votes count) live in the attached :class:`VoteLedger` because they are a
    reader-side convention, not a property of the medium.

    Parameters
    ----------
    n_players, n_objects:
        World dimensions used for identity/object validation.
    vote_mode:
        Reader-side vote rule (see :class:`VoteMode`).
    max_votes_per_player:
        The ``f`` of Section 4.1 (MULTI mode only).
    """

    def __init__(
        self,
        n_players: int,
        n_objects: int,
        vote_mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
    ) -> None:
        self.n_players = n_players
        self.n_objects = n_objects
        self._posts: List[Post] = []
        self._last_round = -1
        #: digest of the materialized prefix of the chain
        self._digest = GENESIS_DIGEST
        #: canonical field snapshots of posts not yet folded into _digest
        self._pending_fields: List[str] = []
        self.ledger = VoteLedger(
            n_players,
            n_objects,
            mode=vote_mode,
            max_votes_per_player=max_votes_per_player,
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self,
        round_no: int,
        player: int,
        object_id: int,
        reported_value: float,
        kind: PostKind,
    ) -> Post:
        """Stamp, validate, and append a post; returns the stored record.

        Raises
        ------
        InvalidPostError
            If the player or object id is out of range, or the round is
            negative.
        TamperError
            If the round number is earlier than an already-appended post
            (which would amount to rewriting history).
        """
        self._validate_entry(round_no, player, object_id)
        post = Post(
            seq=len(self._posts),
            round_no=round_no,
            player=player,
            object_id=object_id,
            reported_value=float(reported_value),
            kind=kind,
        )
        self._posts.append(post)
        self._last_round = round_no
        self._pending_fields.append(_post_fields(post))
        if post.is_vote:
            self.ledger.record(post)
        return post

    def append_many(
        self, round_no: int, entries: Sequence[Entry]
    ) -> List[Post]:
        """Stamp, validate, and append a batch of posts for one round.

        ``entries`` is a sequence of ``(player, object_id, reported_value,
        kind)`` tuples. Equivalent to calling :meth:`append` once per entry
        in order — same post sequence, same ledger state, same hash chain —
        but the whole batch is validated *before* anything is appended
        (all-or-nothing), and the per-call overhead of stamping and
        digest bookkeeping is amortized over the batch.

        An empty batch is an explicit no-op: nothing is validated, the
        board (and its hash chain) is untouched, and ``[]`` is returned.

        Raises
        ------
        InvalidPostError, TamperError
            Same conditions as :meth:`append`; on error the board is
            unchanged.
        """
        if not entries:
            return []
        for player, object_id, _value, _kind in entries:
            self._validate_entry(round_no, player, object_id)
        base = len(self._posts)
        posts = [
            Post(
                seq=base + offset,
                round_no=round_no,
                player=int(player),
                object_id=int(object_id),
                reported_value=float(value),
                kind=kind,
            )
            for offset, (player, object_id, value, kind) in enumerate(entries)
        ]
        self._posts.extend(posts)
        self._last_round = round_no
        self._pending_fields.extend(_post_fields(p) for p in posts)
        record = self.ledger.record
        for post in posts:
            if post.is_vote:
                record(post)
        return posts

    def _validate_entry(self, round_no: int, player: int, object_id: int) -> None:
        if not 0 <= player < self.n_players:
            raise InvalidPostError(
                f"unknown player identity {player} (n={self.n_players})"
            )
        if not 0 <= object_id < self.n_objects:
            raise InvalidPostError(
                f"unknown object {object_id} (m={self.n_objects})"
            )
        if round_no < 0:
            raise InvalidPostError(f"negative round {round_no}")
        if round_no < self._last_round:
            raise TamperError(
                f"post stamped round {round_no} after round {self._last_round} "
                "was already on the board (append-only violation)"
            )

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    @property
    def head_digest(self) -> str:
        """Digest of the whole log (changes with every append).

        Materializes any deferred chain segments on access; the value is
        bit-identical to eager per-append chaining.
        """
        self._materialize_digest()
        return self._digest

    def _materialize_digest(self) -> None:
        """Fold pending field snapshots into the running digest."""
        if self._pending_fields:
            digest = self._digest
            for fields in self._pending_fields:
                digest = _fold_digest(digest, fields)
            self._digest = digest
            self._pending_fields.clear()

    def verify_integrity(self) -> None:
        """Re-derive the hash chain; raise :class:`TamperError` on any
        discrepancy between the stored posts and the running digest.

        The comparison digest is materialized from the field snapshots
        taken at append time, so a post mutated after its append is
        detected even if :attr:`head_digest` was never read before the
        mutation.
        """
        digest = GENESIS_DIGEST
        last_round = -1
        for index, post in enumerate(self._posts):
            if post.seq != index:
                raise TamperError(
                    f"post at position {index} carries seq {post.seq}"
                )
            if post.round_no < last_round:
                raise TamperError(
                    f"post {index} is stamped round {post.round_no} after "
                    f"round {last_round}"
                )
            last_round = post.round_no
            digest = _chain_digest(digest, post)
        if digest != self.head_digest:
            raise TamperError(
                "billboard hash chain mismatch: a stored post was mutated "
                "outside the append API"
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def __getitem__(self, seq: int) -> Post:
        return self._posts[seq]

    @property
    def last_round(self) -> int:
        """Round stamp of the newest post (``-1`` for an empty board)."""
        return self._last_round

    def posts(
        self,
        kind: Optional[PostKind] = None,
        player: Optional[int] = None,
        before_round: Optional[int] = None,
    ) -> List[Post]:
        """The log in append order, optionally filtered in a single pass.

        ``before_round`` keeps only posts stamped strictly earlier — the
        honest player's view at the start of that round. Rounds are
        non-decreasing, so the scan stops at the horizon instead of
        walking the whole log.

        With no filter the internal list is returned directly (posts are
        immutable and the log is append-only); treat it as read-only.
        """
        if kind is None and player is None and before_round is None:
            return self._posts
        source: Iterable[Post] = self._posts
        if before_round is not None:
            source = takewhile(lambda p: p.round_no < before_round, source)
        return [
            p
            for p in source
            if (kind is None or p.kind is kind)
            and (player is None or p.player == player)
        ]

    def vote_posts(self, before_round: Optional[int] = None) -> List[Post]:
        """All vote posts (effective or not) in append order."""
        return self.posts(kind=PostKind.VOTE, before_round=before_round)

    # Ledger pass-throughs (the queries DISTILL actually uses) ----------
    def current_vote_array(self, before_round: Optional[int] = None) -> np.ndarray:
        """See :meth:`VoteLedger.current_vote_array`."""
        return self.ledger.current_vote_array(before_round)

    def objects_with_votes(self, before_round: Optional[int] = None) -> np.ndarray:
        """See :meth:`VoteLedger.objects_with_votes`."""
        return self.ledger.objects_with_votes(before_round)

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        """See :meth:`VoteLedger.counts_in_window`."""
        return self.ledger.counts_in_window(start_round, end_round)
