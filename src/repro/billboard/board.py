"""The append-only billboard.

Section 2.1 of the paper makes two assumptions about the billboard, both
enforced here:

1. every message is reliably tagged with the posting player's identity and a
   timestamp — the board stamps posts itself, so a poster cannot forge
   either; and
2. the board is append-only — no message is ever erased, and any attempt to
   rewrite history raises :class:`~repro.errors.TamperError`.

The board additionally maintains a **hash chain** over its posts (each
post's digest covers the previous digest), the standard systems
realization of those assumptions: :meth:`Billboard.verify_integrity`
re-derives the chain and fails loudly if any stored post was mutated
behind the API's back — e.g. by test code or a buggy strategy poking at
internals. The model's adversary never gets this power; the chain is a
guard-rail for the *implementation*.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Optional

import numpy as np

from repro.billboard.post import Post, PostKind
from repro.billboard.votes import VoteLedger, VoteMode
from repro.errors import InvalidPostError, TamperError

#: digest of the empty board (the chain's genesis value)
GENESIS_DIGEST = hashlib.sha256(b"repro-billboard-genesis").hexdigest()


def _chain_digest(previous: str, post: Post) -> str:
    """Digest of one post, chained onto the previous digest."""
    payload = (
        f"{previous}|{post.seq}|{post.round_no}|{post.player}|"
        f"{post.object_id}|{post.reported_value!r}|{post.kind.value}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class Billboard:
    """Append-only post log plus its vote ledger.

    The board validates identities and timestamps; vote *semantics* (which
    votes count) live in the attached :class:`VoteLedger` because they are a
    reader-side convention, not a property of the medium.

    Parameters
    ----------
    n_players, n_objects:
        World dimensions used for identity/object validation.
    vote_mode:
        Reader-side vote rule (see :class:`VoteMode`).
    max_votes_per_player:
        The ``f`` of Section 4.1 (MULTI mode only).
    """

    def __init__(
        self,
        n_players: int,
        n_objects: int,
        vote_mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
    ) -> None:
        self.n_players = n_players
        self.n_objects = n_objects
        self._posts: List[Post] = []
        self._last_round = -1
        self._head_digest = GENESIS_DIGEST
        self.ledger = VoteLedger(
            n_players,
            n_objects,
            mode=vote_mode,
            max_votes_per_player=max_votes_per_player,
        )

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self,
        round_no: int,
        player: int,
        object_id: int,
        reported_value: float,
        kind: PostKind,
    ) -> Post:
        """Stamp, validate, and append a post; returns the stored record.

        Raises
        ------
        InvalidPostError
            If the player or object id is out of range, or the round is
            negative.
        TamperError
            If the round number is earlier than an already-appended post
            (which would amount to rewriting history).
        """
        if not 0 <= player < self.n_players:
            raise InvalidPostError(
                f"unknown player identity {player} (n={self.n_players})"
            )
        if not 0 <= object_id < self.n_objects:
            raise InvalidPostError(
                f"unknown object {object_id} (m={self.n_objects})"
            )
        if round_no < 0:
            raise InvalidPostError(f"negative round {round_no}")
        if round_no < self._last_round:
            raise TamperError(
                f"post stamped round {round_no} after round {self._last_round} "
                "was already on the board (append-only violation)"
            )
        post = Post(
            seq=len(self._posts),
            round_no=round_no,
            player=player,
            object_id=object_id,
            reported_value=float(reported_value),
            kind=kind,
        )
        self._posts.append(post)
        self._last_round = round_no
        self._head_digest = _chain_digest(self._head_digest, post)
        if post.is_vote:
            self.ledger.record(post)
        return post

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    @property
    def head_digest(self) -> str:
        """Digest of the whole log (changes with every append)."""
        return self._head_digest

    def verify_integrity(self) -> None:
        """Re-derive the hash chain; raise :class:`TamperError` on any
        discrepancy between the stored posts and the running digest."""
        digest = GENESIS_DIGEST
        last_round = -1
        for index, post in enumerate(self._posts):
            if post.seq != index:
                raise TamperError(
                    f"post at position {index} carries seq {post.seq}"
                )
            if post.round_no < last_round:
                raise TamperError(
                    f"post {index} is stamped round {post.round_no} after "
                    f"round {last_round}"
                )
            last_round = post.round_no
            digest = _chain_digest(digest, post)
        if digest != self._head_digest:
            raise TamperError(
                "billboard hash chain mismatch: a stored post was mutated "
                "outside the append API"
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def __getitem__(self, seq: int) -> Post:
        return self._posts[seq]

    @property
    def last_round(self) -> int:
        """Round stamp of the newest post (``-1`` for an empty board)."""
        return self._last_round

    def posts(
        self,
        kind: Optional[PostKind] = None,
        player: Optional[int] = None,
        before_round: Optional[int] = None,
    ) -> List[Post]:
        """Filtered copy of the log, preserving order.

        ``before_round`` keeps only posts stamped strictly earlier — the
        honest player's view at the start of that round.
        """
        selected = self._posts
        if before_round is not None:
            selected = [p for p in selected if p.round_no < before_round]
        if kind is not None:
            selected = [p for p in selected if p.kind is kind]
        if player is not None:
            selected = [p for p in selected if p.player == player]
        return list(selected)

    def vote_posts(self, before_round: Optional[int] = None) -> List[Post]:
        """All vote posts (effective or not) in append order."""
        return self.posts(kind=PostKind.VOTE, before_round=before_round)

    # Ledger pass-throughs (the queries DISTILL actually uses) ----------
    def current_vote_array(self, before_round: Optional[int] = None) -> np.ndarray:
        """See :meth:`VoteLedger.current_vote_array`."""
        return self.ledger.current_vote_array(before_round)

    def objects_with_votes(self, before_round: Optional[int] = None) -> np.ndarray:
        """See :meth:`VoteLedger.objects_with_votes`."""
        return self.ledger.objects_with_votes(before_round)

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        """See :meth:`VoteLedger.counts_in_window`."""
        return self.ledger.counts_in_window(start_round, end_round)
