"""Sparse columnar billboard substrate for population-scale worlds.

The dense substrate (:class:`~repro.billboard.votes.VoteLedger` inside
:class:`~repro.billboard.board.Billboard`) allocates O(n) per-player
state up front — an ``n``-list vote table, ``(n,)`` current-vote and
vote-count arrays — and the scalar board materializes a :class:`Post`
object plus a hash-chain field snapshot per post. None of that matters
at the paper's original n ≤ 4096; at n = 10^5–10^6 it dominates RSS,
because in any one round only the *active* players post.

This module stores everything proportionally to what actually happened:

* :class:`SparseVoteLedger` — the same reader-side vote rules as
  :class:`VoteLedger` (all three :class:`VoteMode` values), with the
  effective-vote log **sharded by object id**. Each shard holds
  ``(seq, round, player, object)`` quadruples in growable
  :class:`~repro.billboard.votes._IntColumn` storage plus a compact
  per-shard first-vote/latest-vote index; per-player state lives in
  dicts keyed only by players who voted. Dense ``(n,)``/``(m,)`` query
  *results* are materialized on demand (and memoized per horizon,
  exactly like the dense ledger), so every query returns arrays
  bit-identical to the dense ledger's.
* :class:`SparseBoard` — a scalar columnar board (the single-lane
  analogue of :class:`~repro.billboard.lanes.LaneBoard`) carrying a
  :class:`SparseVoteLedger`. It implements the full Billboard API the
  engine and :class:`~repro.billboard.views.BillboardView` use, with
  the same validation error messages; like the lane boards it does not
  carry the tamper-evidence hash chain — the sparse path's integrity
  guarantee is the sparse≡dense golden equivalence suite
  (``tests/billboard/test_sparse_equivalence.py``), and audit runs
  (structured tracing) stay on the chained dense board (see
  :func:`substrate_fallback_reason`).

The ``substrate`` knob (``auto``/``dense``/``sparse``) selects between
the two; ``auto`` picks sparse at or above
:data:`SPARSE_AUTO_THRESHOLD` players. Selection is **bit-inert**: for
the same seed both substrates produce identical
:class:`~repro.sim.metrics.RunMetrics`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.billboard.post import Post, PostKind
from repro.billboard.votes import VoteMode, _IntColumn
from repro.errors import ConfigurationError, InvalidPostError, TamperError

#: ``substrate="auto"`` picks the sparse substrate at or above this many
#: players. Below it the dense substrate's flat arrays are both smaller
#: and faster; above it the O(n) per-player state dominates RSS.
SPARSE_AUTO_THRESHOLD = 32_768

#: valid values of the ``substrate`` knob, in documentation order
SUBSTRATE_CHOICES: Tuple[str, ...] = ("auto", "dense", "sparse")

#: default shard count for :class:`SparseVoteLedger` (clamped to m)
DEFAULT_SHARDS = 64

_KIND_REPORT = 0
_KIND_VOTE = 1


def normalize_substrate(substrate: Optional[str]) -> str:
    """Validate a ``substrate`` knob value; ``None`` means ``auto``."""
    if substrate is None:
        return "auto"
    name = str(substrate).strip().lower()
    if name not in SUBSTRATE_CHOICES:
        raise ConfigurationError(
            f"substrate must be one of {', '.join(SUBSTRATE_CHOICES)}; "
            f"got {substrate!r}"
        )
    return name


def choose_substrate(substrate: Optional[str], n_players: int) -> str:
    """Resolve the knob to a concrete substrate (``dense``/``sparse``).

    ``auto`` (and ``None``) picks ``sparse`` at or above
    :data:`SPARSE_AUTO_THRESHOLD` players, ``dense`` below it. The
    choice never affects results — only memory and speed.
    """
    name = normalize_substrate(substrate)
    if name != "auto":
        return name
    return "sparse" if n_players >= SPARSE_AUTO_THRESHOLD else "dense"


def substrate_fallback_reason(config: Optional[object]) -> Optional[str]:
    """Why a run cannot use the sparse substrate (or ``None``).

    Structured tracing is the auditing path: trace runs keep the
    chained, tamper-evident dense :class:`Billboard` as their
    reference substrate. Engines consult this before honoring a
    ``sparse``/``auto`` request and degrade to dense (identical
    results) with a ``substrate.fallback`` counter when it returns a
    reason.
    """
    if config is not None and bool(getattr(config, "trace", False)):
        return "structured traces audit the chained dense board"
    return None


class _LedgerShard:
    """One object-id shard of a :class:`SparseVoteLedger`.

    Holds the shard's effective votes as parallel ``(seq, round,
    player, object)`` columns — ``seq`` is the ledger-global effective
    vote index, which is what lets cross-shard queries reconstruct the
    exact global append order — plus a compact first-vote/latest-vote
    index per object (``obj -> first round`` and ``obj -> latest
    seq``).
    """

    __slots__ = ("seqs", "rounds", "players", "objects",
                 "first_vote", "latest_vote")

    def __init__(self) -> None:
        self.seqs = _IntColumn(16)
        self.rounds = _IntColumn(16)
        self.players = _IntColumn(16)
        self.objects = _IntColumn(16)
        #: object id -> round of its first effective vote
        self.first_vote: Dict[int, int] = {}
        #: object id -> global seq of its latest effective vote
        self.latest_vote: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.seqs)

    def cut(self, before_round: Optional[int]) -> int:
        """Index of the first vote at or past ``before_round`` (shard
        rounds are non-decreasing, so binary search is exact)."""
        if before_round is None:
            return len(self.seqs)
        return int(
            np.searchsorted(self.rounds.view(), before_round, side="left")
        )

    def window(self, start_round: int, end_round: int) -> Tuple[int, int]:
        """Half-open index range of votes in rounds ``[start, end)``."""
        rounds = self.rounds.view()
        lo = int(np.searchsorted(rounds, start_round, side="left"))
        hi = int(np.searchsorted(rounds, end_round, side="left"))
        return lo, hi


class SparseVoteLedger:
    """Sharded, sparse drop-in for :class:`~repro.billboard.votes.VoteLedger`.

    Same constructor, same recording methods, same queries, same
    per-horizon memo semantics — and bit-identical query results for
    all three vote modes (pinned by the sparse≡dense parity suite).
    The difference is purely representational: per-player state lives
    in dicts holding only players that cast effective votes, and the
    effective-vote log is sharded by object id, so resident memory
    scales with votes cast rather than with ``n``.
    """

    def __init__(
        self,
        n_players: int,
        n_objects: int,
        mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
        n_shards: int = DEFAULT_SHARDS,
    ) -> None:
        if n_players <= 0 or n_objects <= 0:
            raise ConfigurationError(
                "ledger needs positive player and object counts, got "
                f"n_players={n_players}, n_objects={n_objects}"
            )
        if mode is VoteMode.SINGLE:
            max_votes_per_player = 1
        if max_votes_per_player < 1:
            raise ConfigurationError(
                f"max_votes_per_player must be >= 1, got {max_votes_per_player}"
            )
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        self.n_players = n_players
        self.n_objects = n_objects
        self.mode = mode
        self.max_votes_per_player = max_votes_per_player
        self.n_shards = min(int(n_shards), n_objects)
        self._shards = [_LedgerShard() for _ in range(self.n_shards)]

        # Per-player state, sparse: only players with >= 1 effective
        # vote appear. (The dense ledger's n-list table and (n,) arrays
        # are exactly what RPL010 bans from this module.)
        self._targets: Dict[int, List[int]] = {}
        self._current: Dict[int, int] = {}
        self._counts: Dict[int, int] = {}

        #: total effective votes recorded (the next global seq)
        self._n_votes = 0

        # Round run-length index: _round_vals is the strictly increasing
        # list of rounds carrying >= 1 effective vote; _round_cums[i] is
        # the number of effective votes in rounds <= _round_vals[i].
        # Together they answer _count_before in O(log #rounds) without a
        # per-vote global column.
        self._round_vals: List[int] = []
        self._round_cums: List[int] = []

        # Per-horizon query memo with high-water eviction — the same
        # policy as the dense ledger (see VoteLedger._note_horizon).
        self._memo: Dict[tuple, np.ndarray] = {}
        self._memo_horizon = -1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, post: Post) -> bool:
        """Observe a vote post; return whether it was *effective*."""
        return self._record_one(post.round_no, post.player, post.object_id)

    def _record_one(self, round_no: int, player: int, obj: int) -> bool:
        player = int(player)
        obj = int(obj)
        targets = self._targets.get(player)
        if self.mode is VoteMode.MUTABLE:
            if targets and targets[-1] == obj:
                return False
            if targets is None:
                self._targets[player] = [obj]
            else:
                targets.append(obj)
        else:
            if targets is not None:
                if len(targets) >= self.max_votes_per_player:
                    return False  # excess votes are ignored by readers
                if obj in targets:
                    return False  # duplicate vote for the same object
                targets.append(obj)
            else:
                self._targets[player] = [obj]
        self._append_effective(round_no, player, obj)
        return True

    def _append_effective(self, round_no: int, player: int, obj: int) -> None:
        seq = self._n_votes
        shard = self._shards[obj % self.n_shards]
        shard.seqs.append(seq)
        shard.rounds.append(round_no)
        shard.players.append(player)
        shard.objects.append(obj)
        shard.first_vote.setdefault(obj, round_no)
        shard.latest_vote[obj] = seq
        self._current[player] = obj
        self._counts[player] = self._counts.get(player, 0) + 1
        self._n_votes = seq + 1
        if self._round_vals and self._round_vals[-1] == round_no:
            self._round_cums[-1] = self._n_votes
        else:
            self._round_vals.append(round_no)
            self._round_cums.append(self._n_votes)
        self._memo.clear()

    def record_block(
        self, round_no: int, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        """Observe a same-round block of vote posts, in order.

        Same contract as :meth:`VoteLedger.record_block` — an empty
        block is an explicit no-op, and the ``SINGLE``-mode fast path
        resolves the whole block vectorized.
        """
        players = np.asarray(players, dtype=np.int64)
        objects = np.asarray(objects, dtype=np.int64)
        if players.shape != objects.shape:
            raise ConfigurationError(
                "record_block needs parallel player/object arrays, got "
                f"shapes {players.shape} and {objects.shape}"
            )
        if players.size == 0:
            return np.zeros(0, dtype=bool)
        if self.mode is not VoteMode.SINGLE or players.size < 2:
            return np.array(
                [
                    self._record_one(round_no, int(p), int(o))
                    for p, o in zip(players, objects)
                ],
                dtype=bool,
            )
        # SINGLE: effective iff the player has no prior vote and this is
        # the player's first vote within the block (the dense ledger's
        # rule, with the dict standing in for the (n,) current array).
        current = self._current
        no_prior = np.fromiter(
            (int(p) not in current for p in players),
            dtype=bool,
            count=players.size,
        )
        first_in_block = np.zeros(players.size, dtype=bool)
        _uniq, first = np.unique(players, return_index=True)
        first_in_block[first] = True
        effective = no_prior & first_in_block
        if effective.any():
            eff_players = players[effective]
            eff_objects = objects[effective]
            base = self._n_votes
            seqs = np.arange(base, base + eff_players.size, dtype=np.int64)
            shard_ids = eff_objects % self.n_shards
            for s in np.unique(shard_ids):
                mask = shard_ids == s
                shard = self._shards[int(s)]
                shard.seqs.extend(seqs[mask])
                shard.rounds.extend(
                    np.full(int(mask.sum()), round_no, np.int64)
                )
                shard.players.extend(eff_players[mask])
                shard.objects.extend(eff_objects[mask])
            for p, o, q in zip(eff_players, eff_objects, seqs):
                player, obj, seq = int(p), int(o), int(q)
                self._targets[player] = [obj]
                current[player] = obj
                self._counts[player] = self._counts.get(player, 0) + 1
                shard = self._shards[obj % self.n_shards]
                shard.first_vote.setdefault(obj, round_no)
                shard.latest_vote[obj] = seq
            self._n_votes = base + eff_players.size
            if self._round_vals and self._round_vals[-1] == round_no:
                self._round_cums[-1] = self._n_votes
            else:
                self._round_vals.append(round_no)
                self._round_cums.append(self._n_votes)
            self._memo.clear()
        return effective

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def effective_vote_count(self) -> int:
        """Total number of effective votes recorded so far."""
        return self._n_votes

    def votes_of(self, player: int) -> Tuple[int, ...]:
        """All effective vote targets of ``player``, in posting order."""
        return tuple(self._targets.get(int(player), ()))

    def _gather(
        self, before_round: Optional[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(players, objects) of effective votes before the horizon, in
        global append order (reconstructed by merging shards on seq)."""
        seq_parts: List[np.ndarray] = []
        player_parts: List[np.ndarray] = []
        object_parts: List[np.ndarray] = []
        for shard in self._shards:
            hi = shard.cut(before_round)
            if hi:
                seq_parts.append(shard.seqs.view()[:hi])
                player_parts.append(shard.players.view()[:hi])
                object_parts.append(shard.objects.view()[:hi])
        if not seq_parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        seqs = np.concatenate(seq_parts)
        order = np.argsort(seqs, kind="stable")
        return (
            np.concatenate(player_parts)[order],
            np.concatenate(object_parts)[order],
        )

    def current_vote_array(self, before_round: Optional[int] = None) -> np.ndarray:
        """Each player's current advice target (``-1`` when none).

        Semantics are :meth:`VoteLedger.current_vote_array`'s, array for
        array. The dense ``(n,)`` result is materialized on demand from
        the sparse state (and memoized per horizon); it is a transient
        query result, not resident ledger state.
        """
        key = ("current", before_round)
        cached = self._memo.get(key)
        if cached is not None:
            return cached.copy()
        if before_round is not None:
            self._note_horizon(before_round)
        # A dense (n,) *query result* materialized on demand and memoized
        # per horizon — transient, not resident per-player ledger state.
        result = np.full(self.n_players, -1, dtype=np.int64)  # repro: noqa=RPL010(on-demand query result)
        if before_round is None:
            if self.mode is VoteMode.MULTI:
                for player, targets in self._targets.items():
                    result[player] = targets[0]
            elif self._current:
                result[
                    np.fromiter(
                        self._current.keys(),
                        dtype=np.int64,
                        count=len(self._current),
                    )
                ] = np.fromiter(
                    self._current.values(),
                    dtype=np.int64,
                    count=len(self._current),
                )
        else:
            players, objects = self._gather(before_round)
            if players.size:
                if self.mode is VoteMode.MULTI:
                    uniq, first = np.unique(players, return_index=True)
                    result[uniq] = objects[first]
                else:
                    # latest vote before the cutoff wins (MUTABLE); in
                    # SINGLE mode there is at most one vote per player
                    uniq, first = np.unique(players[::-1], return_index=True)
                    result[uniq] = objects[::-1][first]
        self._memo[key] = result
        return result.copy()

    def objects_with_votes(self, before_round: Optional[int] = None) -> np.ndarray:
        """Sorted ids of objects having at least one effective vote."""
        key = ("objects", before_round)
        cached = self._memo.get(key)
        if cached is not None:
            return cached.copy()
        if before_round is not None:
            self._note_horizon(before_round)
        if before_round is None:
            # served straight from the per-shard first-vote indexes
            parts = [
                np.fromiter(
                    shard.first_vote.keys(),
                    dtype=np.int64,
                    count=len(shard.first_vote),
                )
                for shard in self._shards
                if shard.first_vote
            ]
        else:
            parts = []
            for shard in self._shards:
                hi = shard.cut(before_round)
                if hi:
                    parts.append(shard.objects.view()[:hi])
        if parts:
            result = np.unique(np.concatenate(parts))
        else:
            result = np.zeros(0, dtype=np.int64)
        self._memo[key] = result
        return result.copy()

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        """Effective votes per object posted in rounds ``[start, end)``.

        Bit-identical to :meth:`VoteLedger.counts_in_window`, including
        the ``MUTABLE`` rule that a player switching several times in
        the window contributes only its final switch (which needs the
        global order, reconstructed from the per-shard seq columns).
        """
        if end_round < start_round:
            raise ConfigurationError(
                f"empty-negative window [{start_round}, {end_round})"
            )
        key = ("window", start_round, end_round)
        cached = self._memo.get(key)
        if cached is not None:
            return cached.copy()
        self._note_horizon(end_round)
        if self.mode is VoteMode.MUTABLE:
            seq_parts: List[np.ndarray] = []
            player_parts: List[np.ndarray] = []
            object_parts: List[np.ndarray] = []
            for shard in self._shards:
                lo, hi = shard.window(start_round, end_round)
                if hi > lo:
                    seq_parts.append(shard.seqs.view()[lo:hi])
                    player_parts.append(shard.players.view()[lo:hi])
                    object_parts.append(shard.objects.view()[lo:hi])
            if seq_parts:
                order = np.argsort(np.concatenate(seq_parts), kind="stable")
                players = np.concatenate(player_parts)[order][::-1]
                objects = np.concatenate(object_parts)[order]
                _uniq, first = np.unique(players, return_index=True)
                objects = objects[::-1][first]
            else:
                objects = np.zeros(0, dtype=np.int64)
        else:
            parts: List[np.ndarray] = []
            for shard in self._shards:
                lo, hi = shard.window(start_round, end_round)
                if hi > lo:
                    parts.append(shard.objects.view()[lo:hi])
            objects = (
                np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
            )
        if objects.size:
            counts = np.bincount(
                objects, minlength=self.n_objects
            ).astype(np.int64, copy=False)
        else:
            counts = np.zeros(self.n_objects, dtype=np.int64)
        self._memo[key] = counts
        return counts.copy()

    def votes_cast_by(self, players: np.ndarray) -> int:
        """Total effective votes cast by the given player ids."""
        ids = np.asarray(players, dtype=np.int64)
        counts = self._counts
        return sum(counts.get(int(p), 0) for p in ids)

    def shard_sizes(self) -> List[int]:
        """Effective votes per shard (observability/bench reporting)."""
        return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _note_horizon(self, horizon: int) -> None:
        """High-water memo eviction — :meth:`VoteLedger._note_horizon`."""
        if horizon <= self._memo_horizon:
            return
        self._memo_horizon = horizon
        stale = [
            key
            for key in self._memo
            if (h := key[-1]) is not None and h < horizon
        ]
        for key in stale:
            del self._memo[key]

    def _count_before(self, before_round: int) -> int:
        """Number of effective votes posted strictly before the round."""
        idx = bisect_left(self._round_vals, before_round)
        return self._round_cums[idx - 1] if idx else 0


class SparseBoard:
    """Scalar columnar billboard over a :class:`SparseVoteLedger`.

    The single-lane sparse analogue of
    :class:`~repro.billboard.lanes.LaneBoard`: the post log is stored
    as growable columns (round, player, object, value, kind) with
    :class:`Post` objects materialized only on demand, and validation
    raises the exact errors :class:`Billboard` raises. Like the lane
    boards it carries no hash chain; audit (trace) runs stay on the
    dense board via :func:`substrate_fallback_reason`.
    """

    __slots__ = (
        "n_players",
        "n_objects",
        "ledger",
        "_rounds",
        "_players",
        "_objects",
        "_values",
        "_kinds",
        "_last_round",
    )

    def __init__(
        self,
        n_players: int,
        n_objects: int,
        vote_mode: VoteMode = VoteMode.SINGLE,
        max_votes_per_player: int = 1,
    ) -> None:
        self.n_players = n_players
        self.n_objects = n_objects
        self.ledger = SparseVoteLedger(
            n_players,
            n_objects,
            mode=vote_mode,
            max_votes_per_player=max_votes_per_player,
        )
        # Narrow columnar log: ids fit int32 comfortably (the knob only
        # matters below ~2^31 players), kinds are a bit, values are the
        # float64 the dense Post carries. ~17 bytes/post vs the dense
        # board's per-Post objects.
        self._rounds = _IntColumn(dtype=np.int32)
        self._players = _IntColumn(dtype=np.int32)
        self._objects = _IntColumn(dtype=np.int32)
        self._values = _IntColumn(dtype=np.float64)
        self._kinds = _IntColumn(dtype=np.int8)
        self._last_round = -1

    # ------------------------------------------------------------------
    # Appending (the Billboard write API)
    # ------------------------------------------------------------------
    def append(
        self,
        round_no: int,
        player: int,
        object_id: int,
        reported_value: float,
        kind: PostKind,
    ) -> Post:
        """Stamp, validate, and append one post; returns the record."""
        posts = self.append_many(
            round_no, [(player, object_id, reported_value, kind)]
        )
        return posts[0]

    def append_many(
        self,
        round_no: int,
        entries: Sequence[Tuple[int, int, float, PostKind]],
    ) -> List[Post]:
        """Stamp, validate, and append a batch of posts for one round.

        Same all-or-nothing contract, validation errors, and empty-batch
        no-op as :meth:`Billboard.append_many`; the returned ``Post``
        records are materialized for the caller but not retained (the
        board keeps columns only).
        """
        if not entries:
            return []
        for player, object_id, _value, _kind in entries:
            self._validate_entry(round_no, int(player), int(object_id))
        base = len(self._rounds)
        count = len(entries)
        players = np.fromiter(
            (int(e[0]) for e in entries), np.int64, count=count
        )
        objects = np.fromiter(
            (int(e[1]) for e in entries), np.int64, count=count
        )
        values = np.fromiter(
            (float(e[2]) for e in entries), np.float64, count=count
        )
        votes = np.fromiter(
            (e[3] is PostKind.VOTE for e in entries), bool, count=count
        )
        self._rounds.extend(np.full(count, round_no, np.int32))
        self._players.extend(players.astype(np.int32, copy=False))
        self._objects.extend(objects.astype(np.int32, copy=False))
        self._values.extend(values)
        self._kinds.extend(votes.astype(np.int8, copy=False))
        self._last_round = round_no
        if votes.any():
            # One vectorized ledger pass per batch; sequential-record
            # equivalence is pinned by the ledger parity suite.
            self.ledger.record_block(
                round_no, players[votes], objects[votes]
            )
        return [
            Post(
                seq=base + offset,
                round_no=round_no,
                player=int(players[offset]),
                object_id=int(objects[offset]),
                reported_value=float(values[offset]),
                kind=PostKind.VOTE if votes[offset] else PostKind.REPORT,
            )
            for offset in range(count)
        ]

    def _validate_entry(self, round_no: int, player: int, object_id: int) -> None:
        if not 0 <= player < self.n_players:
            raise InvalidPostError(
                f"unknown player identity {player} (n={self.n_players})"
            )
        if not 0 <= object_id < self.n_objects:
            raise InvalidPostError(
                f"unknown object {object_id} (m={self.n_objects})"
            )
        if round_no < 0:
            raise InvalidPostError(f"negative round {round_no}")
        if round_no < self._last_round:
            raise TamperError(
                f"post stamped round {round_no} after round {self._last_round} "
                "was already on the board (append-only violation)"
            )

    # ------------------------------------------------------------------
    # Reading (the Billboard API BillboardView forwards to)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rounds)

    def __getitem__(self, seq: int) -> Post:
        if not 0 <= seq < len(self._rounds):
            raise IndexError(seq)
        return self._materialize(seq)

    def _materialize(self, seq: int) -> Post:
        return Post(
            seq=seq,
            round_no=int(self._rounds.view()[seq]),
            player=int(self._players.view()[seq]),
            object_id=int(self._objects.view()[seq]),
            reported_value=float(self._values.view()[seq]),
            kind=(
                PostKind.VOTE
                if self._kinds.view()[seq] == _KIND_VOTE
                else PostKind.REPORT
            ),
        )

    @property
    def last_round(self) -> int:
        """Round stamp of the newest post (``-1`` for an empty board)."""
        return self._last_round

    def posts(
        self,
        kind: Optional[PostKind] = None,
        player: Optional[int] = None,
        before_round: Optional[int] = None,
    ) -> List[Post]:
        """The log in append order, materialized to ``Post`` on demand."""
        rounds = self._rounds.view()
        cutoff = rounds.size
        if before_round is not None:
            cutoff = int(np.searchsorted(rounds, before_round, side="left"))
        keep = np.ones(cutoff, dtype=bool)
        if kind is not None:
            want = _KIND_VOTE if kind is PostKind.VOTE else _KIND_REPORT
            keep &= self._kinds.view()[:cutoff] == want
        if player is not None:
            keep &= self._players.view()[:cutoff] == player
        return [self._materialize(int(s)) for s in np.flatnonzero(keep)]

    def vote_posts(self, before_round: Optional[int] = None) -> List[Post]:
        """All vote posts (effective or not) in append order."""
        return self.posts(kind=PostKind.VOTE, before_round=before_round)

    # Ledger pass-throughs ---------------------------------------------
    def current_vote_array(self, before_round: Optional[int] = None) -> np.ndarray:
        """See :meth:`SparseVoteLedger.current_vote_array`."""
        return self.ledger.current_vote_array(before_round)

    def objects_with_votes(self, before_round: Optional[int] = None) -> np.ndarray:
        """See :meth:`SparseVoteLedger.objects_with_votes`."""
        return self.ledger.objects_with_votes(before_round)

    def counts_in_window(self, start_round: int, end_round: int) -> np.ndarray:
        """See :meth:`SparseVoteLedger.counts_in_window`."""
        return self.ledger.counts_in_window(start_round, end_round)
