"""Counters, timers, and the process-wide active registry.

A :class:`Registry` is a named bag of :class:`Counter` and
:class:`Timer` handles. The design constraints, in order:

* **bit-inertness** — metrics never touch a random stream, so enabling
  them cannot change any seeded result;
* **near-zero disabled cost** — the engines carry an
  ``Optional[Registry]`` that defaults to ``None``; the only cost of
  the disabled path is a ``None`` check per instrumentation site
  (verified ≤2% on the E3 cell by ``benchmarks/bench_obs_overhead.py``);
* **clock discipline** — the *only* clock read lives here
  (:meth:`Timer.time`, ``time.perf_counter``), outside the
  determinism-critical packages, so reprolint's RPL005 wall-clock rule
  keeps holding for every engine module. Engine code increments
  counters; only the runner layer opens timers.

Registries compose across processes: a forked pool worker accumulates
into a fresh registry and ships a :meth:`Registry.snapshot` back through
the pickle channel; the parent :meth:`Registry.merge`\\ s it, so counter
totals are identical for any ``n_jobs``. (Timer *totals* are summed
across workers, so on a pool they read as CPU-seconds, not wall-clock.)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple


class Counter:
    """A named monotonically-increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Add ``amount`` (an integer; negative deltas are a bug)."""
        self.value += int(amount)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Timer:
    """A named accumulator of monotonic-clock intervals.

    ``count`` is how many intervals were recorded; ``total_seconds`` is
    their sum. The clock is ``time.perf_counter`` — monotonic, so timer
    readings are durations only and never encode wall-clock provenance.
    """

    __slots__ = ("name", "count", "total_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording one interval around its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - start)

    def add(self, seconds: float, count: int = 1) -> None:
        """Record ``count`` intervals totalling ``seconds`` (merge hook)."""
        self.count += int(count)
        self.total_seconds += float(seconds)

    @property
    def mean_seconds(self) -> float:
        """Average interval length (0.0 before the first interval)."""
        return self.total_seconds / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Timer({self.name!r}, count={self.count}, "
            f"total_seconds={self.total_seconds:.6f})"
        )


class Registry:
    """A bag of named counters and timers for one observed run.

    Handles are memoized: ``registry.counter("engine.rounds")`` returns
    the same :class:`Counter` every call, so hot loops can prefetch a
    handle once and pay only an attribute increment per event. Names are
    dotted; the segment before the first dot is the *phase* the
    ``repro obs summary`` breakdown groups by (``engine.probes`` →
    phase ``engine``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        #: the most recent :class:`~repro.obs.manifest.RunManifest` a
        #: run attached while this registry was active (set by
        #: :func:`repro.sim.runner.run_trials`; ``None`` until then)
        self.manifest: Optional[Any] = None

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name)
        return handle

    def timer(self, name: str) -> Timer:
        """The timer called ``name``, created on first use."""
        handle = self._timers.get(name)
        if handle is None:
            handle = self._timers[name] = Timer(name)
        return handle

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """All counter values, sorted by name."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    def timers(self) -> Dict[str, Tuple[int, float]]:
        """All timers as ``name -> (count, total_seconds)``, sorted."""
        return {
            name: (self._timers[name].count, self._timers[name].total_seconds)
            for name in sorted(self._timers)
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of every metric (pickles across the pool)."""
        return {"counters": self.counters(), "timers": self.timers()}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry, summing counters and timer accumulators."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, (count, total) in snapshot.get("timers", {}).items():
            self.timer(name).add(total, count=count)

    def __repr__(self) -> str:
        return (
            f"Registry({len(self._counters)} counters, "
            f"{len(self._timers)} timers)"
        )


# ----------------------------------------------------------------------
# The process-wide active registry (the CLI's --obs-out plumbing).
# Mirrors repro.experiments.config.set_default_n_jobs: observability is
# orthogonal to results, so a process-wide default beats threading a
# registry through every experiment definition.
_ACTIVE: Optional[Registry] = None


def active_registry() -> Optional[Registry]:
    """The process-wide registry runs fall back to (``None`` = off)."""
    return _ACTIVE


def set_active_registry(registry: Optional[Registry]) -> Optional[Registry]:
    """Install ``registry`` as the process-wide default; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def observe(registry: Optional[Registry] = None) -> Iterator[Registry]:
    """Activate a registry for the block (creating one if not given).

    >>> with observe() as reg:
    ...     run_trials(...)          # doctest: +SKIP
    >>> reg.counters()               # doctest: +SKIP
    """
    registry = registry if registry is not None else Registry()
    previous = set_active_registry(registry)
    try:
        yield registry
    finally:
        set_active_registry(previous)
