"""repro.obs — run-provenance and lightweight metrics.

Every artifact this repository publishes — a ``TrialResults``, a
``BENCH_*.json`` trajectory, an experiment table — is a claim about what
some code computed on some machine from some seed. This package is the
layer that makes those claims auditable without re-running anything:

* :class:`~repro.obs.manifest.RunManifest` — a frozen provenance record
  (config hash, seed fingerprint, package/numpy versions, host info,
  fault-plan digest, git revision when available) attached to every
  :class:`~repro.sim.runner.TrialResults` and embedded in every
  benchmark artifact;
* :class:`~repro.obs.registry.Registry` — counters and monotonic timers
  with near-zero disabled cost. Engine code increments counters only
  (never reads a clock — reprolint's RPL005 wall-clock ban stays
  intact); the runner layer owns all timers, and even there the clock
  read happens inside this package, not in ``sim/``;
* :mod:`~repro.obs.export` — one JSONL schema unifying manifests,
  counter/timer samples, and the engine's structured
  :class:`~repro.sim.trace.Trace` events, consumed by the ``repro obs``
  CLI (``summary`` / ``export`` / ``diff``).

Observability is **off by default** and bit-inert: enabling it never
touches a random stream, so every ``RunMetrics`` is identical with and
without it (enforced by ``tests/obs/test_equivalence.py``).

Quickstart
----------
>>> from repro import obs
>>> with obs.observe() as registry:
...     results = run_trials(make_instance, DistillStrategy, n_trials=8)
>>> registry.counters()["engine.rounds"] > 0
True
>>> obs.write_observations("run.jsonl", manifest=results.manifest,
...                        registry=registry)
"""

from repro.obs.export import (
    load_observations,
    observation_lines,
    render_summary,
    summarize,
    write_observations,
)
from repro.obs.manifest import (
    RunManifest,
    collect_manifest,
    config_digest,
    fault_plan_digest,
)
from repro.obs.registry import (
    Counter,
    Registry,
    Timer,
    active_registry,
    observe,
    set_active_registry,
)

__all__ = [
    "Counter",
    "Registry",
    "RunManifest",
    "Timer",
    "active_registry",
    "collect_manifest",
    "config_digest",
    "fault_plan_digest",
    "load_observations",
    "observation_lines",
    "observe",
    "render_summary",
    "set_active_registry",
    "summarize",
    "write_observations",
]
