"""One JSONL schema for everything a run can tell you about itself.

Before this module the repository had two observability dialects: the
engine's structured :class:`~repro.sim.trace.Trace` events (JSONL, one
event per line) and the ad-hoc dictionaries benches archived. This
module unifies them: an *observation file* is JSON lines where every
line carries a ``"type"`` tag —

``manifest``
    the run's :class:`~repro.obs.manifest.RunManifest`, flattened
    (always the first line when present);
``counter``
    ``{"type": "counter", "name": ..., "value": ...}``;
``timer``
    ``{"type": "timer", "name": ..., "count": ..., "total_seconds": ...}``;
``trace``
    one engine :class:`~repro.sim.trace.TraceEvent`, tagged with the
    trial it came from — the *same* payload ``Trace.to_jsonl`` emits,
    so existing trace tooling reads observation files unchanged.

Counter and timer names are dotted; the segment before the first dot is
the *phase* (``engine.probes`` → phase ``engine``) that
:func:`summarize` groups by and ``repro obs summary`` renders.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.manifest import RunManifest
from repro.obs.registry import Registry

#: a trace event paired with the trial index it was recorded in
TrialTrace = Tuple[int, Any]


def observation_lines(
    manifest: Optional[RunManifest] = None,
    registry: Optional[Registry] = None,
    traces: Optional[Sequence[TrialTrace]] = None,
) -> List[str]:
    """Render observations as JSONL lines (manifest first, then sorted
    counters, then sorted timers, then trace events in trial order)."""
    lines: List[str] = []
    if manifest is not None:
        payload = {"type": "manifest"}
        payload.update(manifest.to_dict())
        lines.append(json.dumps(payload, sort_keys=True))
    if registry is not None:
        for name, value in registry.counters().items():
            lines.append(
                json.dumps(
                    {"type": "counter", "name": name, "value": value},
                    sort_keys=True,
                )
            )
        for name, (count, total) in registry.timers().items():
            lines.append(
                json.dumps(
                    {
                        "type": "timer",
                        "name": name,
                        "count": count,
                        "total_seconds": total,
                    },
                    sort_keys=True,
                )
            )
    for trial_index, trace in traces or ():
        for event in trace:
            payload = {
                "type": "trace",
                "trial": int(trial_index),
                "seq": event.seq,
                "round": event.round_no,
                "kind": event.kind,
            }
            payload.update(event.payload)
            lines.append(json.dumps(payload, sort_keys=True))
    return lines


def write_observations(
    path: str,
    manifest: Optional[RunManifest] = None,
    registry: Optional[Registry] = None,
    traces: Optional[Sequence[TrialTrace]] = None,
) -> None:
    """Write one observation JSONL file (see the module schema)."""
    lines = observation_lines(
        manifest=manifest, registry=registry, traces=traces
    )
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + ("\n" if lines else ""))


# ----------------------------------------------------------------------
@dataclass
class Observations:
    """Parsed form of one observation file."""

    manifest: Optional[RunManifest] = None
    counters: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    traces: List[Dict[str, Any]] = field(default_factory=list)


def load_observations(path: str) -> Observations:
    """Parse an observation JSONL file, failing loudly on malformed or
    unknown record types (silent tolerance would let provenance rot)."""
    try:
        with open(path) as handle:
            raw_lines = [line for line in handle.read().splitlines() if line]
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read observation file {path}: {exc}"
        ) from None
    out = Observations()
    for line_no, line in enumerate(raw_lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path} line {line_no} is not valid JSON: {exc}"
            ) from None
        kind = record.pop("type", None)
        if kind == "manifest":
            out.manifest = RunManifest.from_dict(record)
        elif kind == "counter":
            out.counters[record["name"]] = int(record["value"])
        elif kind == "timer":
            out.timers[record["name"]] = (
                int(record["count"]),
                float(record["total_seconds"]),
            )
        elif kind == "trace":
            out.traces.append(record)
        else:
            raise ConfigurationError(
                f"{path} line {line_no} has unknown record type {kind!r}"
            )
    return out


# ----------------------------------------------------------------------
def _phase(name: str) -> str:
    return name.split(".", 1)[0]


def summarize(observations: Observations) -> Dict[str, Any]:
    """Per-phase breakdown of one observation file, JSON-safe.

    Returns ``{"manifest": ..., "phases": {phase: {"counters": {...},
    "timers": {...}}}, "trace_events": N}``; phases come from the dotted
    metric names.
    """
    phases: Dict[str, Dict[str, Any]] = {}

    def bucket(name: str) -> Dict[str, Any]:
        return phases.setdefault(
            _phase(name), {"counters": {}, "timers": {}}
        )

    for name, value in observations.counters.items():
        bucket(name)["counters"][name] = value
    for name, (count, total) in observations.timers.items():
        bucket(name)["timers"][name] = {
            "count": count,
            "total_seconds": total,
            "mean_seconds": total / count if count else 0.0,
        }
    return {
        "manifest": (
            observations.manifest.to_dict()
            if observations.manifest is not None
            else None
        ),
        "phases": {name: phases[name] for name in sorted(phases)},
        "trace_events": len(observations.traces),
    }


def render_summary(observations: Observations) -> str:
    """Human-readable per-phase timing/counter breakdown."""
    summary = summarize(observations)
    lines: List[str] = []
    manifest = observations.manifest
    if manifest is not None:
        lines.append("manifest:")
        lines.append(f"  config_hash  : {manifest.config_hash}")
        lines.append(f"  seed_entropy : {manifest.seed_entropy}")
        lines.append(f"  n_trials     : {manifest.n_trials}")
        lines.append(f"  fault_plan   : {manifest.fault_plan_digest}")
        versions = ", ".join(
            f"{k}={v}" for k, v in sorted(manifest.versions.items())
        )
        lines.append(f"  versions     : {versions}")
        lines.append(f"  git_rev      : {manifest.git_rev}")
    for phase, data in summary["phases"].items():
        lines.append(f"phase {phase}:")
        for name, value in data["counters"].items():
            lines.append(f"  {name:<34} {value:>12}")
        for name, stats in data["timers"].items():
            lines.append(
                f"  {name:<34} {stats['total_seconds']:>12.6f}s "
                f"over {stats['count']} interval(s), "
                f"mean {stats['mean_seconds'] * 1e3:.3f} ms"
            )
    if summary["trace_events"]:
        lines.append(f"trace events: {summary['trace_events']}")
    if not lines:
        lines.append("(empty observation file)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
#: manifest fields that describe *how* a run executed rather than *what*
#: it computed — the same seed on a different backend (or billboard
#: substrate, or behind a serving front-end with different admission
#: caps) produces identical results, so these never contribute to a
#: diff verdict
REPORTING_MANIFEST_FIELDS = ("executor", "substrate", "serving")

#: counter namespaces that describe the execution fabric rather than the
#: computation — how many workers ran, died, or were retried is
#: environmental (a chaos-killed socket run of a seed must diff clean
#: against its serial twin, a sparse-substrate run against its dense
#: twin, and a served board against any admission configuration that
#: admitted the same posts), so these never flip a diff verdict
REPORTING_COUNTER_PREFIXES = ("exec.", "substrate.", "serve.")


def diff_observations(a: Observations, b: Observations) -> List[str]:
    """Human-readable differences between two observation files.

    Compares manifests field by field and counters name by name (timers
    are durations — environmental, so never part of a diff verdict, and
    the reporting-only manifest fields in
    :data:`REPORTING_MANIFEST_FIELDS` plus the counter namespaces in
    :data:`REPORTING_COUNTER_PREFIXES` — e.g. which executor backend ran
    the trials and how many workers it lost — are likewise excluded; see
    :func:`informational_differences`). Returns one line per difference;
    an empty list means the two runs claim the same provenance and
    counted the same events.
    """
    out: List[str] = []
    if (a.manifest is None) != (b.manifest is None):
        out.append(
            "manifest: present in one file only "
            f"(a={'yes' if a.manifest else 'no'}, "
            f"b={'yes' if b.manifest else 'no'})"
        )
    elif a.manifest is not None and b.manifest is not None:
        left, right = a.manifest.to_dict(), b.manifest.to_dict()
        for key in sorted(set(left) | set(right)):
            if key in REPORTING_MANIFEST_FIELDS:
                continue
            if left.get(key) != right.get(key):
                out.append(
                    f"manifest.{key}: {left.get(key)!r} != {right.get(key)!r}"
                )
    for name in sorted(set(a.counters) | set(b.counters)):
        if name.startswith(REPORTING_COUNTER_PREFIXES):
            continue
        left_value = a.counters.get(name)
        right_value = b.counters.get(name)
        if left_value != right_value:
            out.append(f"counter {name}: {left_value!r} != {right_value!r}")
    return out


def informational_differences(a: Observations, b: Observations) -> List[str]:
    """Differences in the reporting-only manifest fields and counters.

    These describe the run's execution fabric (backend, worker roster,
    reassignments, worker losses) — worth surfacing when two files are
    compared, but never grounds for declaring the runs different:
    :func:`diff_observations` ignores them by design.
    """
    out: List[str] = []
    if a.manifest is not None and b.manifest is not None:
        left, right = a.manifest.to_dict(), b.manifest.to_dict()
        for key in REPORTING_MANIFEST_FIELDS:
            if left.get(key) != right.get(key):
                out.append(
                    f"manifest.{key} (reporting only): "
                    f"{left.get(key)!r} != {right.get(key)!r}"
                )
    for name in sorted(set(a.counters) | set(b.counters)):
        if not name.startswith(REPORTING_COUNTER_PREFIXES):
            continue
        left_value = a.counters.get(name)
        right_value = b.counters.get(name)
        if left_value != right_value:
            out.append(
                f"counter {name} (reporting only): "
                f"{left_value!r} != {right_value!r}"
            )
    return out
