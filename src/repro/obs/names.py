"""The declared registry of every observable metric name.

Counters and timers are created on first use (:class:`~repro.obs.registry.
Registry` memoizes handles by name), which makes a typo at a call site
silent: ``obs.counter("exec.worker_losst")`` would happily create a
parallel counter that no dashboard, no doc table, and no CI assertion
ever reads. This module is the antidote — the single place where every
metric name is declared, one name per line.

The declarations are *mechanically enforced* by reprolint's RPL013
(``counter-registry-drift``) over the whole project:

* every literal name at an ``obs.counter("…")`` / ``obs.timer("…")``
  call site must appear below;
* every dynamic (f-string) call site's static prefix must be one of
  :data:`DYNAMIC_COUNTER_PREFIXES`, and every realizable member of such
  a family must be declared;
* every declared name must be reachable from some call site (directly
  or through its family prefix) — a declaration nothing increments is
  stale;
* every declared name must appear in ``docs/observability.md``'s metric
  catalogue, and every catalogued name must be declared here.

Adding a metric therefore takes three edits — the call site, this file,
and the doc table — and forgetting any one of them fails the lint gate.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

#: every counter name incremented anywhere in the package. One name per
#: line: RPL013 anchors its findings to the declaration line.
DECLARED_COUNTERS: FrozenSet[str] = frozenset(
    {
        "async.probes",
        "async.steps",
        "async.votes",
        "batch.fallback",
        "batch.lane_rounds",
        "batch.lanes",
        "batch.probes",
        "batch.rounds",
        "batch.runs",
        "billboard.posts_adversary",
        "billboard.posts_fault_delivered",
        "billboard.posts_honest",
        "engine.halts",
        "engine.probes",
        "engine.rounds",
        "engine.votes",
        "exec.degraded",
        "exec.reassigned",
        "exec.retries",
        "exec.worker_lost",
        "exec.workers",
        "faults.crashes",
        "faults.delayed_posts",
        "faults.dropped_posts",
        "faults.restarts",
        "faults.undelivered_posts",
        "runner.chunks",
        "runner.grid_cells",
        "runner.grid_groups",
        "runner.grid_runs",
        "runner.runs",
        "runner.trials_requested",
        "runner.trials_resumed",
        "serve.connections",
        "serve.flushes",
        "serve.posts",
        "serve.queries",
        "serve.requests",
        "serve.shed",
        "serve.snapshots",
        "serve.ticks",
        "serve.votes",
        "substrate.dense",
        "substrate.fallback",
        "substrate.sparse",
        "trial.batched",
        "trial.completed",
    }
)

#: every timer name opened anywhere in the package
DECLARED_TIMERS: FrozenSet[str] = frozenset(
    {
        "runner.run_trial_grid",
        "runner.run_trials",
        "serve.request",
    }
)

#: prefixes whose member names are computed at runtime (the engines fold
#: ``f"faults.{key}"`` realization summaries and ``f"substrate.{name}"``
#: resolutions). A dynamic call site is legal iff its static prefix is
#: listed here; the members it can realize still have to be declared
#: above (``tests/obs/test_names.py`` pins the fault-injector keys).
DYNAMIC_COUNTER_PREFIXES: Tuple[str, ...] = (
    "faults.",
    "substrate.",
)


def declared_phases() -> FrozenSet[str]:
    """The dotted-name phases (first segments) the registry spans."""
    return frozenset(
        name.split(".", 1)[0]
        for name in DECLARED_COUNTERS | DECLARED_TIMERS
    )
