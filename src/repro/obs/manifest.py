"""Run provenance: the :class:`RunManifest` record.

A manifest answers, for any archived result, the questions a reviewer
asks first: *which configuration produced this, from which seed, under
which package versions, on what machine, at which git revision?* It is
deliberately free of wall-clock timestamps — a manifest is a statement
about *inputs*, and two runs of the same inputs should produce the same
manifest on the same host (the golden round-trip test pins this).

Three producers emit manifests:

* :func:`repro.sim.runner.run_trials` attaches one to every
  :class:`~repro.sim.runner.TrialResults` (``results.manifest``);
* :func:`benchmarks.artifacts.write_bench_json` embeds one in every
  ``BENCH_*.json`` trajectory file, with ``config_hash`` taken over the
  bench payload itself;
* the ``repro`` CLI's ``--obs-out`` flag writes one as the first line
  of the observation JSONL (see :mod:`repro.obs.export`).

Environment collection (versions, host, git revision) is cached per
process: it cannot change mid-run, and caching keeps manifest
construction cheap enough to do unconditionally.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import asdict, dataclass, field, fields, is_dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

#: bump when a field is added/renamed/removed; readers check it
#: (2: added ``batch_fallback_reason``; 3: added ``executor``;
#: 4: added ``substrate``; 5: added ``serving``)
SCHEMA_VERSION = 5


def _canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, enum-safe."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_jsonable
    )


def _jsonable(value: Any) -> Any:
    if hasattr(value, "value") and not isinstance(value, type):
        return value.value  # enums (VoteMode) hash by their stable value
    return repr(value)


def config_digest(payload: Any) -> str:
    """SHA-256 hex digest of any JSON-able configuration payload.

    Dataclasses (``EngineConfig``, ``FaultPlan``) are flattened with
    :func:`dataclasses.asdict` first so the digest depends on field
    values, never on object identity or repr formatting.
    """
    if is_dataclass(payload) and not isinstance(payload, type):
        payload = asdict(payload)
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


def fault_plan_digest(plan: Optional[Any]) -> Optional[str]:
    """Digest of a :class:`~repro.faults.plan.FaultPlan` (``None`` in,
    ``None`` out — a clean run has no fault provenance to record)."""
    return None if plan is None else config_digest(plan)


# ----------------------------------------------------------------------
# Environment collection, cached per process
# ----------------------------------------------------------------------
_ENV_CACHE: Optional[Tuple[Dict[str, str], Dict[str, Any], Optional[str]]] = None


def _collect_environment() -> Tuple[Dict[str, str], Dict[str, Any], Optional[str]]:
    global _ENV_CACHE
    if _ENV_CACHE is not None:
        return _ENV_CACHE
    import platform

    import numpy

    import repro

    versions = {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro.__version__,
    }
    host = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python_implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }
    _ENV_CACHE = (versions, host, _git_revision())
    return _ENV_CACHE


def _git_revision() -> Optional[str]:
    """The repository's HEAD commit, or ``None`` outside a git checkout
    (installed wheels, exported tarballs — provenance degrades gracefully
    rather than failing)."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    rev = completed.stdout.strip()
    return rev or None


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one run or artifact.

    Attributes
    ----------
    schema_version:
        Format version of this record (see :data:`SCHEMA_VERSION`).
    config_hash:
        SHA-256 over the canonical JSON of the run's configuration
        (the :class:`~repro.sim.engine.EngineConfig` for trial runs;
        the payload itself for bench artifacts).
    seed_entropy:
        ``str(SeedSequence.entropy)`` — the same fingerprint the
        checkpoint header uses, so a manifest and a checkpoint of the
        same sweep agree byte-for-byte. ``None`` when no seed applies.
    n_trials:
        Trial count of the sweep (``None`` for non-sweep artifacts).
    fault_plan_digest:
        SHA-256 of the :class:`~repro.faults.plan.FaultPlan`, or
        ``None`` for clean runs.
    batch_fallback_reason:
        Why a ``batch_lanes`` request degraded to the scalar engine
        (the :func:`~repro.sim.batch_engine.batch_fallback_reason`
        string), or ``None`` when the run batched as asked — including
        every run that never asked for batching.
    executor:
        What the execution fabric did: backend name, worker roster,
        reassignment log, retry/loss tallies, and any degradation steps
        (the :class:`~repro.exec.base.ExecutorReport` dict), or
        ``None`` for artifacts that ran no trials. **Reporting, not
        identity**: two runs of the same seed on different backends
        produce identical results, so ``repro obs diff`` reports this
        field informationally and excludes it from its verdict.
    substrate:
        The billboard storage substrate the sweep requested (``"auto"``,
        ``"dense"``, or ``"sparse"`` — see
        :mod:`repro.billboard.sparse`), or ``None`` when the caller left
        the knob at its default. Like ``executor``, this is
        **reporting, not identity**: the substrate is bit-inert, so
        ``repro obs diff`` shows it informationally and excludes it
        from its verdict.
    serving:
        The serving-layer configuration when the artifact came from a
        :class:`~repro.serve.service.BillboardService` (the
        :meth:`~repro.serve.config.ServeConfig.manifest_payload` dict:
        world dimensions, substrate knob, admission caps), or ``None``
        for batch artifacts. Admission caps shape *which* requests were
        admitted, never what an admitted request computes, so like
        ``executor`` this is **reporting, not identity** — ``repro obs
        diff`` shows it informationally and excludes it from its
        verdict.
    versions:
        ``{"python": ..., "numpy": ..., "repro": ...}``.
    host:
        Platform, machine, Python implementation, CPU count.
    git_rev:
        HEAD commit of the source checkout, or ``None`` when the
        package runs outside a git repository.
    """

    schema_version: int = SCHEMA_VERSION
    config_hash: str = ""
    seed_entropy: Optional[str] = None
    n_trials: Optional[int] = None
    fault_plan_digest: Optional[str] = None
    batch_fallback_reason: Optional[str] = None
    executor: Optional[Dict[str, Any]] = None
    substrate: Optional[str] = None
    serving: Optional[Dict[str, Any]] = None
    versions: Dict[str, str] = field(default_factory=dict)
    host: Dict[str, Any] = field(default_factory=dict)
    git_rev: Optional[str] = None

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-safe; the inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest, rejecting unknown or missing-type payloads
        with a clear error instead of a ``TypeError`` deep in dataclass
        machinery."""
        from repro.errors import ConfigurationError

        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"manifest payload has unknown keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        return cls(**dict(payload))

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, compact separators).

        Two manifests are equal iff their ``to_json`` strings are equal,
        which is what the golden round-trip test asserts bit-for-bit.
        """
        return _canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — a short identity for diffs."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


# ----------------------------------------------------------------------
def collect_manifest(
    seed: Any = None,
    n_trials: Optional[int] = None,
    config: Optional[Any] = None,
    fault_plan: Optional[Any] = None,
    config_payload: Optional[Any] = None,
    batch_fallback_reason: Optional[str] = None,
    executor: Optional[Dict[str, Any]] = None,
    substrate: Optional[str] = None,
    serving: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Build a :class:`RunManifest` for the current process.

    ``config`` is the run's :class:`~repro.sim.engine.EngineConfig`
    (``None`` hashes the engine defaults as an empty payload);
    ``config_payload`` overrides it with an arbitrary JSON-able payload
    (the bench-artifact path). ``seed`` accepts anything
    :func:`repro.rng.make_seed_sequence` does; ``None`` records no seed.
    ``batch_fallback_reason`` is the runner's audit of a degraded
    ``batch_lanes`` request (``None``: no degradation happened).
    ``executor`` is the execution fabric's report dict
    (:meth:`repro.exec.base.ExecutorReport.to_dict`; ``None``: no
    trials were dispatched). ``substrate`` is the billboard storage
    knob the caller requested (``None``: knob left at its default).
    ``serving`` is the serving-layer configuration record
    (:meth:`~repro.serve.config.ServeConfig.manifest_payload`;
    ``None``: the artifact did not come from a service).
    """
    from repro.rng import make_seed_sequence

    versions, host, git_rev = _collect_environment()
    if config_payload is not None:
        config_hash = config_digest(config_payload)
    else:
        config_hash = config_digest(config if config is not None else {})
    seed_entropy = (
        None if seed is None else str(make_seed_sequence(seed).entropy)
    )
    return RunManifest(
        schema_version=SCHEMA_VERSION,
        config_hash=config_hash,
        seed_entropy=seed_entropy,
        n_trials=n_trials,
        fault_plan_digest=fault_plan_digest(fault_plan),
        batch_fallback_reason=batch_fallback_reason,
        executor=executor,
        substrate=substrate,
        serving=serving,
        versions=dict(versions),
        host=dict(host),
        git_rev=git_rev,
    )
