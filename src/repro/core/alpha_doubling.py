"""Guessing ``α`` by halving (Section 5.1).

Figure 1 hardwires ``α``. The paper removes the assumption with the
standard doubling (here: halving) trick, on top of the high-probability
variant: choose ``k1, k2`` so that DISTILL^HP terminates within
``k3 · (log n / α) · (1/(β n) + 1)`` rounds with probability at least
``1 - n^{-2}`` (such constants exist by Theorem 11 and are independent of
``α``); then for ``i = 0, 1, 2, ..., log n`` run that algorithm for exactly
``2^i · k3 · log n · (1/(β n) + 1)`` rounds with ``α := 2^{-i}`` hardwired.

Once ``2^{-i}`` drops to the true honest fraction ``α0``, the stage
succeeds despite the "after effects" of earlier stages (some players
already satisfied — they only help; some dishonest votes already cast —
covered by the vote-budget argument). Total time is at most twice the last
stage's, i.e. ``O(log n/(α0 β n) + log n/α0)`` — the Theorem 11 bound
without knowing ``α0``.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.distill_hp import DistillHPStrategy
from repro.core.staged import Stage, StagedStrategy
from repro.strategies.base import StrategyContext


class AlphaDoublingStrategy(StagedStrategy):
    """The Section 5.1 wrapper: DISTILL^HP under halved ``α`` guesses.

    Parameters
    ----------
    k3:
        Round-budget constant of the wrapper (the paper's ``k3``).
    hp_scale:
        The Θ(log n) constant handed to the inner DISTILL^HP stages.
    """

    name = "alpha-doubling"

    def __init__(self, k3: float = 4.0, hp_scale: float = 1.0) -> None:
        self.k3 = k3
        self.hp_scale = hp_scale

    def build_stages(self, ctx: StrategyContext) -> List[Stage]:
        from repro.analysis.bounds import lemma7_iteration_bound
        from repro.core.distill_hp import hp_parameters

        log_n = math.log2(max(ctx.n, 2))
        base_budget = self.k3 * log_n * (1.0 / (ctx.beta * ctx.n) + 1.0)
        stages: List[Stage] = []
        max_i = max(0, math.ceil(log_n))
        for i in range(max_i + 1):
            guess = 2.0 ** (-i)
            # Stage i runs for 2^i times the paper's base budget, but never
            # less than one full ATTEMPT of the inner algorithm at the
            # guessed alpha (otherwise the stage could not possibly
            # succeed and its rounds would be pure waste).
            params = hp_parameters(ctx.n, scale=self.hp_scale, alpha=guess)
            attempt_rounds = params.attempt_rounds_estimate(
                ctx.n,
                ctx.alpha,
                ctx.beta,
                expected_iterations=lemma7_iteration_bound(ctx.n, guess)
                + 1.0,
            )
            budget = max(
                2,
                math.ceil((2.0 ** i) * base_budget),
                math.ceil(1.5 * attempt_rounds),
            )
            stages.append(
                Stage(
                    strategy=DistillHPStrategy(
                        scale=self.hp_scale, alpha=guess
                    ),
                    budget_rounds=budget,
                    label=f"alpha-guess=2^-{i}",
                )
            )
        return stages
