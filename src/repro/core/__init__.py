"""The paper's contribution: Algorithm DISTILL and its variants.

* :class:`~repro.core.distill.DistillStrategy` — Figure 1, verbatim
  (Section 4): the sub-logarithmic search algorithm with local testing.
* :class:`~repro.core.distill_hp.DistillHPStrategy` — Theorem 11: the
  high-probability variant with ``k1, k2 = Θ(log n)``.
* :class:`~repro.core.alpha_doubling.AlphaDoublingStrategy` — Section 5.1:
  the halving wrapper that removes the hardwired ``α``.
* :func:`~repro.core.multicost.run_multicost` — Theorem 12: cost classes
  for the general cost model.
* :class:`~repro.core.no_local_testing.NoLocalTestingDistill` —
  Theorem 13 / Section 5.3: best-so-far mutable votes.
* :mod:`~repro.core.multivote` — Section 4.1: up to ``f`` votes per player
  and erroneous honest votes.
* :class:`~repro.core.three_phase.ThreePhaseStrategy` — the illustrative
  three-phase algorithm of Section 1.2.
"""

from repro.core.parameters import DistillParameters
from repro.core.batched import BatchedDistillStrategy
from repro.core.distill import DistillStrategy
from repro.core.distill_hp import DistillHPStrategy, hp_parameters
from repro.core.alpha_doubling import AlphaDoublingStrategy
from repro.core.multicost import MulticostOutcome, run_multicost
from repro.core.no_local_testing import NoLocalTestingDistill
from repro.core.multivote import MultiVoteDistill
from repro.core.three_phase import ThreePhaseStrategy

__all__ = [
    "AlphaDoublingStrategy",
    "BatchedDistillStrategy",
    "DistillHPStrategy",
    "DistillParameters",
    "DistillStrategy",
    "MultiVoteDistill",
    "MulticostOutcome",
    "NoLocalTestingDistill",
    "ThreePhaseStrategy",
    "hp_parameters",
    "run_multicost",
]
