"""DISTILL's tunable constants and phase-length arithmetic.

Figure 1 leaves two constants free: ``k1`` (Step 1.1 repetitions, controls
the probability that *some* honest player finds a good object) and ``k2``
(Step 1.3 repetitions and the ``k2/4`` entry threshold for the initial
candidate set ``C0``). The proof of Theorem 4 works for ``k1 >= 1`` and
``k2 >= 192`` — constants chosen for proof convenience, not practice; the
defaults here are pragmatic values at which the measured expected cost is
near its floor (see the E3/E5 benches), and every experiment can override
them.

Loop counts such as ``k1/(α·β·n)`` are real numbers in the paper; we run
``max(1, ceil(·))`` invocations. Each PROBE&SEEKADVICE invocation spans two
rounds (explore + advice), per Lemma 6's "every second probe follows a
recommendation".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


def invocation_count(quantity: float) -> int:
    """``max(1, ceil(quantity))`` — a paper-style loop bound in invocations."""
    if math.isinf(quantity) or math.isnan(quantity):
        raise ConfigurationError(f"non-finite loop bound {quantity}")
    return max(1, math.ceil(quantity - 1e-12))


@dataclass(frozen=True)
class DistillParameters:
    """Constants of Figure 1 plus the protocol's assumed ``α`` and ``β``.

    ``alpha``/``beta`` default to ``None`` = "use the context's values";
    Section 5.1's wrapper passes explicit (guessed) ``alpha`` values.
    """

    k1: float = 4.0
    k2: float = 8.0
    alpha: Optional[float] = None
    beta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.k1 <= 0 or self.k2 <= 0:
            raise ConfigurationError(
                f"k1 and k2 must be positive, got k1={self.k1}, k2={self.k2}"
            )
        for label, value in (("alpha", self.alpha), ("beta", self.beta)):
            if value is not None and not 0 < value <= 1:
                raise ConfigurationError(
                    f"{label} must be in (0, 1], got {value}"
                )

    # ------------------------------------------------------------------
    def resolved_alpha(self, ctx_alpha: float) -> float:
        return self.alpha if self.alpha is not None else ctx_alpha

    def resolved_beta(self, ctx_beta: float) -> float:
        return self.beta if self.beta is not None else ctx_beta

    def step11_invocations(self, n: int, ctx_alpha: float, ctx_beta: float) -> int:
        """Step 1.1: ``k1/(α·β·n)`` PROBE&SEEKADVICE invocations."""
        alpha = self.resolved_alpha(ctx_alpha)
        beta = self.resolved_beta(ctx_beta)
        return invocation_count(self.k1 / (alpha * beta * n))

    def step13_invocations(self, ctx_alpha: float) -> int:
        """Step 1.3: ``k2/α`` PROBE&SEEKADVICE invocations."""
        return invocation_count(self.k2 / self.resolved_alpha(ctx_alpha))

    def iteration_invocations(self, ctx_alpha: float) -> int:
        """Step 2.1: ``1/α`` PROBE&SEEKADVICE invocations per iteration."""
        return invocation_count(1.0 / self.resolved_alpha(ctx_alpha))

    def attempt_rounds_estimate(
        self,
        n: int,
        ctx_alpha: float,
        ctx_beta: float,
        expected_iterations: float = 2.0,
    ) -> int:
        """Rounds one ATTEMPT invocation occupies (Step 1 exactly, Step 2
        at ``expected_iterations`` while-loop iterations).

        Staged wrappers (Section 5.1, Theorem 12) size their stage budgets
        from this so a stage always has room to complete at least one full
        ATTEMPT — the property the per-stage success arguments need.
        """
        return (
            2 * self.step11_invocations(n, ctx_alpha, ctx_beta)
            + 2 * self.step13_invocations(ctx_alpha)
            + math.ceil(expected_iterations)
            * 2
            * self.iteration_invocations(ctx_alpha)
        )

    @property
    def c0_vote_threshold(self) -> float:
        """Step 1.4: objects need at least ``k2/4`` votes to enter ``C0``."""
        return self.k2 / 4.0

    @staticmethod
    def iteration_vote_threshold(n: int, c_t: int) -> float:
        """Step 2.2: survival needs *strictly more than* ``n/(4·c_t)`` votes."""
        if c_t <= 0:
            raise ConfigurationError(f"c_t must be positive, got {c_t}")
        return n / (4.0 * c_t)
