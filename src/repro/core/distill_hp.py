"""DISTILL^HP — the high-probability variant (Theorem 11).

Theorem 11: with ``k1 = Θ(log n)`` and ``k2 = Θ(log n)``, every honest
player terminates within ``O(log n/(α β n) + log n/α)`` rounds with
probability ``1 - n^{-Ω(1)}`` against any adaptive Byzantine adversary.
The per-invocation failure probability of ATTEMPT,
``e^{-k1/2} + e^{-k2/16} + 9 e^{-k2/64}`` (Lemmas 8 and 10), becomes
polynomially small, so a single invocation almost always succeeds.

The algorithm is literally DISTILL with larger constants; this module only
provides the parameter recipe and a convenience subclass that resolves the
constants from ``n`` at reset time.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.strategies.base import StrategyContext


def hp_parameters(
    n: int,
    scale: float = 1.0,
    alpha: Optional[float] = None,
    beta: Optional[float] = None,
    k1_floor: float = 2.0,
    k2_floor: float = 8.0,
) -> DistillParameters:
    """The Theorem 11 recipe: ``k1, k2 = Θ(log n)``.

    ``scale`` multiplies the ``log2 n`` terms (the theorem's hidden
    constant); the floors keep tiny ``n`` sane.
    """
    log_n = math.log2(max(n, 2))
    return DistillParameters(
        k1=max(k1_floor, scale * log_n),
        k2=max(k2_floor, 2.0 * scale * log_n),
        alpha=alpha,
        beta=beta,
    )


class DistillHPStrategy(DistillStrategy):
    """DISTILL with ``k1, k2 = Θ(log n)``, resolved from the context's ``n``.

    Parameters
    ----------
    scale:
        Constant in front of ``log2 n``.
    alpha, beta:
        Optional protocol-assumed values overriding the context's (the
        Section 5.1 wrapper passes guessed ``α`` values).
    universe:
        Optional object-pool restriction (Theorem 12 cost classes).
    """

    name = "distill-hp"

    def __init__(
        self,
        scale: float = 1.0,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
        universe: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(params=None, universe=universe)
        self._scale = scale
        self._alpha_override = alpha
        self._beta_override = beta

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        self.params = hp_parameters(
            ctx.n,
            scale=self._scale,
            alpha=self._alpha_override,
            beta=self._beta_override,
        )
        super().reset(ctx, rng)
