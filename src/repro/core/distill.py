"""Algorithm DISTILL (Figure 1) as an honest cohort strategy.

The phase structure lives in
:class:`~repro.core.tracker.DistillPhaseTracker`; this module adds the
player-side behaviour:

* **explore rounds** — probe a uniformly random object of the tracker's
  current pool (Step 1.1/1.3/2.1);
* **advice rounds** — probe the current vote of a uniformly random player,
  if any (the second half of PROBE&SEEKADVICE, which Lemma 6 uses to let
  stragglers finish in ``O(1/α)`` expected extra rounds);
* **termination** — on probing an object that passes the local test, post
  it as the player's single vote and halt (the Figure 1 "Termination"
  rule; the base-class :meth:`~repro.strategies.base.Strategy.handle_results`
  implements it).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhaseTracker
from repro.strategies.base import Strategy, StrategyContext
from repro.strategies.probe_advice import AdviceAlternator


class DistillStrategy(Strategy):
    """The honest cohort running Algorithm DISTILL (local-testing model).

    Parameters
    ----------
    params:
        Figure 1 constants; ``None`` uses the defaults of
        :class:`~repro.core.parameters.DistillParameters`.
    universe:
        Restrict Step 1.1's object pool (Theorem 12 cost classes);
        ``None`` means all ``m`` objects.
    """

    name = "distill"

    def __init__(
        self,
        params: Optional[DistillParameters] = None,
        universe: Optional[np.ndarray] = None,
    ) -> None:
        self.params = params or DistillParameters()
        self._universe = universe

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        if not ctx.supports_local_testing:
            raise ValueError(
                "DistillStrategy is the Section 4 (local-testing) algorithm; "
                "use NoLocalTestingDistill for the Section 5.3 model"
            )
        self.tracker = DistillPhaseTracker(
            ctx, self.params, universe=self._universe
        )
        self.alternator = AdviceAlternator(ctx.n)

    def rebase(self, start_round: int) -> None:
        """Shift the phase clock so ATTEMPT begins at ``start_round``.

        Staged wrappers (Section 5.1's α-halving, Theorem 12's cost
        classes) start inner DISTILL runs mid-simulation.
        """
        self.tracker.phase_start = start_round

    # ------------------------------------------------------------------
    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        self.tracker.advance(round_no, view)
        if self.tracker.is_advice_round(round_no):
            return self.alternator.advise(active_players.size, view, self.rng)
        return self.alternator.explore(
            self.tracker.pool, active_players.size, self.rng
        )

    def make_batched(self, n_lanes: int) -> "BatchedDistillStrategy":
        """Native trial-lane counterpart (see :mod:`repro.core.batched`)."""
        from repro.core.batched import BatchedDistillStrategy

        return BatchedDistillStrategy(self.params, universe=self._universe)

    def info(self) -> Dict[str, Any]:
        out = self.tracker.diagnostics()
        out.update(
            algorithm=self.name,
            alpha_assumed=self.params.resolved_alpha(self.ctx.alpha),
            beta_assumed=self.params.resolved_beta(self.ctx.beta),
            k1=self.params.k1,
            k2=self.params.k2,
        )
        return out
