"""Multiple votes and erroneous votes (Section 4.1).

The paper's analysis leans on "one vote per player", which caps the damage
of a dishonest player. Section 4.1 observes there is nothing special about
one: allowing up to ``f`` positive votes per player — and tolerating
erroneous votes by honest players, as long as one of each honest player's
votes is correct — leaves Theorem 4's asymptotics unchanged while
``f = o(1/(1-α))``.

Concretization (documented in DESIGN.md): the run's billboard uses
``VoteMode.MULTI`` with cap ``f`` for *everyone* — dishonest players get an
``f``-fold vote budget, which is exactly the relaxed damage bound the
section analyzes. Honest errors are modeled as mistaken recommendations:
while still searching, an honest player probing a bad object erroneously
vouches for it with probability ``error_rate`` (an eBay transaction that
looked fine at first). The player *continues probing* — the billboard is
append-only, so the bogus vote stays — and caps itself at ``f - 1``
erroneous votes so that its final, genuine vote (cast when it truly finds
a good object, whereupon it halts) is always effective. That is precisely
the "at least one correct positive vote" condition.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.errors import ConfigurationError
from repro.strategies.base import StrategyContext


class MultiVoteDistill(DistillStrategy):
    """DISTILL under the ``f``-votes / erroneous-votes model of Section 4.1.

    Run it with ``EngineConfig(vote_mode=VoteMode.MULTI,
    max_votes_per_player=f)`` so the reader-side ledger applies the same
    ``f`` cap to every identity.

    Parameters
    ----------
    f:
        Maximum positive votes per player (the section's ``f``).
    error_rate:
        Per-probe probability that an honest player erroneously vouches
        for a bad object it just probed (0 disables errors).
    """

    name = "distill-multivote"

    def __init__(
        self,
        f: int = 2,
        error_rate: float = 0.0,
        params: Optional[DistillParameters] = None,
    ) -> None:
        super().__init__(params=params)
        if f < 1:
            raise ConfigurationError(f"f must be >= 1, got {f}")
        if not 0 <= error_rate < 1:
            raise ConfigurationError(
                f"error_rate must be in [0, 1), got {error_rate}"
            )
        if error_rate > 0 and f < 2:
            raise ConfigurationError(
                "erroneous votes need f >= 2 so the final genuine vote "
                "stays effective (Section 4.1's 'one correct vote')"
            )
        self.f = f
        self.error_rate = error_rate

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        self._erroneous_votes = np.zeros(ctx.n, dtype=np.int64)

    def handle_results(
        self,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        threshold = self.ctx.good_threshold
        genuine = values >= threshold
        vote = genuine.copy()
        if self.error_rate > 0:
            flips = self.rng.random(players.size) < self.error_rate
            can_err = self._erroneous_votes[players] < self.f - 1
            erroneous = ~genuine & flips & can_err
            self._erroneous_votes[players[erroneous]] += 1
            vote |= erroneous
        # halt only on a genuine local-test pass; erroneous votes do not
        # stop the search (the player just mis-recommended and moves on).
        return vote, genuine
