"""Multiple costs via cost classes (Theorem 12, Section 5.2).

Objects with similar costs are aggregated into classes — class ``i`` holds
costs in ``[2^i, 2^(i+1))`` (w.l.o.g. all costs >= 1). The algorithm runs a
series of DISTILL^HP instances: first on class 0 only, then class 1, and so
on, each under the minimal assumption ``β = 1/m_i`` (at least one good
object in the class) and each for its prescribed high-probability round
budget. The series stops as soon as the honest players are satisfied —
which happens, w.h.p., by the class ``i0 = log q0`` containing the cheapest
good object, giving per-player payment

    sum_{i<=i0} 2^{i+1} (m_i log n/(α n) + log n/α) = O(q0 · m log n/(α n)).

The class sequencing is a :class:`~repro.core.staged.StagedStrategy`; the
engine's satisfied-players bookkeeping makes early classes' survivors carry
into later ones, and the run ends the moment everyone has found a good
object (cheap classes are never over-probed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.bounds import thm12_payment_bound
from repro.core.distill_hp import DistillHPStrategy
from repro.core.staged import Stage, StagedStrategy
from repro.errors import ConfigurationError
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.metrics import RunMetrics
from repro.strategies.base import StrategyContext
from repro.world.instance import Instance


class MulticostStrategy(StagedStrategy):
    """DISTILL^HP over increasing cost classes (Theorem 12).

    Parameters
    ----------
    class_universes:
        Object ids per cost class, cheapest class first (empty classes
        allowed; they are skipped). Players know object costs (they are
        public in the model), so this schedule is legitimately computable
        by every honest player.
    k3:
        Round-budget constant per class.
    hp_scale:
        Θ(log n) constant for the inner DISTILL^HP stages.
    """

    name = "multicost"

    def __init__(
        self,
        class_universes: List[np.ndarray],
        k3: float = 3.0,
        hp_scale: float = 1.0,
    ) -> None:
        if not class_universes:
            raise ConfigurationError("need at least one cost class")
        self.class_universes = [
            np.asarray(u, dtype=np.int64) for u in class_universes
        ]
        self.k3 = k3
        self.hp_scale = hp_scale

    def build_stages(self, ctx: StrategyContext) -> List[Stage]:
        from repro.analysis.bounds import lemma7_iteration_bound
        from repro.core.distill_hp import hp_parameters

        stages: List[Stage] = []
        for klass, universe in enumerate(self.class_universes):
            m_i = int(universe.size)
            if m_i == 0:
                continue
            # Budget = k3/2 full ATTEMPT invocations of the actual inner
            # algorithm at beta = 1/m_i. ATTEMPT succeeds with constant
            # probability per invocation (Theorem 4's proof), so a couple
            # of invocations per class realizes the Theorem 12 schedule;
            # sizing from the real phase lengths (rather than the paper's
            # O(log n (m_i/n + 1)/alpha), which hides the same quantity
            # behind a constant) keeps stages long enough to finish at
            # least one ATTEMPT at every (n, m_i, alpha).
            params = hp_parameters(ctx.n, scale=self.hp_scale)
            attempt_rounds = params.attempt_rounds_estimate(
                ctx.n,
                ctx.alpha,
                1.0 / m_i,
                expected_iterations=lemma7_iteration_bound(ctx.n, ctx.alpha)
                + 1.0,
            )
            budget = max(2, math.ceil(self.k3 / 2.0 * attempt_rounds))
            stages.append(
                Stage(
                    strategy=DistillHPStrategy(
                        scale=self.hp_scale,
                        beta=1.0 / m_i,
                        universe=universe,
                    ),
                    budget_rounds=budget,
                    label=f"cost-class-{klass} (m_i={m_i})",
                )
            )
        if not stages:
            raise ConfigurationError("all cost classes are empty")
        return stages


@dataclass
class MulticostOutcome:
    """Result of a Theorem 12 run, with the quantities the theorem names."""

    metrics: RunMetrics
    q0: float
    mean_payment: float
    max_payment: float
    bound_payment: float

    @property
    def payment_over_bound(self) -> float:
        """Measured mean payment / theoretical bound (constant-free)."""
        return self.mean_payment / self.bound_payment


def run_multicost(
    instance: Instance,
    rng: np.random.Generator,
    adversary=None,
    adversary_rng: Optional[np.random.Generator] = None,
    k3: float = 3.0,
    hp_scale: float = 1.0,
    config: Optional[EngineConfig] = None,
) -> MulticostOutcome:
    """Run the Theorem 12 algorithm on a cost-class instance.

    Builds the class schedule from the instance's (public) costs, runs one
    engine, and reports payments against the ``q0 · m log n/(α n)`` bound.
    """
    space = instance.space
    classes = [
        space.cost_class_members(k) for k in range(space.n_cost_classes())
    ]
    strategy = MulticostStrategy(classes, k3=k3, hp_scale=hp_scale)
    engine = SynchronousEngine(
        instance,
        strategy,
        adversary=adversary,
        rng=rng,
        adversary_rng=adversary_rng,
        config=config,
    )
    metrics = engine.run()
    q0 = space.cheapest_good_cost
    bound = thm12_payment_bound(q0, instance.m, instance.n, instance.alpha)
    return MulticostOutcome(
        metrics=metrics,
        q0=q0,
        mean_payment=metrics.mean_individual_paid,
        max_payment=float(metrics.honest_paid.max()),
        bound_payment=bound,
    )
