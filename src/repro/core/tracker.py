"""The DISTILL phase machine, shared by honest players and adversaries.

Every phase boundary of Algorithm DISTILL (Figure 1) is a deterministic
function of the round number and the shared billboard. That has two
consequences we exploit:

1. all honest players compute identical candidate sets, so the honest
   cohort needs a single tracker (see DESIGN.md, "Cohort strategies"); and
2. the *adversary* can run the very same tracker — the algorithm is public,
   only coin flips are private — which is how
   :class:`~repro.adversaries.split_vote.SplitVoteAdversary` knows exactly
   which thresholds to attack. Sharing one implementation keeps the attack
   honest: the adversary predicts phases through the same code the players
   execute.

Phase layout of one ATTEMPT (each PROBE&SEEKADVICE invocation = 2 rounds):

=========  ===========================================  ==================
phase      rounds                                       transition at end
=========  ===========================================  ==================
STEP11     ``2 * max(1, ceil(k1/(α β n)))``             Step 1.2: ``S`` :=
                                                        objects with >= 1
                                                        effective vote
STEP13     ``2 * max(1, ceil(k2/α))``                   Step 1.4: ``C0`` :=
                                                        objects with >=
                                                        ``k2/4`` votes in
                                                        the window
ITERATION  ``2 * max(1, ceil(1/α))`` per iteration      Step 2.2: keep
                                                        candidates with
                                                        ``l_t(i) > n/(4
                                                        c_t)`` votes
=========  ===========================================  ==================

An empty candidate set (after Step 1.4 or Step 2.2) restarts ATTEMPT at the
current round.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

import numpy as np

from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.strategies.base import StrategyContext


class DistillPhase(enum.Enum):
    """Where in ATTEMPT the cohort currently is."""

    STEP11 = "step1.1"
    STEP13 = "step1.3"
    ITERATION = "step2"


class DistillPhaseTracker:
    """Deterministic replay of DISTILL's phase structure from the board.

    Parameters
    ----------
    ctx:
        Public protocol knowledge (``n``, ``m``, assumed ``α``/``β``).
    params:
        Figure 1 constants.
    universe:
        The object pool of Step 1.1 — all of ``{0..m-1}`` by default;
        Theorem 12's cost-class runs restrict it to one class.
    start_round:
        The absolute round at which this tracker's first ATTEMPT begins
        (staged wrappers such as Section 5.1's start trackers mid-run).
    """

    def __init__(
        self,
        ctx: StrategyContext,
        params: DistillParameters,
        universe: Optional[np.ndarray] = None,
        start_round: int = 0,
    ) -> None:
        self.ctx = ctx
        self.params = params
        if universe is None:
            universe = np.arange(ctx.m, dtype=np.int64)
        self.universe = np.asarray(universe, dtype=np.int64)

        self.len_step11 = 2 * params.step11_invocations(
            ctx.n, ctx.alpha, ctx.beta
        )
        self.len_step13 = 2 * params.step13_invocations(ctx.alpha)
        self.len_iteration = 2 * params.iteration_invocations(ctx.alpha)

        self.phase = DistillPhase.STEP11
        self.phase_start = start_round
        self.phase_len = self.len_step11
        self.pool = self.universe
        self.candidates = self.universe
        self.iteration = 0

        self._attempts: List[Dict[str, Any]] = []
        self._current: Dict[str, Any] = _new_attempt_record()

    # ------------------------------------------------------------------
    @property
    def phase_end(self) -> int:
        """First round no longer belonging to the current phase."""
        return self.phase_start + self.phase_len

    def is_advice_round(self, round_no: int) -> bool:
        """Odd offsets within a phase are advice rounds (PROBE&SEEKADVICE)."""
        return (round_no - self.phase_start) % 2 == 1

    def iteration_threshold(self) -> float:
        """Step 2.2 survival threshold for the current candidate set."""
        return self.params.iteration_vote_threshold(
            self.ctx.n, int(self.candidates.size)
        )

    # ------------------------------------------------------------------
    def advance(self, round_no: int, view: BillboardView) -> None:
        """Apply every phase transition due at or before ``round_no``.

        ``view`` must expose the board at least up to the horizon
        ``round_no`` (the honest start-of-round view suffices; the
        adversary's full view gives identical answers because windows end
        at phase boundaries ``<= round_no``).
        """
        while round_no >= self.phase_end:
            end = self.phase_end
            if self.phase is DistillPhase.STEP11:
                self._enter_step13(end, view)
            elif self.phase is DistillPhase.STEP13:
                self._enter_iterations(end, view)
            else:
                self._next_iteration(end, view)

    def _enter_step13(self, end: int, view: BillboardView) -> None:
        # Step 1.2: objects with a vote, *within this run's universe* —
        # a Theorem 12 class run ignores votes for other classes' objects
        # (they cannot be candidates of this instance).
        pool = np.intersect1d(view.objects_with_votes(), self.universe)
        self._current["s_size"] = int(pool.size)
        self.phase = DistillPhase.STEP13
        self.phase_start = end
        self.phase_len = self.len_step13
        self.pool = pool

    def _enter_iterations(self, end: int, view: BillboardView) -> None:
        counts = view.counts_in_window(self.phase_start, end)
        c0 = np.intersect1d(
            np.flatnonzero(counts >= self.params.c0_vote_threshold),
            self.universe,
        ).astype(np.int64)
        self._current["c_sizes"].append(int(c0.size))
        self.candidates = c0
        self.iteration = 0
        if c0.size == 0:
            self._restart(end)
        else:
            self.phase = DistillPhase.ITERATION
            self.phase_start = end
            self.phase_len = self.len_iteration
            self.pool = c0

    def _next_iteration(self, end: int, view: BillboardView) -> None:
        counts = view.counts_in_window(self.phase_start, end)
        threshold = self.iteration_threshold()
        survivors = self.candidates[counts[self.candidates] > threshold]
        self.iteration += 1
        self._current["iterations"] = self.iteration
        self._current["c_sizes"].append(int(survivors.size))
        self.candidates = survivors
        if survivors.size == 0:
            self._restart(end)
        else:
            self.phase = DistillPhase.ITERATION
            self.phase_start = end
            self.phase_len = self.len_iteration
            self.pool = survivors

    def _restart(self, round_no: int) -> None:
        """Begin a fresh ATTEMPT at ``round_no``."""
        self._attempts.append(self._current)
        self._current = _new_attempt_record()
        self.phase = DistillPhase.STEP11
        self.phase_start = round_no
        self.phase_len = self.len_step11
        self.pool = self.universe
        self.candidates = self.universe
        self.iteration = 0

    # ------------------------------------------------------------------
    def diagnostics(self) -> Dict[str, Any]:
        """ATTEMPT/iteration statistics for RunMetrics.strategy_info."""
        attempts = self._attempts + [self._current]
        return {
            "attempt_count": len(attempts),
            "attempts": attempts,
            "total_iterations": sum(a["iterations"] for a in attempts),
            "max_iterations_per_attempt": max(
                (a["iterations"] for a in attempts), default=0
            ),
        }


def _new_attempt_record() -> Dict[str, Any]:
    return {"s_size": None, "c_sizes": [], "iterations": 0}
