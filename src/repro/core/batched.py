"""Native batched DISTILL: one phase tracker per lane, shared helper code.

The batched engine's lanes are independent trials, so DISTILL's per-lane
state is exactly the scalar strategy's state — a
:class:`~repro.core.tracker.DistillPhaseTracker` and an
:class:`~repro.strategies.probe_advice.AdviceAlternator` — held once per
lane. Both helpers are *reused*, not re-implemented, which is what makes
the per-lane draw sequences bit-identical to
:class:`~repro.core.distill.DistillStrategy` by construction: the same
code takes the same draws from the same pinned per-trial rng stream.

The cross-lane win is structural, not numeric: one round-loop iteration
services every lane, and the lane boards answer the tracker's queries
from columnar storage instead of Post lists.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhaseTracker
from repro.strategies.base import StrategyContext
from repro.strategies.batched import BatchedStrategy
from repro.strategies.probe_advice import AdviceAlternator


class BatchedDistillStrategy(BatchedStrategy):
    """Lane-indexed Algorithm DISTILL (local-testing model)."""

    name = "distill"

    def __init__(
        self,
        params: Optional[DistillParameters] = None,
        universe: Optional[np.ndarray] = None,
    ) -> None:
        self.params = params or DistillParameters()
        self._universe = universe

    def reset_lanes(
        self,
        contexts: Sequence[StrategyContext],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        for ctx in contexts:
            if not ctx.supports_local_testing:
                raise ValueError(
                    "DistillStrategy is the Section 4 (local-testing) "
                    "algorithm; use NoLocalTestingDistill for the "
                    "Section 5.3 model"
                )
        self._contexts = list(contexts)
        self._rngs = list(rngs)
        self._trackers = [
            DistillPhaseTracker(ctx, self.params, universe=self._universe)
            for ctx in contexts
        ]
        self._alternators = [AdviceAlternator(ctx.n) for ctx in contexts]

    def choose_probes_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        active_players: Sequence[np.ndarray],
        views: Sequence[BillboardView],
    ) -> List[np.ndarray]:
        out: List[np.ndarray] = []
        for k, active, view in zip(lanes, active_players, views):
            tracker = self._trackers[k]
            tracker.advance(round_no, view)
            if tracker.is_advice_round(round_no):
                choice = self._alternators[k].advise(
                    active.size, view, self._rngs[k]
                )
            else:
                choice = self._alternators[k].explore(
                    tracker.pool, active.size, self._rngs[k]
                )
            out.append(choice)
        return out

    def handle_results_batch(
        self,
        round_no: int,
        lanes: Sequence[int],
        players: Sequence[np.ndarray],
        objects: Sequence[np.ndarray],
        values: Sequence[np.ndarray],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for k, vals in zip(lanes, values):
            threshold = self._contexts[k].good_threshold
            good = vals >= threshold
            out.append((good, good))
        return out

    def info(self, lane: int) -> Dict[str, Any]:
        ctx = self._contexts[lane]
        out = self._trackers[lane].diagnostics()
        out.update(
            algorithm=self.name,
            alpha_assumed=self.params.resolved_alpha(ctx.alpha),
            beta_assumed=self.params.resolved_beta(ctx.beta),
            k1=self.params.k1,
            k2=self.params.k2,
        )
        return out
