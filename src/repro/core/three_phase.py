"""The illustrative three-phase algorithm of Section 1.2.

The paper motivates DISTILL with a simplified algorithm for ``m = n``
objects and only ``√n`` dishonest players:

    Each phase i consists of two rounds in which each player probes a
    random object from a candidate set C_i and posts the result. C_i is
    the set of objects recommended by at least θ_i players on the
    billboard at the start of phase i, with θ_1 = 0, θ_2 = 1,
    θ_3 = √n / 2.

The claims to check empirically (bench E12):

* each candidate set contains the good object ``i0`` with constant
  probability — at least ``1 - 1/e`` for ``C_2``;
* ``|C_2| <= √n + 1`` (the √n dishonest players add at most √n objects);
* ``|C_3| <= 3`` (the dishonest budget buys at most 2 bad objects at
  ``√n/2`` votes each);
* in phase 3, players finish within 3 rounds by probing all of ``C_3``.

Unlike DISTILL, candidate sets here use *cumulative* billboard counts at
phase start ("recommended by at least θ_i players on the billboard"), and
all probes are exploration (no advice rounds).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

import numpy as np

from repro.billboard.views import BillboardView
from repro.strategies.base import Strategy, StrategyContext


class ThreePhaseStrategy(Strategy):
    """The Section 1.2 three-phase candidate-refinement algorithm.

    Designed for ``m = n`` with about ``√n`` dishonest players; it is a
    demonstration, not a robust algorithm — exactly the paper's point
    ("the simplistic analysis breaks down when the number of dishonest
    players is large").
    """

    name = "three-phase"

    #: rounds per refinement phase (the paper's "two rounds")
    ROUNDS_PER_PHASE = 2
    #: extra rounds granted to phase 3 ("halt within 3 rounds")
    FINAL_ROUNDS = 3

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        if not ctx.supports_local_testing:
            raise ValueError("the three-phase algorithm needs local testing")
        sqrt_n = math.sqrt(ctx.n)
        self.thresholds = [0.0, 1.0, sqrt_n / 2.0]
        self._phase_starts = [0, 2, 4]
        self._total_rounds = 2 * self.ROUNDS_PER_PHASE + self.FINAL_ROUNDS
        self._candidate_log: List[np.ndarray] = []
        self._current_pool = np.arange(ctx.m, dtype=np.int64)
        self._phase = 0

    # ------------------------------------------------------------------
    def _enter_phase(self, phase: int, view: BillboardView) -> None:
        threshold = self.thresholds[phase]
        if threshold <= 0:
            pool = np.arange(self.ctx.m, dtype=np.int64)
        else:
            counts = view.cumulative_vote_counts()
            pool = np.flatnonzero(counts >= threshold).astype(np.int64)
        self._current_pool = pool
        self._candidate_log.append(pool.copy())
        self._phase = phase

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        for phase, start in enumerate(self._phase_starts):
            if round_no == start:
                self._enter_phase(phase, view)
        pool = self._current_pool
        if pool.size == 0:
            return np.full(active_players.size, -1, dtype=np.int64)
        if self._phase == 2:
            # Final phase: sweep the (tiny) candidate set deterministically,
            # staggered per player so the whole set is covered in |C_3|
            # rounds regardless of coin luck.
            offset = round_no - self._phase_starts[2]
            idx = (np.arange(active_players.size) + offset) % pool.size
            return pool[idx].astype(np.int64)
        picks = self.rng.integers(pool.size, size=active_players.size)
        return pool[picks].astype(np.int64)

    def finished(self, round_no: int) -> bool:
        return round_no >= self._total_rounds

    def info(self) -> Dict[str, Any]:
        return {
            "algorithm": self.name,
            "thresholds": list(self.thresholds),
            "candidate_sets": [c.tolist() for c in self._candidate_log],
            "candidate_sizes": [int(c.size) for c in self._candidate_log],
        }
