"""Staged composition of DISTILL runs.

Two of the paper's extensions run a *sequence* of DISTILL instances on one
shared billboard:

* Section 5.1 (guessing ``α``): run DISTILL^HP with guessed ``α = 2^{-i}``
  for a prescribed number of rounds, for ``i = 0, 1, ..., log n``;
* Theorem 12 (multiple costs): run DISTILL^HP on cost class ``i`` with
  ``β = 1/m_i`` for a prescribed number of rounds, for each class.

Both share the mechanics implemented here: a wrapper strategy that hands
rounds to the current inner DISTILL cohort, rebased to start its ATTEMPT
clock at the stage boundary, and advances to the next stage when the
stage's round budget is exhausted. Billboard state (votes — honest and
dishonest) and player satisfaction persist across stages, exactly the
"after effects" the Section 5.1 argument accounts for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy
from repro.errors import ConfigurationError
from repro.strategies.base import Strategy, StrategyContext


@dataclass
class Stage:
    """One stage: an inner DISTILL cohort and its round budget."""

    strategy: DistillStrategy
    budget_rounds: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.budget_rounds < 2:
            raise ConfigurationError(
                f"stage budget must cover >= 2 rounds, got {self.budget_rounds}"
            )


class StagedStrategy(Strategy):
    """Base class for stage-sequenced DISTILL wrappers.

    Subclasses implement :meth:`build_stages`. The wrapper keeps the
    local-testing vote/halt rule of the base :class:`Strategy`; inner
    strategies contribute only their probe schedule (phase machine + coin
    flips).
    """

    name = "staged"

    def build_stages(self, ctx: StrategyContext) -> List[Stage]:
        """Construct the stage sequence for this run."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        self._stages = self.build_stages(ctx)
        if not self._stages:
            raise ConfigurationError("staged strategy needs >= 1 stage")
        self._stage_idx = -1
        self._stage_start = 0
        self._stage_end = 0  # forces entry into stage 0 on the first round
        self._exhausted = False

    def _enter_next_stage(self, round_no: int) -> None:
        self._stage_idx += 1
        if self._stage_idx >= len(self._stages):
            self._exhausted = True
            return
        stage = self._stages[self._stage_idx]
        stage.strategy.reset(self.ctx, self.rng)
        stage.strategy.rebase(round_no)
        self._stage_start = round_no
        self._stage_end = round_no + stage.budget_rounds

    def _current(self, round_no: int) -> Optional[DistillStrategy]:
        while not self._exhausted and round_no >= self._stage_end:
            self._enter_next_stage(round_no)
        if self._exhausted:
            return None
        return self._stages[self._stage_idx].strategy

    # ------------------------------------------------------------------
    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        inner = self._current(round_no)
        if inner is None:  # pragma: no cover - engine stops via finished()
            return np.full(active_players.size, -1, dtype=np.int64)
        return inner.choose_probes(round_no, active_players, view)

    def finished(self, round_no: int) -> bool:
        return self._current(round_no) is None

    def info(self) -> Dict[str, Any]:
        completed = self._stages[: self._stage_idx + 1]
        return {
            "algorithm": self.name,
            "stages_entered": self._stage_idx + 1,
            "stage_labels": [s.label for s in completed],
            "stage_infos": [
                s.strategy.info() if hasattr(s.strategy, "ctx") else {}
                for s in completed
            ],
        }
