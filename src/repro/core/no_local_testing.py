"""Search without local testing (Theorem 13, Section 5.3).

When goodness is not locally testable, an object is good only relatively —
it is among the top ``β·m`` values. The tweak to DISTILL^HP:

* a player's vote is the **highest-value object it has personally probed
  so far**, so the vote can change as the execution progresses (the
  billboard stays append-only; readers take the latest vote — the
  ``MUTABLE`` ledger mode);
* nobody halts on a probe; instead the algorithm runs for a **prescribed
  number of rounds** (a function of ``β``, which is part of the input in
  this model), after which all players stop. With high probability every
  honest player has probed a good object by then.

Run it with ``EngineConfig(vote_mode=VoteMode.MUTABLE)``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

import numpy as np

from repro.billboard.views import BillboardView
from repro.core.distill_hp import hp_parameters
from repro.core.tracker import DistillPhaseTracker
from repro.strategies.base import Strategy, StrategyContext
from repro.strategies.probe_advice import AdviceAlternator


class NoLocalTestingDistill(Strategy):
    """DISTILL^HP with best-so-far mutable votes and a prescribed run length.

    Parameters
    ----------
    k3:
        Constant of the prescribed run length
        ``k3 * (log n/(α β n) + log n/α)`` rounds (Theorem 13's bound).
    hp_scale:
        Θ(log n) constant for the underlying DISTILL^HP phase constants.
    """

    name = "distill-no-local-testing"

    def __init__(self, k3: float = 6.0, hp_scale: float = 1.0) -> None:
        self.k3 = k3
        self.hp_scale = hp_scale

    # ------------------------------------------------------------------
    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        self.params = hp_parameters(ctx.n, scale=self.hp_scale)
        self.tracker = DistillPhaseTracker(ctx, self.params)
        self.alternator = AdviceAlternator(ctx.n)
        self._best_value = np.full(ctx.n, -np.inf)
        log_n = math.log2(max(ctx.n, 2))
        self.prescribed_rounds = max(
            2,
            math.ceil(
                self.k3
                * (
                    log_n / (ctx.alpha * ctx.beta * ctx.n)
                    + log_n / ctx.alpha
                )
            ),
        )

    # ------------------------------------------------------------------
    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        self.tracker.advance(round_no, view)
        if self.tracker.is_advice_round(round_no):
            return self.alternator.advise(active_players.size, view, self.rng)
        return self.alternator.explore(
            self.tracker.pool, active_players.size, self.rng
        )

    def handle_results(
        self,
        round_no: int,
        players: np.ndarray,
        objects: np.ndarray,
        values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        improved = values > self._best_value[players]
        self._best_value[players[improved]] = values[improved]
        halts = np.zeros(players.size, dtype=bool)  # stop only at the bell
        return improved, halts

    def finished(self, round_no: int) -> bool:
        return round_no >= self.prescribed_rounds

    def info(self) -> Dict[str, Any]:
        out = self.tracker.diagnostics()
        out.update(
            algorithm=self.name,
            prescribed_rounds=self.prescribed_rounds,
            k1=self.params.k1,
            k2=self.params.k2,
        )
        return out
