"""repro — a reproduction of *Adaptive Collaboration in Peer-to-Peer
Systems* (Awerbuch, Patt-Shamir, Peleg, Tuttle; ICDCS 2005).

The library implements the paper's billboard model, Algorithm DISTILL and
all its variants, the baselines it is compared against, a zoo of Byzantine
adversaries, the two lower-bound constructions, and an experiment harness
that regenerates every theorem's claim as a measured table.

Quickstart
----------
>>> import numpy as np
>>> from repro import (DistillStrategy, SynchronousEngine,
...                    planted_instance, SplitVoteAdversary)
>>> rng = np.random.default_rng(0)
>>> instance = planted_instance(n=256, m=256, beta=1/16, alpha=0.75, rng=rng)
>>> engine = SynchronousEngine(instance, DistillStrategy(),
...                            adversary=SplitVoteAdversary(),
...                            rng=np.random.default_rng(1),
...                            adversary_rng=np.random.default_rng(2))
>>> metrics = engine.run()
>>> metrics.all_honest_satisfied
True
"""

from repro.adversaries import (
    Adversary,
    FloodAdversary,
    MimicAdversary,
    RandomVotesAdversary,
    SilentAdversary,
    SplitVoteAdversary,
    SpoofedProtocolAdversary,
    available_adversaries,
    make_adversary,
)
from repro.baselines import (
    AsyncEC04Strategy,
    FullCooperationStrategy,
    TrivialStrategy,
)
from repro.billboard import Billboard, BillboardView, Post, PostKind, VoteMode
from repro.core import (
    AlphaDoublingStrategy,
    DistillHPStrategy,
    DistillParameters,
    DistillStrategy,
    MultiVoteDistill,
    MulticostOutcome,
    NoLocalTestingDistill,
    ThreePhaseStrategy,
    hp_parameters,
    run_multicost,
)
from repro.errors import (
    AdversaryViolationError,
    BillboardError,
    BudgetExceededError,
    ConfigurationError,
    InvalidPostError,
    ReproError,
    SimulationError,
    TamperError,
)
from repro.extensions import (
    NoAdviceDistill,
    PricedEngine,
    SelfPromotionAdversary,
    SlanderAdversary,
    SlanderingDistill,
    ownership_instance,
)
from repro.sim import (
    AsyncRunMetrics,
    AsynchronousEngine,
    BatchedEngine,
    EngineConfig,
    PerStepAdapter,
    RandomSchedule,
    RoundRobinSchedule,
    RunMetrics,
    SoloFirstSchedule,
    StarvationSchedule,
    SynchronizedDistillAdapter,
    SynchronousEngine,
    Trace,
    TrialResults,
    VoteAction,
    run_trials,
)
from repro.strategies import Strategy, StrategyContext
from repro.world import (
    Instance,
    ObjectSpace,
    cost_class_instance,
    planted_instance,
    valued_instance,
)

__version__ = "1.8.0"

__all__ = [
    "Adversary",
    "AdversaryViolationError",
    "AlphaDoublingStrategy",
    "AsyncEC04Strategy",
    "AsyncRunMetrics",
    "AsynchronousEngine",
    "BatchedEngine",
    "Billboard",
    "BillboardError",
    "BillboardView",
    "BudgetExceededError",
    "ConfigurationError",
    "DistillHPStrategy",
    "DistillParameters",
    "DistillStrategy",
    "EngineConfig",
    "FloodAdversary",
    "FullCooperationStrategy",
    "Instance",
    "InvalidPostError",
    "MimicAdversary",
    "MultiVoteDistill",
    "MulticostOutcome",
    "NoAdviceDistill",
    "NoLocalTestingDistill",
    "ObjectSpace",
    "PerStepAdapter",
    "Post",
    "PostKind",
    "PricedEngine",
    "RandomSchedule",
    "RandomVotesAdversary",
    "ReproError",
    "RoundRobinSchedule",
    "RunMetrics",
    "SelfPromotionAdversary",
    "SilentAdversary",
    "SimulationError",
    "SlanderAdversary",
    "SlanderingDistill",
    "SoloFirstSchedule",
    "SplitVoteAdversary",
    "SpoofedProtocolAdversary",
    "StarvationSchedule",
    "Strategy",
    "StrategyContext",
    "SynchronizedDistillAdapter",
    "SynchronousEngine",
    "TamperError",
    "ThreePhaseStrategy",
    "Trace",
    "TrialResults",
    "TrivialStrategy",
    "VoteAction",
    "VoteMode",
    "available_adversaries",
    "cost_class_instance",
    "hp_parameters",
    "make_adversary",
    "ownership_instance",
    "planted_instance",
    "run_multicost",
    "run_trials",
    "valued_instance",
]
