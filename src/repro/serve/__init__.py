"""The serving layer: a live billboard behind an asyncio front-end.

Everything below the socket is the same physics as the simulator — an
append-only billboard, monotone epochs, the DISTILL phase machine — but
driven by concurrent network traffic instead of a round loop. See
``docs/serving.md`` for the architecture and SLO methodology.
"""

from repro.serve.client import ServeClient
from repro.serve.config import (
    SERVE_MAX_INFLIGHT_ENV_VAR,
    SERVE_PORT_ENV_VAR,
    SERVE_RATE_ENV_VAR,
    ServeConfig,
    default_serve_max_inflight,
    default_serve_port,
    default_serve_rate,
    resolve_serve_max_inflight,
    resolve_serve_port,
    resolve_serve_rate,
    set_default_serve_max_inflight,
    set_default_serve_port,
    set_default_serve_rate,
)
from repro.serve.recommender import (
    OnlineDistillRecommender,
    batch_recommender,
)
from repro.serve.service import BillboardService, ServiceThread

__all__ = [
    "SERVE_MAX_INFLIGHT_ENV_VAR",
    "SERVE_PORT_ENV_VAR",
    "SERVE_RATE_ENV_VAR",
    "BillboardService",
    "OnlineDistillRecommender",
    "ServeClient",
    "ServeConfig",
    "ServiceThread",
    "batch_recommender",
    "default_serve_max_inflight",
    "default_serve_port",
    "default_serve_rate",
    "resolve_serve_max_inflight",
    "resolve_serve_port",
    "resolve_serve_rate",
    "set_default_serve_max_inflight",
    "set_default_serve_port",
    "set_default_serve_rate",
]
