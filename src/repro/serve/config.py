"""Serving-layer configuration and the ``REPRO_SERVE_*`` knobs.

The service follows the repo-wide knob-trio discipline (reprolint
RPL012): every knob is an environment variable + a CLI flag whose help
names it + a ``default_*/set_default_*/resolve_*`` resolver, and all
three are documented in ``docs/serving.md``. Like the runner knobs in
:mod:`repro.experiments.config`, none of them changes what the board
computes — they shape *where* the service listens and *how much*
traffic it admits before shedding.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

#: environment variable supplying the default listening port
SERVE_PORT_ENV_VAR = "REPRO_SERVE_PORT"

#: environment variable supplying the default global in-flight cap
SERVE_MAX_INFLIGHT_ENV_VAR = "REPRO_SERVE_MAX_INFLIGHT"

#: environment variable supplying the default per-client token rate
SERVE_RATE_ENV_VAR = "REPRO_SERVE_RATE"

#: port 0 asks the OS for an ephemeral port (tests, benches)
FALLBACK_PORT = 0

#: requests admitted concurrently before the service sheds
FALLBACK_MAX_INFLIGHT = 256

#: per-client admission tokens per second; 0.0 disables rate limiting
FALLBACK_RATE = 0.0

_default_serve_port: Optional[int] = None

_default_serve_max_inflight: Optional[int] = None

_default_serve_rate: Optional[float] = None


def _env_int(env_var: str, fallback: int) -> int:
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{env_var} must be an integer, got {raw!r}"
        ) from None


def default_serve_port() -> int:
    """The process-wide default listening port.

    Resolution order: :func:`set_default_serve_port` override, then the
    ``REPRO_SERVE_PORT`` environment variable, then ``0`` (an ephemeral
    port, printed on startup).
    """
    if _default_serve_port is not None:
        return _default_serve_port
    return _env_int(SERVE_PORT_ENV_VAR, FALLBACK_PORT)


def set_default_serve_port(port: Optional[int]) -> None:
    """Override the process-wide port default (``None`` restores env/0)."""
    global _default_serve_port
    _default_serve_port = port


def resolve_serve_port(port: Optional[int]) -> int:
    """An explicit ``port`` wins; ``None`` falls back to the default."""
    return default_serve_port() if port is None else port


def default_serve_max_inflight() -> int:
    """The process-wide default in-flight request cap.

    Resolution order: :func:`set_default_serve_max_inflight` override,
    then the ``REPRO_SERVE_MAX_INFLIGHT`` environment variable, then
    :data:`FALLBACK_MAX_INFLIGHT`. Requests beyond the cap are shed
    with :class:`~repro.errors.LoadShedError`, never queued unboundedly.
    """
    if _default_serve_max_inflight is not None:
        return _default_serve_max_inflight
    value = _env_int(SERVE_MAX_INFLIGHT_ENV_VAR, FALLBACK_MAX_INFLIGHT)
    if value <= 0:
        raise ConfigurationError(
            f"{SERVE_MAX_INFLIGHT_ENV_VAR} must be positive, got {value}"
        )
    return value


def set_default_serve_max_inflight(max_inflight: Optional[int]) -> None:
    """Override the process-wide in-flight cap (``None`` restores env)."""
    global _default_serve_max_inflight
    _default_serve_max_inflight = max_inflight


def resolve_serve_max_inflight(max_inflight: Optional[int]) -> int:
    """An explicit cap wins; ``None`` falls back to the default."""
    return (
        default_serve_max_inflight()
        if max_inflight is None
        else max_inflight
    )


def default_serve_rate() -> float:
    """The process-wide default per-client admission rate (tokens/s).

    Resolution order: :func:`set_default_serve_rate` override, then the
    ``REPRO_SERVE_RATE`` environment variable, then ``0.0`` — rate
    limiting off (the in-flight cap still applies).
    """
    if _default_serve_rate is not None:
        return _default_serve_rate
    raw = os.environ.get(SERVE_RATE_ENV_VAR, "").strip()
    if not raw:
        return FALLBACK_RATE
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{SERVE_RATE_ENV_VAR} must be a number, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(
            f"{SERVE_RATE_ENV_VAR} must be non-negative, got {value}"
        )
    return value


def set_default_serve_rate(rate: Optional[float]) -> None:
    """Override the process-wide rate default (``None`` restores env)."""
    global _default_serve_rate
    _default_serve_rate = rate


def resolve_serve_rate(rate: Optional[float]) -> float:
    """An explicit rate wins; ``None`` falls back to the default."""
    return default_serve_rate() if rate is None else rate


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.serve.service.BillboardService` needs.

    Attributes
    ----------
    n_players, n_objects:
        World dimensions of the live board (posts are validated against
        them exactly as in the simulator).
    host, port:
        Listening address. Port ``0`` binds an ephemeral port; the bound
        address is printed on startup and exposed on the service.
    substrate:
        The billboard storage knob (``auto``/``dense``/``sparse``, or
        ``None`` for auto — see :mod:`repro.billboard.sparse`).
    max_inflight:
        Global cap on requests admitted concurrently; excess requests
        are shed with a typed error instead of queued.
    rate:
        Per-client token-bucket refill rate in requests/second
        (``0.0`` = unlimited). Clients start with a :attr:`burst`-sized
        bucket.
    burst:
        Token-bucket capacity — how many back-to-back requests a client
        may issue before the rate applies.
    queue_depth:
        Bound on the current epoch's pending write buffer; a post that
        fills it flushes the buffer to the board synchronously (the
        writer pays the flush, which is the backpressure).
    alpha, beta:
        Protocol parameters assumed by the online DISTILL recommender
        (the honest fraction and good-object fraction of the paper).
    """

    n_players: int
    n_objects: int
    host: str = "127.0.0.1"
    port: int = FALLBACK_PORT
    substrate: Optional[str] = None
    max_inflight: int = FALLBACK_MAX_INFLIGHT
    rate: float = FALLBACK_RATE
    burst: int = 64
    queue_depth: int = 4096
    alpha: float = 0.5
    beta: float = 0.125

    def __post_init__(self) -> None:
        if self.n_players <= 0 or self.n_objects <= 0:
            raise ConfigurationError(
                "serve needs positive world dimensions, got "
                f"n_players={self.n_players}, n_objects={self.n_objects}"
            )
        if self.max_inflight <= 0:
            raise ConfigurationError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.rate < 0:
            raise ConfigurationError(
                f"rate must be non-negative, got {self.rate}"
            )
        if self.burst <= 0:
            raise ConfigurationError(
                f"burst must be positive, got {self.burst}"
            )
        if self.queue_depth <= 0:
            raise ConfigurationError(
                f"queue_depth must be positive, got {self.queue_depth}"
            )

    def manifest_payload(self) -> Dict[str, Any]:
        """The serving-config record embedded in manifest schema v5."""
        return {
            "n_players": self.n_players,
            "n_objects": self.n_objects,
            "substrate": self.substrate,
            "max_inflight": self.max_inflight,
            "rate": self.rate,
            "burst": self.burst,
            "queue_depth": self.queue_depth,
        }
