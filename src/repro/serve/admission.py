"""Admission control: token buckets and the in-flight gauge.

Backpressure in the serving layer has three teeth, applied in order:

1. **per-client token bucket** (:class:`TokenBucket`) — each connection
   refills at ``rate`` tokens/second up to ``burst``; a request with no
   token is shed;
2. **global in-flight cap** (:class:`InflightGauge`) — at most
   ``max_inflight`` admitted requests may be in processing at once;
   the cap sheds rather than queues, so latency stays bounded;
3. **bounded write buffer** — the service's pending-post buffer flushes
   synchronously when full, making the overflowing writer pay the
   flush cost (see :class:`~repro.serve.service.BillboardService`).

Shedding is communicated as a typed ``shed`` frame which the client
raises as :class:`~repro.errors.LoadShedError` — callers distinguish
"the service protected itself" from genuine errors.

Clocks are injected (``now`` parameters) rather than read here: the
service passes ``time.monotonic()``, tests pass a scripted clock, and
the bucket logic itself stays deterministic.
"""

from __future__ import annotations

from typing import Optional

#: admission verdicts carried in ``shed`` frames
SHED_RATE = "rate"
SHED_INFLIGHT = "inflight"


class TokenBucket:
    """A standard token bucket: ``burst`` capacity, ``rate`` tokens/s.

    ``rate <= 0`` disables the bucket (every request admitted). Tokens
    accrue continuously from the last refill timestamp; the bucket never
    holds more than ``burst``.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: int, now: float = 0.0) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill = float(now)

    def try_acquire(self, now: float) -> bool:
        """Take one token at time ``now``; ``False`` means shed."""
        if self.rate <= 0:
            return True
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class InflightGauge:
    """The global count of admitted-but-unfinished requests.

    A plain counter, not a lock: the service runs on one asyncio event
    loop, so acquire/release pairs never race. ``try_acquire`` refuses
    (instead of waiting) at the cap — load-shed semantics, not queueing.
    """

    __slots__ = ("limit", "inflight", "peak")

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)
        self.inflight = 0
        #: high-water mark, reported by the ``/metrics`` query op
        self.peak = 0

    def try_acquire(self) -> bool:
        if self.inflight >= self.limit:
            return False
        self.inflight += 1
        if self.inflight > self.peak:
            self.peak = self.inflight
        return True

    def release(self) -> None:
        self.inflight -= 1
        assert self.inflight >= 0, "inflight gauge released below zero"


class Admission:
    """One connection's admission state: its bucket plus the shared gauge.

    :meth:`admit` returns ``None`` to admit or a shed reason string;
    a successful admission holds one in-flight slot until
    :meth:`finish`.
    """

    __slots__ = ("bucket", "gauge")

    def __init__(
        self, rate: float, burst: int, gauge: InflightGauge, now: float
    ) -> None:
        self.bucket = TokenBucket(rate, burst, now=now)
        self.gauge = gauge

    def admit(self, now: float) -> Optional[str]:
        if not self.bucket.try_acquire(now):
            return SHED_RATE
        if not self.gauge.try_acquire():
            return SHED_INFLIGHT
        return None

    def finish(self) -> None:
        self.gauge.release()
