"""`ServeClient` — a blocking client for the billboard service.

Speaks the executor fabric's frame protocol
(:func:`~repro.exec.protocol.send_frame` /
:func:`~repro.exec.protocol.recv_frame`) over one persistent TCP
connection, and guards every request with the fabric's monotonic
deadline watchdog (:func:`~repro.exec.deadline.trial_deadline`) so a
wedged service surfaces as :class:`~repro.errors.TrialTimeoutError`
instead of a hung caller.

Replies map onto exceptions: a ``shed`` frame (admission control
refused the request) raises :class:`~repro.errors.LoadShedError` with
the shed reason attached; an ``error`` frame (the request was malformed
and not applied) raises :class:`~repro.errors.ConfigurationError`.
Load generators catch the former to count sheds without dying.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError, LoadShedError
from repro.exec.deadline import trial_deadline
from repro.exec.protocol import recv_frame, send_frame


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.service.BillboardService`.

    Parameters
    ----------
    host, port:
        The service's bound address (printed by ``repro serve`` on
        startup).
    timeout:
        Per-request wall-clock budget in seconds, enforced by the
        executor fabric's deadline watchdog (``None`` disables it).
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 30.0
    ) -> None:
        self.timeout = timeout
        self._sock = socket.create_connection((host, port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # ------------------------------------------------------------------
    def request(self, kind: str, body: Any = None) -> Any:
        """One round trip; returns the ``ok`` body or raises."""
        with trial_deadline(self.timeout):
            send_frame(self._sock, kind, body)
            reply_kind, reply_body = recv_frame(self._sock)
        if reply_kind == "ok":
            return reply_body
        if reply_kind == "shed":
            raise LoadShedError(
                str(reply_body.get("message", "request shed")),
                reason=str(reply_body.get("reason", "")),
            )
        if reply_kind == "error":
            raise ConfigurationError(str(reply_body.get("message", "")))
        raise ConfigurationError(f"unexpected reply kind {reply_kind!r}")

    # ------------------------------------------------------------------
    def post(
        self,
        player: int,
        object_id: int,
        value: float = 1.0,
        kind: str = "report",
    ) -> Dict[str, Any]:
        """Buffer a post stamped with the service's current epoch."""
        return dict(
            self.request(
                "post",
                {
                    "player": player,
                    "object": object_id,
                    "value": value,
                    "kind": kind,
                },
            )
        )

    def vote(self, player: int, object_id: int) -> Dict[str, Any]:
        """Buffer a vote (an effective-vote post) for ``object_id``."""
        return dict(
            self.request("vote", {"player": player, "object": object_id})
        )

    def tick(self) -> Dict[str, Any]:
        """Complete the current epoch and fold the recommender forward."""
        return dict(self.request("tick"))

    def scores(self) -> Dict[str, Any]:
        """Per-object DISTILL scores at the folded epoch horizon."""
        return dict(self.request("query", {"op": "scores"}))

    def recommend(self, k: int = 10) -> List[int]:
        """Top-``k`` recommended object ids at the folded horizon."""
        body = self.request("query", {"op": "recommend", "k": k})
        return [int(obj) for obj in body["objects"]]

    def counts(self) -> Dict[str, Any]:
        """Cumulative effective vote counts at the current epoch."""
        return dict(self.request("query", {"op": "counts"}))

    def board(self) -> Dict[str, Any]:
        """Board shape facts: post count, visible votes, substrate."""
        return dict(self.request("query", {"op": "board"}))

    def metrics(self) -> Dict[str, Any]:
        """The ``/metrics`` surface: counters, timers, manifest, phase."""
        return dict(self.request("metrics"))

    def shutdown(self) -> Dict[str, Any]:
        """Ask the service to stop after replying."""
        return dict(self.request("shutdown"))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Send ``bye`` (best-effort) and close the socket."""
        try:
            send_frame(self._sock, "bye")
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
