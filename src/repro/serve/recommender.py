"""Online incremental DISTILL scoring over a live billboard.

The batch simulator replays DISTILL's phase machine from round zero
every run. A serving recommender cannot afford that: votes arrive
continuously and queries must answer *now*. This module keeps one
persistent :class:`~repro.core.tracker.DistillPhaseTracker` and folds
each completed epoch in as it closes — the tracker's phase windows are
``counts_in_window(phase_start, phase_end)`` reads that only touch
rounds since the previous boundary, so a fold is incremental work
proportional to the epoch's new votes, never a full recompute.

The correctness contract is *bit-identity with batch DISTILL*: because
every phase transition is a deterministic function of the round number
and the board (the property the tracker module exists to exploit), an
online recommender folded epoch by epoch must agree, at every epoch
boundary, with a fresh tracker replayed from round zero over the same
board — same phase, same candidate sets, same scores, bit for bit.
``tests/serve/test_recommender.py`` pins this with
:func:`batch_recommender` at every boundary of adversarial traffic.

Scores are DISTILL-flavoured: an object's score is its cumulative
effective vote count over completed epochs, masked to the tracker's
current pool (non-pool objects score ``-1``); :meth:`recommend` ranks
by score descending with object id as the deterministic tie-break.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.sparse import SparseBoard
from repro.billboard.views import SnapshotView
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhaseTracker
from repro.errors import ConfigurationError
from repro.strategies.base import StrategyContext

AnyBoard = Union[Billboard, SparseBoard]


class OnlineDistillRecommender:
    """A streaming DISTILL scorer: fold epochs in, query any time.

    Parameters
    ----------
    board:
        The live billboard (dense or sparse — the scorer only reads).
    ctx:
        Public protocol knowledge (``n``, ``m``, assumed ``α``/``β``),
        exactly what an honest player of the paper would hold.
    params:
        Figure 1 constants (defaults match the simulator's).
    """

    def __init__(
        self,
        board: AnyBoard,
        ctx: StrategyContext,
        params: Optional[DistillParameters] = None,
    ) -> None:
        self._board = board
        self.ctx = ctx
        self.params = params if params is not None else DistillParameters()
        self._tracker = DistillPhaseTracker(ctx, self.params)
        #: the epoch horizon folded so far (posts of epochs < this)
        self.epoch = 0

    # ------------------------------------------------------------------
    def fold_epoch(self, epoch: int) -> None:
        """Advance the phase machine to the ``epoch`` boundary.

        Must be called with monotonically non-decreasing epochs — the
        tracker consumes each phase window exactly once, which is what
        makes the fold incremental.

        Each due transition is applied with a snapshot pinned at *that
        transition's* boundary, never at ``epoch``: Step 1.2's pool read
        (``objects_with_votes``) is a full-horizon query, so handing it a
        later horizon would leak future votes into the pool and diverge
        from the engine's round-by-round semantics. Pinning per boundary
        makes folding stride-independent — folding every epoch, or one
        fold straight to ``epoch`` (the batch reference), lands in the
        identical state.
        """
        if epoch < self.epoch:
            raise ConfigurationError(
                f"epochs fold forward only: at {self.epoch}, got {epoch}"
            )
        while self._tracker.phase_end <= epoch:
            end = self._tracker.phase_end
            # advance(end, ·) fires exactly one transition: every
            # successor phase has positive length, so the new phase_end
            # is strictly past ``end`` and the tracker's loop exits
            self._tracker.advance(end, SnapshotView(self._board, epoch=end))
        self.epoch = epoch

    # ------------------------------------------------------------------
    @property
    def phase(self) -> str:
        """The current DISTILL phase name (``step1.1``/``step1.3``/``step2``)."""
        return str(self._tracker.phase.value)

    @property
    def pool(self) -> np.ndarray:
        """The tracker's current object pool (int64 ids)."""
        return self._tracker.pool

    @property
    def candidates(self) -> np.ndarray:
        """The surviving candidate set ``C_t`` (int64 ids)."""
        return self._tracker.candidates

    def scores(self) -> np.ndarray:
        """Per-object scores at the folded horizon (float64, length m).

        Cumulative effective votes over completed epochs for objects in
        the current pool; ``-1.0`` for objects outside it.
        """
        view = SnapshotView(self._board, epoch=self.epoch)
        counts = view.cumulative_vote_counts().astype(np.float64)
        scores = np.full(self.ctx.m, -1.0, dtype=np.float64)
        pool = self._tracker.pool
        scores[pool] = counts[pool]
        return scores

    def recommend(self, k: int = 10) -> List[int]:
        """Top-``k`` pool objects by score, ids ascending on ties."""
        scores = self.scores()
        pool = self._tracker.pool
        if pool.size == 0:
            return []
        # sort by (-score, id): lexsort's last key is primary
        order = np.lexsort((pool, -scores[pool]))
        return [int(obj) for obj in pool[order][:k]]

    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """SHA-256 over the full scorer state at the folded horizon.

        Two recommenders agree on this digest iff they agree on the
        phase machine *and* the scores — the golden equivalence tests
        compare online and batch digests at every epoch boundary.
        """
        tracker = self._tracker
        digest = hashlib.sha256()
        digest.update(self.phase.encode())
        for value in (
            self.epoch,
            tracker.phase_start,
            tracker.phase_len,
            tracker.iteration,
        ):
            digest.update(str(int(value)).encode())
        digest.update(np.ascontiguousarray(tracker.pool).tobytes())
        digest.update(np.ascontiguousarray(tracker.candidates).tobytes())
        digest.update(np.ascontiguousarray(self.scores()).tobytes())
        return digest.hexdigest()

    def diagnostics(self) -> Dict[str, Any]:
        """Phase-machine state for the ``/metrics`` query op."""
        tracker = self._tracker
        return {
            "epoch": self.epoch,
            "phase": self.phase,
            "phase_start": int(tracker.phase_start),
            "phase_end": int(tracker.phase_end),
            "iteration": int(tracker.iteration),
            "pool_size": int(tracker.pool.size),
            "candidate_count": int(tracker.candidates.size),
            "attempts": tracker.diagnostics()["attempt_count"],
        }


def batch_recommender(
    board: AnyBoard,
    ctx: StrategyContext,
    epoch: int,
    params: Optional[DistillParameters] = None,
) -> OnlineDistillRecommender:
    """Batch DISTILL at an epoch boundary: replay from round zero.

    The reference the online scorer is measured against — a fresh
    tracker advanced over the whole board in one call. Returns a
    recommender so the two sides expose identical query surfaces.
    """
    reference = OnlineDistillRecommender(board, ctx, params=params)
    reference.fold_epoch(epoch)
    return reference
