"""`BillboardService` — the asyncio billboard-as-a-service front-end.

The simulator turned inside-out: instead of an engine driving rounds
over a private board, a long-lived service accepts concurrent
post/vote/query traffic over TCP against one live billboard
(:class:`~repro.billboard.board.Billboard` or
:class:`~repro.billboard.sparse.SparseBoard`, per the substrate knob)
and serves reads from epoch-pinned
:class:`~repro.billboard.views.SnapshotView`\\ s.

Wire format
-----------
The *same* length-prefixed pickle frames as the executor fabric
(:mod:`repro.exec.protocol` — :func:`~repro.exec.protocol.encode_frame`
on the way out, :func:`~repro.exec.protocol.decode_frame` behind an
``asyncio`` ``readexactly`` loop on the way in), and the same trust
model: pickle executes code on unpickle, so the service binds loopback
unless told otherwise and belongs behind the same perimeter as the
socket workers. Request frames:

``post``      ``{"player", "object", "value", "kind"}`` — buffer a post
              stamped with the current epoch
``vote``      ``{"player", "object"}`` — sugar for a vote post
``tick``      advance the epoch: flush the write buffer, fold the
              online recommender forward one boundary
``query``     ``{"op": "scores"|"recommend"|"counts"|"board", ...}`` —
              reads against a snapshot at the current epoch
``metrics``   the ``/metrics`` surface: counters, timers, manifest,
              recommender diagnostics
``shutdown``  stop the server after replying (benches, CI)
``bye``       close this connection

Replies are ``ok`` frames, ``shed`` frames (admission refused — the
client raises :class:`~repro.errors.LoadShedError`), or ``error``
frames (bad request — the request was not applied).

Concurrency model
-----------------
One event loop, no locks: every mutation of the board, the epoch, the
write buffer, and the admission gauge happens synchronously between
``await`` points, so handlers are atomic by construction. Snapshot
isolation then comes free from the board's append-only + monotone-round
invariant — a reader pinned at epoch ``E`` can never observe later
traffic (see :class:`~repro.billboard.views.SnapshotView`).

Epochs are the serving analogue of rounds: posts accepted while the
epoch is ``E`` are stamped ``E`` and become visible to readers only
after the ``tick`` that completes the epoch — which is also the moment
the online DISTILL recommender folds them in. Epoch advancement is an
explicit op (driven by the load generator or an operator), keeping the
whole state machine a deterministic function of the op sequence.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.billboard.board import Billboard, Entry
from repro.billboard.post import PostKind
from repro.billboard.sparse import SparseBoard, choose_substrate
from repro.billboard.views import SnapshotView
from repro.errors import ConfigurationError
from repro.exec.protocol import (
    HEADER_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    frame_length,
)
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.registry import Registry
from repro.serve.admission import Admission, InflightGauge
from repro.serve.config import ServeConfig
from repro.serve.recommender import OnlineDistillRecommender
from repro.strategies.base import StrategyContext

_KINDS = {"report": PostKind.REPORT, "vote": PostKind.VOTE}


class BillboardService:
    """A live billboard behind an asyncio TCP front-end.

    Construct with a :class:`~repro.serve.config.ServeConfig`, then
    either ``await start()`` inside an existing event loop (tests) or
    call :meth:`run` to own the loop (the ``repro serve`` CLI). The
    bound address is available as :attr:`address` once started.
    """

    def __init__(
        self, config: ServeConfig, obs: Optional[Registry] = None
    ) -> None:
        self.config = config
        self.substrate = choose_substrate(config.substrate, config.n_players)
        board_cls = SparseBoard if self.substrate == "sparse" else Billboard
        self.board = board_cls(config.n_players, config.n_objects)
        #: the current epoch; posts are stamped with it, readers see < it
        self.epoch = 0
        self._pending: List[Entry] = []
        self._gauge = InflightGauge(config.max_inflight)
        self.recommender = OnlineDistillRecommender(
            self.board,
            StrategyContext(
                n=config.n_players,
                m=config.n_objects,
                alpha=config.alpha,
                beta=config.beta,
            ),
        )
        self.manifest: RunManifest = collect_manifest(
            config_payload=config.manifest_payload(),
            serving=config.manifest_payload(),
        )
        self.obs = obs if obs is not None else Registry()
        self.obs.manifest = self.manifest
        self._c_connections = self.obs.counter("serve.connections")
        self._c_requests = self.obs.counter("serve.requests")
        self._c_posts = self.obs.counter("serve.posts")
        self._c_votes = self.obs.counter("serve.votes")
        self._c_queries = self.obs.counter("serve.queries")
        self._c_snapshots = self.obs.counter("serve.snapshots")
        self._c_ticks = self.obs.counter("serve.ticks")
        self._c_flushes = self.obs.counter("serve.flushes")
        self._c_shed = self.obs.counter("serve.shed")
        self._t_request = self.obs.timer("serve.request")
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self.address: Optional[Tuple[str, int]] = None
        #: set once the server is listening (cross-thread handshake for
        #: in-process harnesses; the CLI prints the address instead)
        self.ready = threading.Event()

    # ------------------------------------------------------------------
    # Board state machine (synchronous = atomic on the event loop)
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        if not self._pending:
            return
        self.board.append_many(self.epoch, self._pending)
        self._pending = []
        self._c_flushes.add()

    def _apply_post(self, body: Any) -> Dict[str, Any]:
        try:
            player = int(body["player"])
            object_id = int(body["object"])
            value = float(body.get("value", 1.0))
            kind = _KINDS[str(body.get("kind", "report"))]
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed post body: {exc}") from None
        # validate eagerly: the buffered batch must never poison an
        # all-or-nothing append_many at flush time
        if not 0 <= player < self.config.n_players:
            raise ConfigurationError(
                f"player {player} outside [0, {self.config.n_players})"
            )
        if not 0 <= object_id < self.config.n_objects:
            raise ConfigurationError(
                f"object {object_id} outside [0, {self.config.n_objects})"
            )
        if not math.isfinite(value):
            raise ConfigurationError(f"non-finite reported value {value!r}")
        self._pending.append((player, object_id, value, kind))
        self._c_posts.add()
        if kind is PostKind.VOTE:
            self._c_votes.add()
        if len(self._pending) >= self.config.queue_depth:
            self._flush()  # backpressure: the overflowing writer pays
        return {"epoch": self.epoch, "buffered": len(self._pending)}

    def _tick(self) -> Dict[str, Any]:
        self._flush()
        self.epoch += 1
        self.recommender.fold_epoch(self.epoch)
        self._c_ticks.add()
        return {
            "epoch": self.epoch,
            "phase": self.recommender.phase,
            "pool_size": int(self.recommender.pool.size),
        }

    def snapshot(self) -> SnapshotView:
        """An epoch-pinned read view at the current epoch."""
        self._c_snapshots.add()
        return SnapshotView(self.board, epoch=self.epoch)

    def _query(self, body: Any) -> Dict[str, Any]:
        op = str((body or {}).get("op", "board"))
        self._c_queries.add()
        if op == "scores":
            return {
                "epoch": self.recommender.epoch,
                "phase": self.recommender.phase,
                "scores": [float(s) for s in self.recommender.scores()],
            }
        if op == "recommend":
            k = int((body or {}).get("k", 10))
            return {
                "epoch": self.recommender.epoch,
                "objects": self.recommender.recommend(k),
            }
        if op == "counts":
            view = self.snapshot()
            return {
                "epoch": self.epoch,
                "counts": [int(c) for c in view.cumulative_vote_counts()],
            }
        if op == "board":
            view = self.snapshot()
            return {
                "epoch": self.epoch,
                "posts": len(self.board),
                "visible_votes": int(view.objects_with_votes().size),
                "buffered": len(self._pending),
                "substrate": self.substrate,
            }
        raise ConfigurationError(f"unknown query op {op!r}")

    def _metrics(self) -> Dict[str, Any]:
        return {
            "counters": self.obs.counters(),
            "timers": self.obs.timers(),
            "manifest": self.manifest.to_dict(),
            "recommender": self.recommender.diagnostics(),
            "epoch": self.epoch,
            "substrate": self.substrate,
            "inflight_peak": self._gauge.peak,
            "posts": len(self.board),
        }

    def _handle(self, kind: str, body: Any) -> Tuple[str, Any]:
        try:
            if kind == "post":
                return "ok", self._apply_post(body)
            if kind == "vote":
                payload = dict(body or {})
                payload.setdefault("kind", "vote")
                payload.setdefault("value", 1.0)
                return "ok", self._apply_post(payload)
            if kind == "tick":
                return "ok", self._tick()
            if kind == "query":
                return "ok", self._query(body)
            if kind == "metrics":
                return "ok", self._metrics()
            if kind == "shutdown":
                return "ok", {"stopping": True}
            raise ConfigurationError(f"unknown request kind {kind!r}")
        except ConfigurationError as exc:
            return "error", {"message": str(exc)}

    # ------------------------------------------------------------------
    # Network front-end
    # ------------------------------------------------------------------
    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, Any]:
        header = await reader.readexactly(HEADER_BYTES)
        payload = await reader.readexactly(frame_length(header))
        return decode_frame(payload)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._c_connections.add()
        admission = Admission(
            self.config.rate,
            self.config.burst,
            self._gauge,
            now=time.monotonic(),
        )
        try:
            while True:
                try:
                    kind, body = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # client hung up between or mid-frame
                except ProtocolError as exc:
                    writer.write(encode_frame("error", {"message": str(exc)}))
                    await writer.drain()
                    return
                if kind == "bye":
                    return
                self._c_requests.add()
                reason = admission.admit(time.monotonic())
                if reason is not None:
                    self._c_shed.add()
                    writer.write(
                        encode_frame(
                            "shed",
                            {
                                "reason": reason,
                                "message": (
                                    f"request shed ({reason}); back off "
                                    "and retry"
                                ),
                            },
                        )
                    )
                    await writer.drain()
                    continue
                try:
                    with self._t_request.time():
                        reply_kind, reply_body = self._handle(kind, body)
                    writer.write(encode_frame(reply_kind, reply_body))
                    await writer.drain()
                finally:
                    admission.finish()
                if kind == "shutdown" and reply_kind == "ok":
                    assert self._stop is not None
                    self._stop.set()
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        self.ready.set()
        return self.address

    async def wait_shutdown(self) -> None:
        """Block until a ``shutdown`` frame arrives, then close."""
        assert self._stop is not None and self._server is not None
        await self._stop.wait()
        self._server.close()
        await self._server.wait_closed()

    async def _main(self, announce: bool) -> None:
        host, port = await self.start()
        if announce:
            print(f"serving on {host}:{port}", flush=True)
        await self.wait_shutdown()

    def run(self, announce: bool = True) -> None:
        """Own an event loop until shutdown (the ``repro serve`` path)."""
        asyncio.run(self._main(announce))


class ServiceThread:
    """An in-process service on a daemon thread (tests, benches).

    Starts the event loop in the background, waits for the listening
    socket, and exposes the bound address. ``stop()`` shuts the service
    down through a client connection, like any other caller would.
    """

    def __init__(self, config: ServeConfig, obs: Optional[Registry] = None):
        self.service = BillboardService(config, obs=obs)
        self._thread = threading.Thread(
            target=self.service.run,
            kwargs={"announce": False},
            name="repro-serve",
            daemon=True,
        )

    def __enter__(self) -> "ServiceThread":
        self._thread.start()
        if not self.service.ready.wait(timeout=30.0):  # pragma: no cover
            raise ConfigurationError("service failed to start within 30s")
        return self

    @property
    def address(self) -> Tuple[str, int]:
        assert self.service.address is not None
        return self.service.address

    def stop(self, timeout: float = 10.0) -> None:
        from repro.serve.client import ServeClient

        if self._thread.is_alive():
            with ServeClient(*self.address) as client:
                client.shutdown()
        self._thread.join(timeout=timeout)

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
