"""Per-player observation models.

Probing object ``i`` reveals "its true value" to an honest player. The
Theorem 2 lower-bound construction, however, features dishonest players who
*follow the protocol* but whose reported probe outcomes are dictated by the
adversary ("the object values they report are the values dictated by the
adversarial strategy"). The cleanest way to express that is to give each
player its own observation function: the scripted players run the honest
code against a spoofed world.

The engine consults a :class:`ValueModel` for every probe, so the same
machinery also supports erroneous honest votes (Section 4.1) via noisy
models.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.world.objects import ObjectSpace


class ValueModel:
    """Base observation model: what value a given player sees for a probe."""

    def __init__(self, space: ObjectSpace) -> None:
        self.space = space

    def observe(self, player: int, object_id: int) -> float:
        """Value observed by ``player`` when probing ``object_id``."""
        raise NotImplementedError

    def observe_many(
        self, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`observe`; override for speed."""
        return np.array(
            [self.observe(int(p), int(o)) for p, o in zip(players, objects)],
            dtype=np.float64,
        )


class TrueValueModel(ValueModel):
    """Every player observes the ground-truth value (the default world)."""

    def observe(self, player: int, object_id: int) -> float:
        return float(self.space.values[object_id])

    def observe_many(
        self, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        return self.space.values[np.asarray(objects, dtype=np.int64)]


class SpoofedValueModel(ValueModel):
    """Observations overridden per player by an adversary-chosen table.

    Parameters
    ----------
    space:
        The ground-truth object space (used for players without a spoof).
    spoofed_values:
        Mapping ``player -> array of shape (m,)`` giving the values that
        player observes; players absent from the mapping see the truth.
    """

    def __init__(
        self, space: ObjectSpace, spoofed_values: "dict[int, np.ndarray]"
    ) -> None:
        super().__init__(space)
        self._tables = {
            int(p): np.asarray(v, dtype=np.float64)
            for p, v in spoofed_values.items()
        }
        for player, table in self._tables.items():
            if table.shape != (space.m,):
                raise ValueError(
                    f"spoof table for player {player} has shape {table.shape}, "
                    f"expected ({space.m},)"
                )

    def observe(self, player: int, object_id: int) -> float:
        table = self._tables.get(player)
        if table is None:
            return float(self.space.values[object_id])
        return float(table[object_id])

    def observe_many(
        self, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        objects = np.asarray(objects, dtype=np.int64)
        result = self.space.values[objects]
        for idx, player in enumerate(np.asarray(players, dtype=np.int64)):
            table = self._tables.get(int(player))
            if table is not None:
                result[idx] = table[objects[idx]]
        return result


class NoisyValueModel(ValueModel):
    """Honest-but-erring observations (Section 4.1, "erroneous votes").

    With probability ``error_rate`` a probe of a *bad* object is observed
    as if it had the value ``lure_value`` (typically above the local-testing
    threshold, producing an erroneous positive vote). Good objects are
    always observed correctly, matching the paper's requirement that at
    least one of an honest player's votes is correct — the protocol-level
    guard for that is the ``f``-vote extension in
    :mod:`repro.core.multivote`.
    """

    def __init__(
        self,
        space: ObjectSpace,
        rng: np.random.Generator,
        error_rate: float,
        lure_value: float,
    ) -> None:
        super().__init__(space)
        if not 0 <= error_rate < 1:
            raise ValueError(f"error_rate must be in [0, 1), got {error_rate}")
        self.rng = rng
        self.error_rate = error_rate
        self.lure_value = float(lure_value)

    def observe(self, player: int, object_id: int) -> float:
        true_value = float(self.space.values[object_id])
        if (
            not self.space.good_mask[object_id]
            and self.rng.random() < self.error_rate
        ):
            return self.lure_value
        return true_value

    def observe_many(
        self, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        objects = np.asarray(objects, dtype=np.int64)
        result = self.space.values[objects].copy()
        bad = ~self.space.good_mask[objects]
        flips = self.rng.random(objects.shape[0]) < self.error_rate
        result[bad & flips] = self.lure_value
        return result


class PerturbedValueModel(ValueModel):
    """Wrap another model with seed-reproducible observation noise.

    Used by the fault-injection layer
    (:meth:`~repro.faults.injector.FaultInjector.wrap_value_model`): with
    probability ``noise_rate`` a probe's observed value is shifted by a
    uniform perturbation in ``[-noise, +noise]``. The wrapper draws
    exactly two values from its generator per probe regardless of
    whether the perturbation fires, so the rng stream position depends
    only on the number of probes — never on their outcomes — which keeps
    runs reproducible under any fault realization.

    Unlike :class:`NoisyValueModel` (the paper's Section 4.1 erroneous
    votes, which lures players toward *bad* objects), this wrapper is an
    infrastructure fault: it perturbs every observation symmetrically,
    good objects included.
    """

    def __init__(
        self,
        inner: ValueModel,
        rng: np.random.Generator,
        noise_rate: float,
        noise: float,
    ) -> None:
        super().__init__(inner.space)
        if not 0 <= noise_rate <= 1:
            raise ValueError(f"noise_rate must be in [0, 1], got {noise_rate}")
        if noise < 0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.inner = inner
        self.rng = rng
        self.noise_rate = float(noise_rate)
        self.noise = float(noise)

    def observe(self, player: int, object_id: int) -> float:
        value = self.inner.observe(player, object_id)
        fires = self.rng.random() < self.noise_rate
        shift = self.rng.uniform(-self.noise, self.noise)
        return float(value + shift) if fires else float(value)

    def observe_many(
        self, players: np.ndarray, objects: np.ndarray
    ) -> np.ndarray:
        values = np.asarray(
            self.inner.observe_many(players, objects), dtype=np.float64
        ).copy()
        fires = self.rng.random(values.shape[0]) < self.noise_rate
        shifts = self.rng.uniform(-self.noise, self.noise, values.shape[0])
        values[fires] += shifts[fires]
        return values


def constant_spoof_table(
    space: ObjectSpace, liked: np.ndarray, high: float = 1.0, low: float = 0.0
) -> np.ndarray:
    """Build a spoof table that reports ``high`` on ``liked`` objects.

    Convenience for the Theorem 2 construction, where players in partition
    ``P_k`` observe value 1 exactly on the object class ``O_k``.
    """
    table = np.full(space.m, low, dtype=np.float64)
    table[np.asarray(liked, dtype=np.int64)] = high
    return table


ValueFn = Callable[[int, int], float]
