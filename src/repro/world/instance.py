"""Problem instances: an object space plus player roles.

An :class:`Instance` is everything the *harness* knows about a run: the
objects (values, costs, good set) and which players are honest. Strategies
and adversaries only ever see the parts they are entitled to (strategies
observe values through probes; adversaries know everything, per the
Byzantine model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.world.objects import ObjectSpace


@dataclass
class Instance:
    """One concrete world for a simulation run.

    Attributes
    ----------
    space:
        The objects.
    honest_mask:
        Boolean array of shape ``(n,)``; ``True`` marks honest players.
    """

    space: ObjectSpace
    honest_mask: np.ndarray
    # Role id arrays are derived lazily: at n=10^6 the two flatnonzero
    # results cost 16 MB that many callers (notably the batched engine,
    # which works from the mask) never touch.
    _honest_ids: Optional[np.ndarray] = field(
        init=False, repr=False, default=None
    )
    _dishonest_ids: Optional[np.ndarray] = field(
        init=False, repr=False, default=None
    )

    def __post_init__(self) -> None:
        self.honest_mask = np.asarray(self.honest_mask, dtype=bool)
        if self.honest_mask.ndim != 1 or self.honest_mask.shape[0] == 0:
            raise ConfigurationError("honest_mask must be a non-empty 1-d array")
        if not self.honest_mask.any():
            raise ConfigurationError(
                "an instance needs at least one honest player (alpha > 0)"
            )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of players."""
        return int(self.honest_mask.shape[0])

    @property
    def m(self) -> int:
        """Number of objects."""
        return self.space.m

    @property
    def alpha(self) -> float:
        """Fraction of honest players (the paper's ``α``)."""
        return float(self.honest_mask.sum()) / self.n

    @property
    def beta(self) -> float:
        """Fraction of good objects (the paper's ``β``)."""
        return self.space.beta

    @property
    def honest_ids(self) -> np.ndarray:
        """Sorted ids of honest players (materialized on first access)."""
        if self._honest_ids is None:
            self._honest_ids = np.flatnonzero(self.honest_mask)
        return self._honest_ids

    @property
    def dishonest_ids(self) -> np.ndarray:
        """Sorted ids of dishonest players (materialized on first access)."""
        if self._dishonest_ids is None:
            self._dishonest_ids = np.flatnonzero(~self.honest_mask)
        return self._dishonest_ids

    @property
    def n_honest(self) -> int:
        return int(self.honest_mask.sum())

    @property
    def n_dishonest(self) -> int:
        return self.n - self.n_honest

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Instance(n={self.n}, m={self.m}, "
            f"alpha={self.alpha:.4g}, beta={self.beta:.4g}, "
            f"local_testing={self.space.supports_local_testing}, "
            f"unit_costs={self.space.unit_costs})"
        )


def roles_from_alpha(
    n: int,
    alpha: float,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
) -> np.ndarray:
    """Build an honest mask with ``round(alpha * n)`` honest players.

    The count is clamped to ``[1, n]`` so an instance is always solvable.
    With ``shuffle`` the honest identities are a uniformly random subset;
    otherwise players ``0..k-1`` are honest (useful for deterministic
    tests and the lower-bound constructions, which fix identities).
    """
    if not 0 < alpha <= 1:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    k = int(round(alpha * n))
    k = min(max(k, 1), n)
    mask = np.zeros(n, dtype=bool)
    mask[:k] = True
    if shuffle:
        if rng is None:
            raise ConfigurationError("shuffle=True requires an rng")
        rng.shuffle(mask)
    return mask
