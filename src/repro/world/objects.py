"""Object spaces: values, costs, and goodness.

Section 2.2 distinguishes two object models:

* **local testing** — a player can tell whether an object is good right
  after probing it (e.g. "value exceeds a known threshold"); this is the
  model under which Algorithm DISTILL is stated;
* **no local testing** — goodness is defined only relatively: an object is
  good iff it is among the top ``β·m`` values (Section 5.3).

Both are served by the same :class:`ObjectSpace`; the difference lives in
whether a *strategy* is allowed to call :meth:`ObjectSpace.passes_local_test`.
The ground-truth good set is always well-defined so the harness can score
outcomes either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class ObjectSpace:
    """The ``m`` objects of the model.

    Attributes
    ----------
    values:
        Intrinsic (initially unknown to players) values, shape ``(m,)``.
    costs:
        Known probing costs, shape ``(m,)``; the unit-cost model of
        Section 4 uses all ones, Theorem 12 uses powers of two.
    good_mask:
        Ground-truth goodness, shape ``(m,)`` boolean.
    good_threshold:
        When set, the local-testing predicate is
        ``value >= good_threshold`` and must agree with ``good_mask``.
        When ``None`` the space only supports the no-local-testing model.
    """

    values: np.ndarray
    costs: np.ndarray
    good_mask: np.ndarray
    good_threshold: Optional[float] = None
    _good_ids: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.costs = np.asarray(self.costs, dtype=np.float64)
        self.good_mask = np.asarray(self.good_mask, dtype=bool)
        m = self.values.shape[0]
        if self.values.ndim != 1 or m == 0:
            raise ConfigurationError("values must be a non-empty 1-d array")
        if self.costs.shape != (m,) or self.good_mask.shape != (m,):
            raise ConfigurationError(
                "values, costs, good_mask must share shape "
                f"({m},); got {self.costs.shape}, {self.good_mask.shape}"
            )
        if np.any(self.values < 0) or np.any(self.costs < 0):
            raise ConfigurationError("values and costs must be non-negative")
        if not self.good_mask.any():
            raise ConfigurationError("an object space needs >= 1 good object")
        if self.good_threshold is not None:
            implied = self.values >= self.good_threshold
            if not np.array_equal(implied, self.good_mask):
                raise ConfigurationError(
                    "good_threshold does not reproduce good_mask; either fix "
                    "the threshold or pass good_threshold=None (no local "
                    "testing)"
                )
        self._good_ids = np.flatnonzero(self.good_mask)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of objects."""
        return int(self.values.shape[0])

    @property
    def beta(self) -> float:
        """Fraction of good objects (the paper's ``β``)."""
        return float(self.good_mask.sum()) / self.m

    @property
    def good_ids(self) -> np.ndarray:
        """Ids of the good objects (sorted)."""
        return self._good_ids

    @property
    def supports_local_testing(self) -> bool:
        return self.good_threshold is not None

    @property
    def unit_costs(self) -> bool:
        """Whether every probe costs exactly one (the Section 4 model)."""
        return bool(np.all(self.costs == 1.0))

    @property
    def cheapest_good_cost(self) -> float:
        """``q0`` of Theorem 12: the cost of the cheapest good object."""
        return float(self.costs[self._good_ids].min())

    # ------------------------------------------------------------------
    def is_good(self, object_id: int) -> bool:
        """Ground-truth goodness (harness-side scoring)."""
        return bool(self.good_mask[object_id])

    def passes_local_test(self, object_id: int) -> bool:
        """The player-visible goodness test (local-testing model only)."""
        if self.good_threshold is None:
            raise ConfigurationError(
                "this object space does not support local testing"
            )
        return bool(self.values[object_id] >= self.good_threshold)

    def cost_class_of(self, object_id: int) -> int:
        """Theorem 12 cost class: class ``i`` holds costs in ``[2^i, 2^(i+1))``.

        Costs are assumed (w.l.o.g., as in the paper) to be at least 1.
        """
        cost = self.costs[object_id]
        if cost < 1.0:
            raise ConfigurationError(
                f"cost classes assume costs >= 1, object {object_id} costs {cost}"
            )
        return int(np.floor(np.log2(cost)))

    def cost_class_members(self, klass: int) -> np.ndarray:
        """All object ids whose cost lies in ``[2^klass, 2^(klass+1))``."""
        low, high = 2.0 ** klass, 2.0 ** (klass + 1)
        return np.flatnonzero((self.costs >= low) & (self.costs < high))

    def n_cost_classes(self) -> int:
        """``1 +`` the largest occupied cost class index."""
        if np.any(self.costs < 1.0):
            raise ConfigurationError("cost classes assume costs >= 1")
        return int(np.floor(np.log2(self.costs.max()))) + 1

    def top_beta_mask(self, beta: float) -> np.ndarray:
        """Goodness mask for the no-local-testing model: top ``β·m`` values.

        Ties are broken by object id, matching how the generators plant
        instances.
        """
        if not 0 < beta <= 1:
            raise ConfigurationError(f"beta must be in (0, 1], got {beta}")
        k = max(1, int(round(beta * self.m)))
        # argsort descending by value, ascending by id for ties
        order = np.lexsort((np.arange(self.m), -self.values))
        mask = np.zeros(self.m, dtype=bool)
        mask[order[:k]] = True
        return mask
